#!/usr/bin/env bash
# Full verification gate: invariant lint -> generic lint -> tier-1 tests.
# CI and `make check` both run this; each stage fails the whole script.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro lint (privacy / determinism / layering invariants) =="
python -m repro.lint src/repro

echo
echo "== ruff check (generic hygiene) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check .
elif python -c "import ruff" >/dev/null 2>&1; then
    python -m ruff check .
else
    echo "ruff not installed (pip install -e '.[dev]'); skipping generic lint"
fi

echo
echo "== tier-1 tests =="
python -m pytest -x -q
