#!/usr/bin/env python
"""Line-coverage floor for a ``src/repro`` package — stdlib only.

The container has no ``coverage``/``pytest-cov``, so this gate measures
line coverage with ``sys.settrace`` directly: the denominator is the set
of executable lines reported by each compiled module's ``co_lines()``,
the numerator is the set of lines actually hit while the selected test
suite runs in-process.

Lines that only execute inside forked pool workers are invisible to the
parent's trace function, so the suite's serial paths (which execute the
same kernel/merge code) are what earns the floor.

Usage::

    PYTHONPATH=src python scripts/coverage_gate.py --fail-under 85
    PYTHONPATH=src python scripts/coverage_gate.py --target telemetry
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: Gated packages: name -> (source tree, default pytest targets).
TARGETS = {
    "scale": (SRC / "repro" / "scale", ["tests/scale"]),
    "telemetry": (SRC / "repro" / "telemetry", ["tests/telemetry"]),
    "service": (
        SRC / "repro" / "service",
        ["tests/service", "tests/scale/test_incremental.py"],
    ),
    "analysis": (SRC / "repro" / "analysis", ["tests/analysis"]),
    "durability": (SRC / "repro" / "durability", ["tests/durability"]),
    "ingest": (SRC / "repro" / "ingest", ["tests/ingest"]),
    "serve": (SRC / "repro" / "serve", ["tests/serve"]),
    "reshard": (SRC / "repro" / "reshard", ["tests/reshard"]),
}


def executable_lines(path: Path) -> set[int]:
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        # line 0 is the compiler's module-preamble pseudo-line, not source
        lines.update(line for _, _, line in obj.co_lines() if line)
        stack.extend(const for const in obj.co_consts if isinstance(const, type(code)))
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fail-under", type=float, default=85.0)
    parser.add_argument(
        "--target",
        choices=sorted(TARGETS),
        default="scale",
        help="which src/repro package to gate (default: scale)",
    )
    parser.add_argument(
        "--tests",
        nargs="*",
        default=None,
        help="pytest targets to run under the trace (default: the target's suite)",
    )
    args = parser.parse_args()
    target_dir, default_tests = TARGETS[args.target]
    tests = args.tests if args.tests is not None else default_tests

    sys.path.insert(0, str(SRC))
    os.chdir(ROOT)
    import pytest

    prefix = str(target_dir) + os.sep
    hits: dict[str, set[int]] = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if event == "line":
            hits.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(["-q", "--no-header", "-p", "no:cacheprovider", *tests])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if exit_code != 0:
        print(f"coverage gate: test run failed (pytest exit {exit_code})")
        return int(exit_code)

    total_lines = 0
    total_hit = 0
    rows = []
    for path in sorted(target_dir.rglob("*.py")):
        lines = executable_lines(path)
        hit = hits.get(str(path), set()) & lines
        total_lines += len(lines)
        total_hit += len(hit)
        percent = 100.0 * len(hit) / len(lines) if lines else 100.0
        missing = sorted(lines - hit)
        rows.append((path.relative_to(ROOT), len(lines), len(hit), percent, missing))

    print(f"\n{'file':<40} {'lines':>6} {'hit':>6} {'cover':>7}")
    for rel, n_lines, n_hit, percent, missing in rows:
        print(f"{str(rel):<40} {n_lines:>6} {n_hit:>6} {percent:>6.1f}%")
        if missing and percent < 100.0:
            shown = ",".join(map(str, missing[:12]))
            more = f" (+{len(missing) - 12} more)" if len(missing) > 12 else ""
            print(f"    missing: {shown}{more}")

    total = 100.0 * total_hit / total_lines if total_lines else 100.0
    rel_target = target_dir.relative_to(ROOT)
    print(f"\nTOTAL {rel_target}: {total_hit}/{total_lines} lines = {total:.1f}%")
    if total < args.fail_under:
        print(f"coverage gate: {total:.1f}% < --fail-under {args.fail_under:.1f}%")
        return 1
    print(f"coverage gate: OK (floor {args.fail_under:.1f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
