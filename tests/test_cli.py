"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("measure", "pipeline", "search", "figure3", "audit", "redteam",
                        "epochs", "telemetry"):
            args = parser.parse_args(
                [command] if command in ("measure", "figure3") else [command, "--users", "5"]
            )
            assert args.command == command

    def test_world_defaults(self):
        args = build_parser().parse_args(["pipeline"])
        assert args.users == 80
        assert args.days == 120.0
        assert args.seed == 42


class TestCommands:
    def test_measure(self, capsys):
        assert main(["measure", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Yelp" in out
        assert "Figure 1(a)" in out
        assert "Figure 1(c)" in out

    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "dentist-A" in out and "dentist-C" in out
        assert "correlation" in out

    def test_pipeline_small(self, capsys):
        assert main(["pipeline", "--users", "25", "--days", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "opinion gain" in out
        assert "inference MAE" in out

    def test_search_small(self, capsys):
        assert main(
            ["search", "--users", "25", "--days", "40", "--seed", "3",
             "--category", "thai", "--radius", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "Results for 'thai'" in out

    def test_audit_small(self, capsys):
        assert main(["audit", "--users", "15", "--days", "30", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out and "hardened" in out

    def test_epochs_small(self, capsys):
        assert main(["epochs", "--users", "20", "--days", "40", "--seed", "6",
                     "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "epoch" in out
        assert "histories" in out

    def test_telemetry_small(self, capsys):
        assert main(["telemetry", "--users", "20", "--days", "40", "--seed", "6",
                     "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "aggregate digest" in out
        assert "rsp.envelopes.accepted" in out
        assert "== counters ==" in out

    def test_telemetry_json(self, capsys):
        assert main(["telemetry", "--users", "20", "--days", "40", "--seed", "6",
                     "--epochs", "2", "--json", "--aggregate-only"]) == 0
        out = capsys.readouterr().out
        assert '"metrics"' in out and '"spans"' in out
        assert '"scope": "deployment"' not in out

    def test_redteam_small(self, capsys):
        assert main(["redteam", "--users", "40", "--days", "120", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "call-spam" in out and "employee" in out

    def test_analyze_lists_checkers(self, capsys):
        assert main(["analyze", "--list-checkers"]) == 0
        out = capsys.readouterr().out
        assert "interproc-privacy-taint" in out
        assert "pool-shared-mutation" in out

    def test_analyze_clean_against_committed_baseline(self, capsys, monkeypatch):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parent.parent)
        assert main(["analyze", "src/repro", "--baseline", "analysis_baseline.json"]) == 0
        assert "OK:" in capsys.readouterr().out
