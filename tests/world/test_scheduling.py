"""Tests for diurnal/weekday event scheduling."""

import pytest

from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.entities import EntityKind, InteractionStyle
from repro.world.events import CallEvent, VisitEvent
from repro.world.population import TownConfig, build_town


def simulate(business_hours=True, seed=41, n_users=50, days=180.0):
    town = build_town(TownConfig(n_users=n_users), seed=seed)
    config = BehaviorConfig(duration_days=days, business_hours=business_hours)
    return town, BehaviorSimulator(town.users, town.entities, config, seed=seed).run()


def hour_of(t):
    return (t % DAY) / HOUR


def day_of_week(t):
    return int(t // DAY) % 7


class TestBusinessHours:
    @pytest.fixture(scope="class")
    def world(self):
        return simulate()

    def test_restaurant_visits_at_meal_times(self, world):
        town, result = world
        restaurant_ids = {
            e.entity_id for e in town.entities if e.kind is EntityKind.RESTAURANT
        }
        hours = [
            hour_of(e.start_time)
            for e in result.events
            if isinstance(e, VisitEvent) and e.entity_id in restaurant_ids
        ]
        assert hours
        for hour in hours:
            assert (11.5 <= hour <= 14.0) or (18.0 <= hour <= 21.5)

    def test_appointments_in_business_hours_on_weekdays(self, world):
        town, result = world
        appointment_ids = {
            e.entity_id
            for e in town.entities
            if e.kind.style is InteractionStyle.VISIT_APPOINTMENT
        }
        events = [e for e in result.events if e.entity_id in appointment_ids]
        assert events
        for event in events:
            assert 9.0 <= hour_of(event.start_time) <= 17.0
            assert day_of_week(event.start_time) < 5

    def test_service_calls_in_business_hours(self, world):
        town, result = world
        call_events = [e for e in result.events if isinstance(e, CallEvent)]
        assert call_events
        for event in call_events:
            assert 9.0 <= hour_of(event.start_time) <= 17.0
            assert day_of_week(event.start_time) < 5

    def test_disabled_flag_restores_uniform_times(self):
        _, result = simulate(business_hours=False)
        hours = [hour_of(e.start_time) for e in result.events]
        # With scheduling off, a meaningful share of events land at night.
        night = sum(1 for h in hours if h < 8 or h > 22)
        assert night > 0.1 * len(hours)

    def test_group_visits_share_scheduled_time(self, world):
        _, result = world
        by_group = {}
        for event in result.events:
            if isinstance(event, VisitEvent) and event.group_id:
                by_group.setdefault((event.group_id, event.entity_id, event.start_time), []).append(event)
        assert by_group
        for events in by_group.values():
            assert len({e.start_time for e in events}) == 1
