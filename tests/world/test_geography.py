"""Tests for repro.world.geography."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.world.geography import CityGrid, Point, travel_time_seconds

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestPoint:
    def test_distance_known(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_self_zero(self):
        p = Point(1.5, 2.5)
        assert p.distance_to(p) == 0.0

    @given(coords, coords, coords, coords)
    @settings(max_examples=50, deadline=None)
    def test_distance_symmetric(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coords, coords, coords, coords, coords, coords)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9

    def test_offset(self):
        assert Point(1, 1).offset(2, -1) == Point(3, 0)


class TestCityGrid:
    def test_zone_count(self):
        grid = CityGrid(size_km=10, rows=3, cols=4)
        assert len(grid.zones) == 12

    def test_zones_tile_city(self):
        """Every point in the city belongs to exactly one zone."""
        grid = CityGrid(size_km=9, rows=3, cols=3)
        for point in [Point(0.1, 0.1), Point(4.5, 4.5), Point(8.9, 8.9), Point(1, 7)]:
            containing = [z for z in grid.zones if z.contains(point)]
            assert len(containing) == 1
            assert grid.zone_containing(point) == containing[0]

    def test_zone_containing_clamps_edges(self):
        grid = CityGrid(size_km=10, rows=2, cols=2)
        # On the far boundary, still resolves to a zone.
        zone = grid.zone_containing(Point(10.0, 10.0))
        assert zone.row == 1 and zone.col == 1

    def test_zone_by_id(self):
        grid = CityGrid(size_km=10, rows=2, cols=2)
        zone = grid.zone_by_id("Z0101")
        assert zone.row == 1 and zone.col == 1
        with pytest.raises(KeyError):
            grid.zone_by_id("Z9999")

    def test_zone_ids_unique(self):
        grid = CityGrid(size_km=20, rows=5, cols=5)
        ids = [z.zone_id for z in grid.zones]
        assert len(set(ids)) == len(ids)

    def test_sample_point_inside(self):
        grid = CityGrid(size_km=15, rows=3, cols=3)
        for seed in range(20):
            p = grid.sample_point(seed)
            assert 0 <= p.x <= 15 and 0 <= p.y <= 15

    def test_zone_sample_point_inside_zone(self):
        grid = CityGrid(size_km=12, rows=3, cols=3)
        zone = grid.zones[4]
        for seed in range(20):
            assert zone.contains(zone.sample_point(seed))

    def test_clamp(self):
        grid = CityGrid(size_km=10, rows=2, cols=2)
        assert grid.clamp(Point(-5, 15)) == Point(0, 10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CityGrid(size_km=0)
        with pytest.raises(ValueError):
            CityGrid(size_km=10, rows=0)


class TestTravelTime:
    def test_known_value(self):
        # 25 km at 25 km/h = 1 hour
        assert travel_time_seconds(Point(0, 0), Point(25, 0)) == pytest.approx(3600.0)

    def test_zero_distance(self):
        assert travel_time_seconds(Point(1, 1), Point(1, 1)) == 0.0

    def test_speed_must_be_positive(self):
        with pytest.raises(ValueError):
            travel_time_seconds(Point(0, 0), Point(1, 0), speed_kmh=0)
