"""Tests for the relocation confounder (Section 4.1)."""

import numpy as np

from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.events import VisitEvent
from repro.world.population import TownConfig, build_town


def run_with_relocation(rate, n_users=60, days=365.0, seed=23):
    town = build_town(TownConfig(n_users=n_users), seed=seed)
    config = BehaviorConfig(duration_days=days, relocation_rate_per_year=rate)
    simulator = BehaviorSimulator(town.users, town.entities, config, seed=seed)
    return town, simulator, simulator.run()


class TestRelocationMechanics:
    def test_zero_rate_means_no_relocations(self):
        _, simulator, _ = run_with_relocation(0.0)
        assert simulator._relocations == {}

    def test_positive_rate_relocates_some_users(self):
        _, simulator, _ = run_with_relocation(0.5)
        assert simulator._relocations

    def test_relocation_times_inside_horizon(self):
        _, simulator, _ = run_with_relocation(0.8, days=365.0)
        for move_time, _, _ in simulator._relocations.values():
            assert 0 < move_time < 365 * DAY

    def test_deterministic(self):
        _, sim_a, _ = run_with_relocation(0.5, seed=3)
        _, sim_b, _ = run_with_relocation(0.5, seed=3)
        assert set(sim_a._relocations) == set(sim_b._relocations)

    def test_home_work_at_switches_at_move_time(self):
        town, simulator, _ = run_with_relocation(0.8)
        moved = next(iter(simulator._relocations))
        move_time, new_home, new_work = simulator._relocations[moved]
        user = town.user(moved)
        home_before, _ = simulator._home_work_at(user, move_time - 1)
        home_after, _ = simulator._home_work_at(user, move_time + 1)
        assert home_before == user.home
        assert home_after == new_home


class TestRelocationBehaviour:
    def test_visits_originate_near_new_home_after_moving(self):
        """After the move, trips anchor at the new home, not the old one."""
        town, simulator, result = run_with_relocation(0.9, n_users=80, days=365.0)
        checked = 0
        for user_id, (move_time, new_home, new_work) in simulator._relocations.items():
            user = town.user(user_id)
            late_visits = [
                e for e in result.events
                if isinstance(e, VisitEvent)
                and e.user_id == user_id
                and e.start_time > move_time
                and not e.group_id  # group visits anchor at members' homes
            ]
            for visit in late_visits:
                distance_to_new = min(
                    visit.origin.distance_to(new_home), visit.origin.distance_to(new_work)
                )
                assert distance_to_new < 0.01
                checked += 1
        assert checked > 5

    def test_relocation_induces_provider_switching(self):
        """The confounder: movers switch restaurants without disliking the
        old ones — repeat-based inference would misread this as churn."""
        town_m, sim_m, moved_result = run_with_relocation(0.9, n_users=80, days=365.0, seed=29)
        town_s, sim_s, stable_result = run_with_relocation(0.0, n_users=80, days=365.0, seed=29)

        def distinct_restaurants(result, user_ids):
            per_user = {}
            for event in result.events:
                if isinstance(event, VisitEvent) and event.user_id in user_ids:
                    per_user.setdefault(event.user_id, set()).add(event.entity_id)
            return per_user

        movers = set(sim_m._relocations)
        assert len(movers) > 5
        moved_counts = distinct_restaurants(moved_result, movers)
        stable_counts = distinct_restaurants(stable_result, movers)
        moved_mean = np.mean([len(v) for v in moved_counts.values()]) if moved_counts else 0
        stable_mean = np.mean([len(v) for v in stable_counts.values()]) if stable_counts else 0
        assert moved_mean > stable_mean
