"""Tests for town construction and the Figure 3 scenario."""

from collections import defaultdict

import numpy as np
import pytest

from repro.util.stats import pearson
from repro.world.population import TownConfig, build_town
from repro.world.scenarios import (
    DENTIST_A,
    DENTIST_B,
    DENTIST_C,
    Figure3Config,
    figure3_town,
    run_figure3,
)


class TestBuildTown:
    def test_counts_match_config(self):
        config = TownConfig(n_users=50)
        town = build_town(config, seed=1)
        assert len(town.users) == 50
        for kind, count in config.entities_per_kind.items():
            assert len(town.entities_of_kind(kind)) == count

    def test_deterministic(self):
        a = build_town(TownConfig(n_users=20), seed=9)
        b = build_town(TownConfig(n_users=20), seed=9)
        assert [e.entity_id for e in a.entities] == [e.entity_id for e in b.entities]
        assert a.users == b.users

    def test_entities_inside_city(self):
        config = TownConfig(n_users=5, size_km=10.0)
        town = build_town(config, seed=0)
        for entity in town.entities:
            assert 0 <= entity.location.x <= 10
            assert 0 <= entity.location.y <= 10

    def test_entity_ids_unique(self):
        town = build_town(TownConfig(n_users=5), seed=0)
        ids = [e.entity_id for e in town.entities]
        assert len(set(ids)) == len(ids)

    def test_phone_directory_complete(self):
        town = build_town(TownConfig(n_users=5), seed=0)
        directory = town.phone_directory
        assert len(directory) == len(town.entities)
        for phone, entity_id in directory.items():
            assert town.entity(entity_id).phone == phone

    def test_group_membership_roughly_matches(self):
        config = TownConfig(n_users=300, group_membership=0.5, group_size=3)
        town = build_town(config, seed=3)
        in_group = sum(1 for u in town.users if u.group_ids)
        assert 0.3 * 300 < in_group < 0.7 * 300

    def test_groups_have_configured_size(self):
        config = TownConfig(n_users=200, group_size=4)
        town = build_town(config, seed=2)
        members = defaultdict(list)
        for user in town.users:
            for group_id in user.group_ids:
                members[group_id].append(user.user_id)
        assert members
        for group_members in members.values():
            assert len(group_members) == 4

    def test_lookup_helpers(self):
        town = build_town(TownConfig(n_users=3), seed=0)
        assert town.user("user-0000").user_id == "user-0000"
        with pytest.raises(KeyError):
            town.user("user-9999")
        first = town.entities[0]
        assert town.entity(first.entity_id) is first
        with pytest.raises(KeyError):
            town.entity("nope")


class TestFigure3Scenario:
    @pytest.fixture(scope="class")
    def outcome(self):
        config = Figure3Config()
        town, result = run_figure3(config)
        per_user = defaultdict(lambda: defaultdict(int))
        distances = defaultdict(lambda: defaultdict(list))
        for event in result.events:
            per_user[event.entity_id][event.user_id] += 1
            distances[event.entity_id][event.user_id].append(event.distance_km)
        return town, per_user, distances

    def _corr(self, per_user, distances, dentist):
        counts = [c for c in per_user[dentist].values() if c >= 2]
        avg_distance = [
            float(np.mean(distances[dentist][u]))
            for u, c in per_user[dentist].items()
            if c >= 2
        ]
        return pearson(counts, avg_distance)

    def test_dentist_a_has_few_repeat_patients(self, outcome):
        """Figure 3(a): A's histogram collapses at one visit per user."""
        _, per_user, _ = outcome
        counts = list(per_user[DENTIST_A].values())
        assert counts
        repeat_fraction = np.mean([c > 1 for c in counts])
        assert repeat_fraction < 0.3

    def test_dentists_b_c_have_many_repeat_patients(self, outcome):
        _, per_user, _ = outcome
        for dentist in (DENTIST_B, DENTIST_C):
            counts = list(per_user[dentist].values())
            assert np.mean([c > 1 for c in counts]) > 0.6

    def test_distance_correlation_b_exceeds_c(self, outcome):
        """Figure 3(b): effort correlates with visits at B, not at C."""
        _, per_user, distances = outcome
        corr_b = self._corr(per_user, distances, DENTIST_B)
        corr_c = self._corr(per_user, distances, DENTIST_C)
        assert corr_b > 0.1
        assert corr_b > corr_c + 0.2

    def test_c_patients_travel_much_less_than_b_patients(self, outcome):
        _, per_user, distances = outcome
        avg = {
            dentist: np.mean([np.mean(d) for d in distances[dentist].values()])
            for dentist in (DENTIST_B, DENTIST_C)
        }
        assert avg[DENTIST_C] < 0.3 * avg[DENTIST_B]

    def test_scenario_construction_deterministic(self):
        a = figure3_town(Figure3Config(seed=21))
        b = figure3_town(Figure3Config(seed=21))
        assert a.initial_opinions == b.initial_opinions
        assert [e.entity_id for e in a.town.entities] == [e.entity_id for e in b.town.entities]

    def test_fans_seeded_on_b_locals_on_c(self):
        scenario = figure3_town()
        fan_targets = {entity for (_, entity) in scenario.initial_opinions.items()}
        entities = {e for (_, e) in scenario.initial_opinions}
        assert entities == {DENTIST_B, DENTIST_C}
        for (user_id, entity_id), opinion in scenario.initial_opinions.items():
            if entity_id == DENTIST_B:
                assert user_id.startswith("regional")
                assert opinion > 4.5
            else:
                assert user_id.startswith("local")
                assert 2.5 < opinion < 3.5
