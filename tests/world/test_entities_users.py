"""Tests for repro.world.entities and repro.world.users."""

import numpy as np
import pytest

from repro.world.entities import (
    DEFAULT_CATEGORIES,
    Entity,
    EntityKind,
    InteractionStyle,
    make_phone_number,
)
from repro.world.geography import Point
from repro.world.users import User, sample_posting_propensity, sample_user


def make_entity(**overrides):
    defaults = dict(
        entity_id="restaurant-0001",
        kind=EntityKind.RESTAURANT,
        category="thai",
        location=Point(1, 1),
        quality=3.5,
        price_level=2,
    )
    defaults.update(overrides)
    return Entity(**defaults)


class TestEntityKind:
    def test_styles(self):
        assert EntityKind.RESTAURANT.style is InteractionStyle.VISIT_FREQUENT
        assert EntityKind.DENTIST.style is InteractionStyle.VISIT_APPOINTMENT
        assert EntityKind.PLUMBER.style is InteractionStyle.CALL_SERVICE

    def test_visited_vs_called(self):
        assert EntityKind.RESTAURANT.is_visited and not EntityKind.RESTAURANT.is_called
        assert EntityKind.PLUMBER.is_called and not EntityKind.PLUMBER.is_visited

    def test_every_kind_has_categories(self):
        for kind in EntityKind:
            assert DEFAULT_CATEGORIES[kind]

    def test_restaurants_have_nine_cuisines(self):
        """The paper queried 9 popular cuisines on Yelp."""
        assert len(DEFAULT_CATEGORIES[EntityKind.RESTAURANT]) == 9


class TestEntity:
    def test_quality_bounds_enforced(self):
        with pytest.raises(ValueError):
            make_entity(quality=5.5)
        with pytest.raises(ValueError):
            make_entity(quality=-0.1)

    def test_price_level_bounds(self):
        with pytest.raises(ValueError):
            make_entity(price_level=0)
        with pytest.raises(ValueError):
            make_entity(price_level=5)

    def test_similarity_same_category_high(self):
        a = make_entity(entity_id="r1")
        b = make_entity(entity_id="r2")
        assert a.similarity_to(b) > 0.8

    def test_similarity_cross_kind_zero(self):
        restaurant = make_entity()
        dentist = make_entity(
            entity_id="dentist-1", kind=EntityKind.DENTIST, category="dentist"
        )
        assert restaurant.similarity_to(dentist) == 0.0

    def test_similarity_price_gap_lowers(self):
        cheap = make_entity(entity_id="r1", price_level=1)
        pricey = make_entity(entity_id="r2", price_level=4)
        same = make_entity(entity_id="r3", price_level=1)
        assert cheap.similarity_to(same) > cheap.similarity_to(pricey)

    def test_similarity_symmetric(self):
        a = make_entity(entity_id="r1", category="thai", price_level=1)
        b = make_entity(entity_id="r2", category="indian", price_level=3)
        assert a.similarity_to(b) == pytest.approx(b.similarity_to(a))

    def test_similarity_in_unit_interval(self):
        a = make_entity(entity_id="r1", attributes=("patio", "vegan"))
        b = make_entity(entity_id="r2", attributes=("vegan",))
        assert 0.0 <= a.similarity_to(b) <= 1.0

    def test_phone_numbers_unique(self):
        numbers = {make_phone_number(i) for i in range(1000)}
        assert len(numbers) == 1000


class TestUser:
    def test_validation(self):
        with pytest.raises(ValueError):
            User("u", Point(0, 0), Point(0, 0), posting_propensity=1.5)
        with pytest.raises(ValueError):
            User("u", Point(0, 0), Point(0, 0), posting_propensity=0.5, mobility=0)
        with pytest.raises(ValueError):
            User("u", Point(0, 0), Point(0, 0), posting_propensity=0.5, engagement=0)

    def test_affinity_default_zero(self):
        user = User("u", Point(0, 0), Point(0, 0), posting_propensity=0.1)
        assert user.affinity_for("thai") == 0.0

    def test_affinity_lookup(self):
        user = User(
            "u", Point(0, 0), Point(0, 0), posting_propensity=0.1,
            category_affinity={"thai": 0.7},
        )
        assert user.affinity_for("thai") == 0.7


class TestPopulationSampling:
    def test_posting_propensity_follows_participation_rule(self):
        """~90% of users should almost never post — the paper's root cause."""
        rng = np.random.default_rng(0)
        draws = [sample_posting_propensity(rng) for _ in range(5000)]
        lurkers = sum(1 for p in draws if p < 0.02)
        heavy = sum(1 for p in draws if p >= 0.5)
        assert lurkers / len(draws) > 0.8
        assert heavy / len(draws) < 0.03

    def test_sample_user_fields_valid(self):
        user = sample_user(
            0, "user-0", Point(1, 1), Point(2, 2), categories=("thai", "dentist")
        )
        assert user.user_id == "user-0"
        assert set(user.category_affinity) == {"thai", "dentist"}
        assert 1 <= user.price_preference <= 4
        assert user.mobility > 0

    def test_sample_user_deterministic(self):
        a = sample_user(5, "u", Point(0, 0), Point(1, 1), categories=("x",))
        b = sample_user(5, "u", Point(0, 0), Point(1, 1), categories=("x",))
        assert a == b
