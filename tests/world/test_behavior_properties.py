"""Hypothesis property tests: the behaviour simulator off the happy path.

The simulator feeds everything downstream, so its invariants must hold for
*any* sane configuration, not just the defaults the other tests use.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.events import VisitEvent
from repro.world.population import TownConfig, build_town


configs = st.fixed_dictionaries(
    {
        "duration_days": st.floats(min_value=10, max_value=120),
        "restaurant_needs_per_week": st.floats(min_value=0.2, max_value=4.0),
        "laziness": st.floats(min_value=0.0, max_value=0.9),
        "group_visit_rate": st.floats(min_value=0.0, max_value=1.0),
        "opinion_noise": st.floats(min_value=0.0, max_value=1.5),
        "choice_temperature": st.floats(min_value=0.1, max_value=2.0),
        "business_hours": st.booleans(),
        "relocation_rate_per_year": st.floats(min_value=0.0, max_value=1.0),
    }
)


@pytest.fixture(scope="module")
def small_town():
    return build_town(TownConfig(n_users=12), seed=71)


class TestSimulatorInvariants:
    @given(configs, st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_core_invariants_hold_for_any_config(self, small_town, config_kwargs, seed):
        town = small_town
        config = BehaviorConfig(**config_kwargs)
        result = BehaviorSimulator(town.users, town.entities, config, seed=seed).run()

        # Events time-sorted, within a padded horizon, referencing known ids.
        times = [event.start_time for event in result.events]
        assert times == sorted(times)
        if times:
            assert times[0] >= 0
            assert times[-1] <= (config.duration_days + 10) * DAY
        user_ids = {user.user_id for user in town.users}
        entity_ids = {entity.entity_id for entity in town.entities}
        for event in result.events:
            assert event.user_id in user_ids
            assert event.entity_id in entity_ids
            assert event.duration > 0

        # Every interacting pair has a ground-truth opinion in range.
        pairs = {(event.user_id, event.entity_id) for event in result.events}
        assert pairs <= set(result.opinions)
        for truth in result.opinions.values():
            assert 0.0 <= truth.opinion <= 5.0

        # Reviews reference experienced pairs, ratings in 1..5, one per pair.
        review_pairs = [(r.user_id, r.entity_id) for r in result.reviews]
        assert len(review_pairs) == len(set(review_pairs))
        for review in result.reviews:
            assert 1 <= review.rating <= 5
            assert (review.user_id, review.entity_id) in result.opinions

    @given(configs, st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_determinism_for_any_config(self, small_town, config_kwargs, seed):
        town = small_town
        config = BehaviorConfig(**config_kwargs)
        a = BehaviorSimulator(town.users, town.entities, config, seed=seed).run()
        b = BehaviorSimulator(town.users, town.entities, config, seed=seed).run()
        assert a.events == b.events
        assert a.reviews == b.reviews
        assert a.opinions == b.opinions

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_group_rate_zero_means_no_group_events(self, small_town, laziness):
        town = small_town
        config = BehaviorConfig(
            duration_days=60, group_visit_rate=0.0, laziness=laziness
        )
        result = BehaviorSimulator(town.users, town.entities, config, seed=5).run()
        assert all(
            not event.group_id
            for event in result.events
            if isinstance(event, VisitEvent)
        )
