"""Tests for the behaviour simulator — the generative model under the RSP."""

import numpy as np
import pytest

from repro.util.clock import DAY
from repro.util.stats import pearson
from repro.world.behavior import BehaviorConfig, BehaviorSimulator, PostedReview
from repro.world.entities import Entity, EntityKind
from repro.world.events import CallEvent, VisitEvent
from repro.world.geography import Point
from repro.world.population import TownConfig, build_town
from repro.world.users import User


def tiny_town(n_users=30, duration=120.0, seed=3, **config_overrides):
    town = build_town(TownConfig(n_users=n_users), seed=seed)
    config = BehaviorConfig(duration_days=duration, **config_overrides)
    simulator = BehaviorSimulator(town.users, town.entities, config, seed=seed)
    return town, simulator.run()


class TestSimulationBasics:
    def test_produces_events_and_opinions(self):
        _, result = tiny_town()
        assert result.events
        assert result.opinions

    def test_deterministic(self):
        _, a = tiny_town(seed=11)
        _, b = tiny_town(seed=11)
        assert a.events == b.events
        assert a.reviews == b.reviews

    def test_seed_changes_output(self):
        _, a = tiny_town(seed=1)
        _, b = tiny_town(seed=2)
        assert a.events != b.events

    def test_events_time_sorted(self):
        _, result = tiny_town()
        times = [event.start_time for event in result.events]
        assert times == sorted(times)

    def test_events_within_horizon(self):
        _, result = tiny_town(duration=60.0)
        # Complaint calls and weekday scheduling may trail a need by up to
        # about a week past the nominal horizon.
        assert max(event.start_time for event in result.events) < 70 * DAY

    def test_every_event_user_is_known(self):
        town, result = tiny_town()
        user_ids = {user.user_id for user in town.users}
        assert {event.user_id for event in result.events} <= user_ids

    def test_every_event_entity_is_known(self):
        town, result = tiny_town()
        entity_ids = {entity.entity_id for entity in town.entities}
        assert {event.entity_id for event in result.events} <= entity_ids

    def test_requires_users_and_entities(self):
        town = build_town(TownConfig(n_users=2), seed=0)
        with pytest.raises(ValueError):
            BehaviorSimulator([], town.entities)
        with pytest.raises(ValueError):
            BehaviorSimulator(town.users, [])


class TestEventSemantics:
    def test_restaurants_are_visited_not_called(self):
        town, result = tiny_town()
        restaurant_ids = {e.entity_id for e in town.entities if e.kind is EntityKind.RESTAURANT}
        for event in result.events:
            if event.entity_id in restaurant_ids:
                assert isinstance(event, VisitEvent)

    def test_plumbers_are_called_not_visited(self):
        town, result = tiny_town(n_users=60, duration=365.0)
        plumber_ids = {e.entity_id for e in town.entities if e.kind is EntityKind.PLUMBER}
        plumber_events = [e for e in result.events if e.entity_id in plumber_ids]
        assert plumber_events, "a year of 60 users should need a plumber sometime"
        for event in plumber_events:
            assert isinstance(event, CallEvent)

    def test_visit_distance_matches_origin(self):
        town, result = tiny_town()
        entity_by_id = {e.entity_id: e for e in town.entities}
        for event in result.events:
            if isinstance(event, VisitEvent):
                expected = event.origin.distance_to(entity_by_id[event.entity_id].location)
                assert event.distance_km == pytest.approx(expected)

    def test_visit_durations_positive_and_bounded(self):
        _, result = tiny_town()
        for event in result.events:
            if isinstance(event, VisitEvent):
                assert 0 < event.duration <= 2 * 3600 + 1


class TestOpinionDynamics:
    def test_opinions_in_range(self):
        _, result = tiny_town()
        for truth in result.opinions.values():
            assert 0.0 <= truth.opinion <= 5.0

    def test_opinion_exists_for_every_interacting_pair(self):
        _, result = tiny_town()
        pairs = {(e.user_id, e.entity_id) for e in result.events}
        assert pairs <= set(result.opinions)

    def test_good_entities_earn_more_repeat_business(self):
        """Across restaurants, repeat-visit share should rise with quality —
        the base signal implicit inference relies on."""
        town, result = tiny_town(n_users=80, duration=240.0, seed=5)
        visits_by_pair: dict[tuple[str, str], int] = {}
        for event in result.events:
            if isinstance(event, VisitEvent) and not event.group_id:
                key = (event.user_id, event.entity_id)
                visits_by_pair[key] = visits_by_pair.get(key, 0) + 1
        entity_by_id = {e.entity_id: e for e in town.entities}
        qualities, repeats = [], []
        for (user_id, entity_id), count in visits_by_pair.items():
            entity = entity_by_id[entity_id]
            if entity.kind is EntityKind.RESTAURANT:
                qualities.append(entity.quality)
                repeats.append(1.0 if count >= 2 else 0.0)
        assert len(qualities) > 50
        assert pearson(qualities, repeats) > 0.1

    def test_avoided_entities_not_rechosen(self):
        """After a terrible settled experience a user never goes back
        (deterministic because avoidance is a hard filter)."""
        home = Point(5, 5)
        user = User("u0", home, home, posting_propensity=0.0, exploration=0.0)
        bad = Entity(
            entity_id="dentist-bad", kind=EntityKind.DENTIST, category="dentist",
            location=Point(5.2, 5.0), quality=0.2,
        )
        good = Entity(
            entity_id="dentist-good", kind=EntityKind.DENTIST, category="dentist",
            location=Point(5.4, 5.0), quality=4.8,
        )
        config = BehaviorConfig(
            duration_days=365 * 4, appointment_needs_per_year=12, laziness=0.0
        )
        result = BehaviorSimulator([user], [bad, good], config, seed=2).run()
        bad_visits = [e for e in result.events if e.entity_id == "dentist-bad"]
        truth = result.opinions.get(("u0", "dentist-bad"))
        if truth is not None and truth.opinion <= config.avoid_threshold:
            assert len(bad_visits) == 1


class TestInitialOpinions:
    def test_seeded_opinion_reported_in_ground_truth(self):
        town = build_town(TownConfig(n_users=3), seed=0)
        entity = town.entities[0].entity_id
        user = town.users[0].user_id
        simulator = BehaviorSimulator(
            town.users, town.entities,
            BehaviorConfig(duration_days=30),
            seed=0,
            initial_opinions={(user, entity): 4.9},
        )
        result = simulator.run()
        assert result.opinions[(user, entity)].opinion == pytest.approx(4.9)
        assert result.opinions[(user, entity)].settled

    def test_seeded_avoid_threshold_marks_avoided(self):
        home = Point(5, 5)
        user = User("u0", home, home, posting_propensity=0.0, exploration=0.0)
        bad = Entity(
            entity_id="dentist-bad", kind=EntityKind.DENTIST, category="dentist",
            location=Point(5.1, 5.0), quality=4.0,
        )
        good = Entity(
            entity_id="dentist-good", kind=EntityKind.DENTIST, category="dentist",
            location=Point(5.2, 5.0), quality=4.0,
        )
        config = BehaviorConfig(duration_days=365 * 2, appointment_needs_per_year=12, laziness=0.0)
        result = BehaviorSimulator(
            [user], [bad, good], config, seed=1,
            initial_opinions={("u0", "dentist-bad"): 0.5},
        ).run()
        assert not [e for e in result.events if e.entity_id == "dentist-bad"]

    def test_unknown_entity_rejected(self):
        town = build_town(TownConfig(n_users=2), seed=0)
        simulator = BehaviorSimulator(
            town.users, town.entities,
            initial_opinions={("user-0000", "no-such-entity"): 3.0},
        )
        with pytest.raises(KeyError):
            simulator.run()


class TestReviews:
    def test_lurkers_never_post(self):
        town = build_town(TownConfig(n_users=20), seed=4)
        silenced = [
            User(
                user_id=u.user_id, home=u.home, work=u.work, posting_propensity=0.0,
                category_affinity=u.category_affinity, price_preference=u.price_preference,
                mobility=u.mobility, exploration=u.exploration, engagement=u.engagement,
                group_ids=u.group_ids,
            )
            for u in town.users
        ]
        result = BehaviorSimulator(
            silenced, town.entities, BehaviorConfig(duration_days=90), seed=4
        ).run()
        assert result.reviews == []

    def test_reviews_reference_experienced_entities(self):
        _, result = tiny_town(n_users=60, duration=180.0)
        for review in result.reviews:
            assert (review.user_id, review.entity_id) in result.opinions

    def test_review_ratings_track_opinions(self):
        _, result = tiny_town(n_users=120, duration=240.0, seed=9)
        errors = [
            abs(review.rating - result.opinions[(review.user_id, review.entity_id)].opinion)
            for review in result.reviews
        ]
        assert errors, "some reviews should have been posted"
        assert np.mean(errors) < 1.0

    def test_at_most_one_review_per_pair(self):
        _, result = tiny_town(n_users=100, duration=300.0, seed=10)
        pairs = [(r.user_id, r.entity_id) for r in result.reviews]
        assert len(pairs) == len(set(pairs))

    def test_reviews_far_fewer_than_interacting_pairs(self):
        """The paper's core motivation: most opinions are never posted."""
        _, result = tiny_town(n_users=100, duration=240.0, seed=12)
        interacting_pairs = {(e.user_id, e.entity_id) for e in result.events}
        assert len(result.reviews) < 0.2 * len(interacting_pairs)

    def test_posted_review_validation(self):
        with pytest.raises(ValueError):
            PostedReview("u", "e", rating=0, time=0.0)
        with pytest.raises(ValueError):
            PostedReview("u", "e", rating=6, time=0.0)


class TestGroupVisits:
    def test_group_members_covisit(self):
        town, result = tiny_town(n_users=60, duration=120.0, seed=6)
        group_events: dict[tuple[str, float], list] = {}
        for event in result.events:
            if isinstance(event, VisitEvent) and event.group_id:
                group_events.setdefault((event.group_id, event.start_time), []).append(event)
        assert group_events, "groups should produce at least one group visit"
        for (_, _), events in group_events.items():
            assert len(events) >= 2
            assert len({e.entity_id for e in events}) == 1

    def test_group_visits_share_timestamp_and_duration(self):
        _, result = tiny_town(n_users=60, duration=120.0, seed=6)
        by_group: dict[tuple[str, float], list] = {}
        for event in result.events:
            if isinstance(event, VisitEvent) and event.group_id:
                by_group.setdefault((event.group_id, event.start_time), []).append(event)
        for events in by_group.values():
            assert len({e.duration for e in events}) == 1

    def test_disabling_groups_removes_group_visits(self):
        town = build_town(TownConfig(n_users=40, group_size=0), seed=2)
        result = BehaviorSimulator(
            town.users, town.entities, BehaviorConfig(duration_days=90), seed=2
        ).run()
        assert all(
            not event.group_id
            for event in result.events
            if isinstance(event, VisitEvent)
        )


class TestComplaintCalls:
    def test_bad_service_triggers_short_followup_calls(self):
        """A dissatisfied customer places short, closely spaced calls —
        the confounder Section 4 warns about."""
        home = Point(5, 5)
        user = User("u0", home, home, posting_propensity=0.0, exploration=0.0)
        bad = Entity(
            entity_id="plumber-bad", kind=EntityKind.PLUMBER, category="plumber",
            location=Point(5.1, 5.0), quality=0.3,
        )
        config = BehaviorConfig(
            duration_days=365, service_needs_per_year=6, opinion_noise=0.0, laziness=0.0
        )
        result = BehaviorSimulator([user], [bad], config, seed=3).run()
        calls = [e for e in result.events if isinstance(e, CallEvent)]
        assert len(calls) >= 2
        short_calls = [c for c in calls if c.duration < 90]
        assert short_calls, "complaint calls should be short"
