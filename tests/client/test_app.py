"""Tests for the RSP client app."""

import pytest

from repro.client.app import RSPClient, infer_home
from repro.core.aggregation import OpinionUpload
from repro.privacy.anonymity import batching_network
from repro.privacy.history_store import InteractionUpload
from repro.privacy.tokens import TokenIssuer
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.sensors import generate_trace
from repro.orchestration.pipeline import train_classifier
from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def setting():
    town = build_town(TownConfig(n_users=60), seed=12)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=150), seed=12
    ).run()
    horizon = 150 * DAY
    classifier = train_classifier(town, result, horizon, seed=12)
    return town, result, horizon, classifier


def active_user(result):
    counts = {}
    for event in result.events:
        counts[event.user_id] = counts.get(event.user_id, 0) + 1
    return max(counts, key=counts.get)


def make_client(town, classifier, user_id, seed=1):
    return RSPClient(
        device_id=user_id, catalog=town.entities, classifier=classifier, seed=seed
    )


class TestInferHome:
    def test_home_is_where_the_dwell_is(self, setting):
        town, result, horizon, _ = setting
        user_id = active_user(result)
        user = town.user(user_id)
        trace = generate_trace(user_id, town, result, horizon, duty_cycled_policy(), seed=12)
        inferred = infer_home(trace)
        # The inferred anchor should be near home or work.
        assert min(
            inferred.distance_to(user.home), inferred.distance_to(user.work)
        ) < 0.5

    def test_empty_trace_fallback(self):
        from repro.sensing.traces import DeviceTrace
        assert infer_home(DeviceTrace(user_id="u")) is not None


class TestObserveTrace:
    def test_populates_snapshot_and_log(self, setting):
        town, result, horizon, classifier = setting
        user_id = active_user(result)
        client = make_client(town, classifier, user_id)
        trace = generate_trace(user_id, town, result, horizon, duty_cycled_policy(), seed=12)
        interactions = client.observe_trace(trace, now=horizon)
        assert interactions
        assert client.transparency.n_entries > 0
        assert client.stats.interactions_observed == len(interactions)
        assert client.n_pending > 0

    def test_snapshot_respects_retention(self, setting):
        town, result, horizon, classifier = setting
        user_id = active_user(result)
        client = RSPClient(
            device_id=user_id, catalog=town.entities, classifier=classifier,
            seed=1, snapshot_retention=20 * DAY,
        )
        trace = generate_trace(user_id, town, result, horizon, duty_cycled_policy(), seed=12)
        client.observe_trace(trace, now=horizon)
        for interactions in client.snapshot.leak().values():
            for interaction in interactions:
                assert interaction.time >= horizon - 20 * DAY

    def test_suppressed_entities_not_uploaded(self, setting):
        town, result, horizon, classifier = setting
        user_id = active_user(result)

        client = make_client(town, classifier, user_id, seed=2)
        trace = generate_trace(user_id, town, result, horizon, duty_cycled_policy(), seed=12)
        client.observe_trace(trace, now=horizon)
        target = client.transparency.audit()[0].entity_id

        suppressing = make_client(town, classifier, user_id, seed=2)
        interactions = suppressing.resolver.resolve(trace)
        suppressing.observe_trace(trace, now=horizon)
        # Re-observe after suppression: staged envelopes rebuilt.
        suppressing.transparency.suppress(target)
        suppressing._pending.clear()
        suppressing._stage_envelopes({})
        uploaded_entities = {
            pending.record.entity_id for pending in suppressing._pending
        }
        assert target not in uploaded_entities


class TestSync:
    def test_envelopes_flow_with_tokens(self, setting):
        town, result, horizon, classifier = setting
        user_id = active_user(result)
        client = make_client(town, classifier, user_id, seed=3)
        trace = generate_trace(user_id, town, result, horizon, duty_cycled_policy(), seed=12)
        client.observe_trace(trace, now=horizon)
        issuer = TokenIssuer(quota_per_day=500, key_seed=3, key_bits=256)
        network = batching_network(seed=3)
        submitted = client.sync(network, issuer, now=horizon)
        assert submitted == client.stats.envelopes_submitted
        deliveries = network.deliveries_until(horizon + 3 * DAY)
        assert len(deliveries) == submitted
        for delivery in deliveries:
            assert delivery.payload.token is not None

    def test_quota_defers_not_drops(self, setting):
        town, result, horizon, classifier = setting
        user_id = active_user(result)
        client = make_client(town, classifier, user_id, seed=4)
        trace = generate_trace(user_id, town, result, horizon, duty_cycled_policy(), seed=12)
        client.observe_trace(trace, now=horizon)
        pending_before = client.n_pending
        issuer = TokenIssuer(quota_per_day=2, key_seed=4, key_bits=256)
        network = batching_network(seed=4)
        submitted = client.sync(network, issuer, now=horizon)
        assert submitted == 2
        assert client.n_pending == pending_before - 2
        # Next day, quota refreshes and more goes out.
        submitted_next = client.sync(network, issuer, now=horizon + 1.5 * DAY)
        assert submitted_next == 2

    def test_upload_types(self, setting):
        town, result, horizon, classifier = setting
        user_id = active_user(result)
        client = make_client(town, classifier, user_id, seed=5)
        trace = generate_trace(user_id, town, result, horizon, duty_cycled_policy(), seed=12)
        client.observe_trace(trace, now=horizon)
        records = [pending.record for pending in client._pending]
        assert any(isinstance(r, InteractionUpload) for r in records)
        if client.stats.inferences_made:
            assert any(isinstance(r, OpinionUpload) for r in records)


class TestPersonalizedSearch:
    def test_personalize_reranks_with_own_opinions(self, setting):
        from repro.core.discovery import Query
        from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline

        town, result, horizon, classifier = setting
        config = PipelineConfig(horizon_days=horizon / (24 * 3600.0), seed=12)
        outcome = run_full_pipeline(town, result, config, classifier=classifier)

        user_id = active_user(result)
        client = outcome.clients[user_id]
        # Pick a category the user has an opinion in, if any.
        rated = [
            entry for entry in client.transparency.audit()
            if entry.effective_rating is not None
        ]
        if not rated:
            import pytest
            pytest.skip("user formed no shareable opinions in this world")
        target_entity = town.entity(rated[0].entity_id)
        response = outcome.server.search(
            Query(category=target_entity.category,
                  near=target_entity.location, radius_km=20.0)
        )
        ranked = client.personalize_response(response)
        assert len(ranked) == response.n_results
        by_id = {r.entity_id: r for r in ranked}
        assert by_id[target_entity.entity_id].personal_adjustment != 0.0

    def test_personalize_without_observation_uses_origin(self, setting):
        town, _, _, classifier = setting
        from repro.core.discovery import Query

        client = make_client(town, classifier, "fresh-device", seed=9)
        from repro.core.discovery import DiscoveryService
        response = DiscoveryService(town.entities).search(
            Query(category="thai", near=town.grid.zones[0].center, radius_km=30.0), {}
        )
        ranked = client.personalize_response(response)
        assert len(ranked) == response.n_results
