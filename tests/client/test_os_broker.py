"""Tests for the OS privacy broker (Section 5 trust model)."""

import pytest

from repro.client.os_broker import (
    EgressViolation,
    OSPrivacyBroker,
    Tainted,
    contains_sensitive,
)
from repro.core.protocol import Envelope
from repro.privacy.history_store import InteractionUpload
from repro.sensing.resolution import EntityResolver, InteractionType
from repro.sensing.sensors import generate_trace
from repro.sensing.traces import CallRecord, DeviceTrace, LocationSample
from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.geography import Point
from repro.world.population import TownConfig, build_town


def raw_sample():
    return LocationSample(time=0.0, point=Point(1, 2))


class TestContainsSensitive:
    def test_detects_raw_types(self):
        assert contains_sensitive(raw_sample())
        assert contains_sensitive(CallRecord(time=0, number="x", duration=1))
        assert contains_sensitive(DeviceTrace(user_id="u"))
        assert contains_sensitive(Tainted(_payload="anything"))

    def test_detects_nested(self):
        assert contains_sensitive([1, {"a": (raw_sample(),)}])
        assert contains_sensitive({"trace": [raw_sample()]})

    def test_detects_inside_dataclasses(self):
        from dataclasses import dataclass

        @dataclass
        class Sneaky:
            note: str
            payload: object

        assert contains_sensitive(Sneaky(note="totally fine", payload=raw_sample()))

    def test_clean_payloads_pass(self):
        upload = InteractionUpload(
            history_id="h", entity_id="e", interaction_type="visit",
            event_time=0.0, duration=1.0, travel_km=0.0,
        )
        assert not contains_sensitive(upload)
        assert not contains_sensitive(Envelope(record=upload, token=None))
        assert not contains_sensitive([1, "x", 2.5, None])


@pytest.fixture(scope="module")
def sensed_world():
    town = build_town(TownConfig(n_users=15), seed=44)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=40), seed=44
    ).run()
    trace = generate_trace(town.users[0].user_id, town, result, 40 * DAY, seed=44)
    return town, trace


class TestOSPrivacyBroker:
    def test_sensor_read_is_tainted_and_audited(self, sensed_world):
        _, trace = sensed_world
        broker = OSPrivacyBroker(app_id="rsp-app")
        handle = broker.read_sensors(trace)
        assert isinstance(handle, Tainted)
        assert "Tainted" in repr(handle)
        assert broker.audit_log[-1].action == "sensor_read"

    def test_honest_pipeline_flows_through_sandbox(self, sensed_world):
        """The legitimate resolve-then-upload path passes every OS check."""
        town, trace = sensed_world
        broker = OSPrivacyBroker(app_id="rsp-app")
        handle = broker.read_sensors(trace)
        resolver = EntityResolver(town.entities)
        interactions = broker.process(handle, resolver.resolve, label="entity resolution")
        upload = InteractionUpload(
            history_id="h", entity_id="e", interaction_type="visit",
            event_time=0.0, duration=1.0, travel_km=0.0,
        )
        broker.egress(Envelope(record=upload, token=None))
        assert broker.blocked_egress_attempts == 0
        assert all(
            i.interaction_type in (InteractionType.VISIT, InteractionType.CALL)
            for i in interactions
        )

    def test_sandbox_blocks_raw_returns(self, sensed_world):
        """A processor that tries to smuggle raw fixes out is stopped."""
        _, trace = sensed_world
        broker = OSPrivacyBroker(app_id="rsp-app")
        handle = broker.read_sensors(trace)
        with pytest.raises(EgressViolation):
            broker.process(handle, lambda t: t.location_samples, label="smuggler")

    def test_egress_blocks_raw_location(self, sensed_world):
        """The malicious-RSP scenario of Section 5: the client tries to
        ship the user's raw location history — the OS refuses."""
        _, trace = sensed_world
        broker = OSPrivacyBroker(app_id="evil-rsp-app")
        with pytest.raises(EgressViolation):
            broker.egress({"telemetry": trace.location_samples[:10]})
        assert broker.blocked_egress_attempts == 1
        assert broker.audit_log[-1].action == "egress_blocked"

    def test_egress_blocks_tainted_handles(self, sensed_world):
        _, trace = sensed_world
        broker = OSPrivacyBroker(app_id="evil-rsp-app")
        handle = broker.read_sensors(trace)
        with pytest.raises(EgressViolation):
            broker.egress(handle)

    def test_clean_egress_audited(self):
        broker = OSPrivacyBroker(app_id="rsp-app")
        broker.egress({"version": "1.0"})
        assert broker.audit_log[-1].action == "egress"

    def test_audit_log_user_visible_summary(self, sensed_world):
        """The audit journal names counts, never coordinates."""
        _, trace = sensed_world
        broker = OSPrivacyBroker(app_id="rsp-app")
        broker.read_sensors(trace)
        detail = broker.audit_log[-1].detail
        assert "location fixes" in detail
        assert "Point" not in detail
