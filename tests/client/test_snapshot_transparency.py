"""Tests for the local snapshot and the transparency log."""

import pytest

from repro.client.snapshot import LocalSnapshot
from repro.client.transparency import InferenceStatus, TransparencyLog
from repro.core.classifier import InferredOpinion
from repro.sensing.resolution import InteractionType, ObservedInteraction
from repro.util.clock import DAY


def interaction(entity="e1", day=0.0):
    return ObservedInteraction(
        entity_id=entity,
        interaction_type=InteractionType.VISIT,
        time=day * DAY,
        duration=1800.0,
        travel_km=1.0,
    )


class TestLocalSnapshot:
    def test_retention_positive(self):
        with pytest.raises(ValueError):
            LocalSnapshot(retention=0)

    def test_add_and_recent(self):
        snapshot = LocalSnapshot()
        snapshot.add(interaction("e1", 1))
        snapshot.add(interaction("e1", 2))
        assert len(snapshot.recent("e1")) == 2
        assert snapshot.recent("missing") == []

    def test_purge_drops_old_entries(self):
        snapshot = LocalSnapshot(retention=30 * DAY)
        snapshot.add(interaction("e1", 0))
        snapshot.add(interaction("e1", 50))
        purged = snapshot.purge(now=60 * DAY)
        assert purged == 1
        assert len(snapshot.recent("e1")) == 1

    def test_purge_removes_empty_entity_buckets(self):
        """Even the *existence* of an old relationship must disappear."""
        snapshot = LocalSnapshot(retention=10 * DAY)
        snapshot.add(interaction("old-dentist", 0))
        snapshot.purge(now=100 * DAY)
        assert "old-dentist" not in snapshot.entity_ids()

    def test_leak_bounded_by_retention(self):
        """The theft scenario of Section 4.2: only recent data leaks."""
        snapshot = LocalSnapshot(retention=30 * DAY)
        for day in range(0, 365, 5):
            snapshot.add(interaction("e1", day))
        snapshot.purge(now=365 * DAY)
        leaked = snapshot.leak()
        for interactions in leaked.values():
            for leaked_interaction in interactions:
                assert leaked_interaction.time >= (365 - 30) * DAY

    def test_leak_is_a_copy(self):
        snapshot = LocalSnapshot()
        snapshot.add(interaction("e1", 1))
        leaked = snapshot.leak()
        leaked["e1"].clear()
        assert len(snapshot.recent("e1")) == 1


class TestTransparencyLog:
    def opinion(self, rating=4.0):
        return InferredOpinion(rating=rating, confidence=0.5)

    def test_record_and_audit(self):
        log = TransparencyLog()
        log.record("e1", 0.0, self.opinion(), evidence="3 visits")
        log.record("e2", 0.0, InferredOpinion(rating=None, confidence=2.0), evidence="1 visit")
        audit = log.audit()
        assert [entry.entity_id for entry in audit] == ["e1", "e2"]
        assert audit[0].effective_rating == 4.0
        assert audit[1].effective_rating is None

    def test_correction_overrides_model(self):
        log = TransparencyLog()
        log.record("e1", 0.0, self.opinion(4.0), evidence="x")
        log.correct("e1", 1.0)
        assert log.entry("e1").effective_rating == 1.0
        assert log.entry("e1").status is InferenceStatus.CORRECTED

    def test_correction_survives_reinference(self):
        """A fresh model run must not clobber what the user told us."""
        log = TransparencyLog()
        log.record("e1", 0.0, self.opinion(4.0), evidence="x")
        log.correct("e1", 1.0)
        log.record("e1", 10.0, self.opinion(4.5), evidence="more visits")
        assert log.entry("e1").effective_rating == 1.0

    def test_suppression_blocks_sharing(self):
        log = TransparencyLog()
        log.record("e1", 0.0, self.opinion(4.0), evidence="x")
        log.suppress("e1")
        assert log.entry("e1").effective_rating is None

    def test_correct_unknown_entity_raises(self):
        log = TransparencyLog()
        with pytest.raises(KeyError):
            log.correct("ghost", 3.0)

    def test_correct_validates_rating(self):
        log = TransparencyLog()
        log.record("e1", 0.0, self.opinion(), evidence="x")
        with pytest.raises(ValueError):
            log.correct("e1", 6.0)
