"""Tests for typical profiles and the fraud detector."""

import numpy as np
import pytest

from repro.fraud.detector import DetectorConfig, FraudDetector, FraudFlag
from repro.fraud.profiles import FeatureBand, build_profiles, profile_from_histories
from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.util.clock import DAY, HOUR


def honest_store(
    n_users=40, entity="dentist-1", seed=0, mean_gap_days=120.0, duration_s=3600.0
) -> HistoryStore:
    """A store of plausible dentist histories: 2-4 visits, months apart."""
    store = HistoryStore()
    rng = np.random.default_rng(seed)
    for index in range(n_users):
        identity = DeviceIdentity.create(f"user-{index}", seed=index)
        t = float(rng.uniform(0, 60)) * DAY
        for _ in range(int(rng.integers(2, 5))):
            store.append(
                InteractionUpload(
                    history_id=identity.history_id(entity),
                    entity_id=entity,
                    interaction_type="visit",
                    event_time=t,
                    duration=float(rng.uniform(0.6, 1.6)) * duration_s,
                    travel_km=float(rng.uniform(0.5, 8.0)),
                ),
                arrival_time=t,
            )
            t += float(rng.uniform(0.4, 1.8)) * mean_gap_days * DAY
    return store


KINDS = {"dentist-1": "dentist"}


class TestFeatureBand:
    def test_percentiles_ordered(self):
        band = FeatureBand.from_values(np.random.default_rng(0).uniform(0, 100, 1000))
        assert band.p01 <= band.p05 <= band.median <= band.p95 <= band.p99

    def test_floor_and_ceiling(self):
        band = FeatureBand.from_values(range(1, 101))
        assert band.below_floor(0.5)
        assert not band.below_floor(50)
        assert band.above_ceiling(1000)
        assert not band.above_ceiling(50)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureBand.from_values([])


class TestBuildProfiles:
    def test_profile_built_per_kind(self):
        store = honest_store()
        profiles = build_profiles(store, KINDS)
        assert "dentist" in profiles
        profile = profiles["dentist"]
        assert profile.n_histories == 40
        # Gaps should be on the order of months.
        assert 30 * DAY < profile.gaps.median < 300 * DAY

    def test_unknown_entities_ignored(self):
        store = honest_store()
        profiles = build_profiles(store, {})
        assert profiles == {}

    def test_profile_from_histories_requires_repeats(self):
        store = HistoryStore()
        identity = DeviceIdentity.create("u", seed=0)
        store.append(
            InteractionUpload(identity.history_id("e"), "e", "visit", 0.0, 100.0, 1.0),
            arrival_time=0.0,
        )
        with pytest.raises(ValueError):
            profile_from_histories("kind", store.all_histories())

    def test_profile_from_histories_rejects_empty(self):
        with pytest.raises(ValueError):
            profile_from_histories("kind", [])


class TestDetectorOnHonestTraffic:
    def test_low_false_positive_rate(self):
        store = honest_store(n_users=80, seed=1)
        detector = FraudDetector(build_profiles(store, KINDS), KINDS)
        _, rejected = detector.filter_store(store)
        assert len(rejected) <= 0.05 * store.n_histories

    def test_short_histories_not_judged(self):
        store = honest_store(seed=2)
        detector = FraudDetector(build_profiles(store, KINDS), KINDS)
        identity = DeviceIdentity.create("newcomer", seed=99)
        single = HistoryStore()
        single.append(
            InteractionUpload(
                identity.history_id("dentist-1"), "dentist-1", "visit", 0.0, 3600.0, 2.0
            ),
            arrival_time=0.0,
        )
        verdict = detector.judge(single.all_histories()[0])
        assert not verdict.judged
        assert not verdict.suspicious

    def test_unknown_kind_not_judged(self):
        store = honest_store(seed=3)
        detector = FraudDetector(build_profiles(store, KINDS), KINDS)
        other = HistoryStore()
        identity = DeviceIdentity.create("u", seed=0)
        for t in (0.0, 10.0, 20.0, 30.0):
            other.append(
                InteractionUpload(identity.history_id("mystery"), "mystery", "call", t, 5.0, 0.0),
                arrival_time=t,
            )
        verdict = detector.judge(other.all_histories()[0])
        assert not verdict.judged


def attack_history(uploads):
    store = HistoryStore()
    for upload in uploads:
        store.append(upload, arrival_time=upload.event_time)
    assert store.n_histories == 1
    return store.all_histories()[0]


class TestDetectorOnAttacks:
    @pytest.fixture(scope="class")
    def detector(self):
        store = honest_store(n_users=60, seed=4)
        return FraudDetector(build_profiles(store, KINDS), KINDS)

    def test_burst_calls_flagged(self, detector):
        identity = DeviceIdentity.create("spammer", seed=5)
        uploads = [
            InteractionUpload(
                identity.history_id("dentist-1"), "dentist-1", "call",
                event_time=1000.0 + i * 120.0, duration=6.0, travel_km=0.0,
            )
            for i in range(15)
        ]
        verdict = detector.judge(attack_history(uploads))
        assert verdict.suspicious
        assert FraudFlag.BURST in verdict.flags
        assert FraudFlag.SHORT_DURATION in verdict.flags

    def test_daily_presence_flagged(self, detector):
        identity = DeviceIdentity.create("employee", seed=6)
        uploads = [
            InteractionUpload(
                identity.history_id("dentist-1"), "dentist-1", "visit",
                event_time=i * DAY, duration=8 * HOUR, travel_km=0.1,
            )
            for i in range(30)
        ]
        verdict = detector.judge(attack_history(uploads))
        assert verdict.suspicious
        assert FraudFlag.REGULARITY in verdict.flags
        assert FraudFlag.VOLUME in verdict.flags

    def test_zero_gap_records_flagged_as_burst(self, detector):
        identity = DeviceIdentity.create("replayer", seed=7)
        uploads = [
            InteractionUpload(
                identity.history_id("dentist-1"), "dentist-1", "visit",
                event_time=5 * DAY, duration=3600.0, travel_km=1.0,
            )
            for _ in range(5)
        ]
        verdict = detector.judge(attack_history(uploads))
        assert FraudFlag.BURST in verdict.flags

    def test_verdict_explains_flags(self, detector):
        identity = DeviceIdentity.create("spammer2", seed=8)
        uploads = [
            InteractionUpload(
                identity.history_id("dentist-1"), "dentist-1", "call",
                event_time=i * 60.0, duration=5.0, travel_km=0.0,
            )
            for i in range(10)
        ]
        verdict = detector.judge(attack_history(uploads))
        assert verdict.n_interactions == 10
        assert verdict.entity_id == "dentist-1"
        assert all(isinstance(flag, FraudFlag) for flag in verdict.flags)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(min_interactions_to_judge=0)
