"""Tests for remote attestation and trustworthy sensing (Section 4.3)."""

import pytest

from repro.fraud.attestation import (
    AttestationVerifier,
    PlatformVendor,
    SensorInputVerifier,
    TrustedSensorStack,
    client_build_hash,
    forge_quote_without_key,
    spoof_location_samples,
)
from repro.sensing.traces import LocationSample
from repro.world.geography import Point

GENUINE = client_build_hash("official RSP client v1.0")
MODIFIED = client_build_hash("official RSP client v1.0 + my upload forger")


@pytest.fixture()
def vendor():
    return PlatformVendor()


@pytest.fixture()
def verifier(vendor):
    return AttestationVerifier(vendor, genuine_builds={GENUINE})


class TestAttestation:
    def test_genuine_client_passes(self, vendor, verifier):
        quote = vendor.make_quote("dev-1", GENUINE, nonce=b"n1")
        assert verifier.verify(quote)

    def test_modified_client_fails(self, vendor, verifier):
        """The secure element signs the hash of what actually runs; a
        modified build measures differently and is refused."""
        quote = vendor.make_quote("dev-1", MODIFIED, nonce=b"n2")
        assert not verifier.verify(quote)

    def test_forged_quote_fails(self, verifier):
        quote = forge_quote_without_key("dev-1", GENUINE, nonce=b"n3")
        assert not verifier.verify(quote)

    def test_replayed_quote_fails(self, vendor, verifier):
        quote = vendor.make_quote("dev-1", GENUINE, nonce=b"n4")
        assert verifier.verify(quote)
        assert not verifier.verify(quote)

    def test_quote_bound_to_device(self, vendor, verifier):
        """A quote signed for one device cannot attest another."""
        quote = vendor.make_quote("dev-1", GENUINE, nonce=b"n5")
        stolen = type(quote)(
            device_id="dev-2", build_hash=quote.build_hash,
            nonce=quote.nonce, tag=quote.tag,
        )
        assert not verifier.verify(stolen)

    def test_new_release_registration(self, vendor, verifier):
        v2 = client_build_hash("official RSP client v2.0")
        quote = vendor.make_quote("dev-1", v2, nonce=b"n6")
        assert not verifier.verify(quote)
        verifier.register_build(v2)
        quote2 = vendor.make_quote("dev-1", v2, nonce=b"n7")
        assert verifier.verify(quote2)

    def test_needs_genuine_builds(self, vendor):
        with pytest.raises(ValueError):
            AttestationVerifier(vendor, genuine_builds=set())


def sample(t=0.0, x=1.0, y=2.0):
    return LocationSample(time=t, point=Point(x, y))


class TestTrustworthySensing:
    def test_authentic_readings_pass(self, vendor):
        stack = TrustedSensorStack(vendor, "dev-1")
        signed = [stack.emit(sample(t=float(i))) for i in range(5)]
        sensor_verifier = SensorInputVerifier(vendor)
        authentic = sensor_verifier.filter_authentic(signed)
        assert len(authentic) == 5
        assert sensor_verifier.rejected == 0

    def test_spoofed_readings_rejected(self, vendor):
        """Fake-GPS readings carry no valid sensor tag."""
        spoofed = spoof_location_samples("dev-1", [sample(t=float(i)) for i in range(5)])
        sensor_verifier = SensorInputVerifier(vendor)
        assert sensor_verifier.filter_authentic(spoofed) == []
        assert sensor_verifier.rejected == 5

    def test_mixed_stream_filtered(self, vendor):
        stack = TrustedSensorStack(vendor, "dev-1")
        genuine = [stack.emit(sample(t=1.0))]
        spoofed = spoof_location_samples("dev-1", [sample(t=2.0)])
        sensor_verifier = SensorInputVerifier(vendor)
        authentic = sensor_verifier.filter_authentic(genuine + spoofed)
        assert len(authentic) == 1
        assert authentic[0].time == 1.0

    def test_tampered_reading_rejected(self, vendor):
        """Re-timestamping a genuinely signed reading breaks the tag —
        an attacker cannot replay a real visit at a different time."""
        stack = TrustedSensorStack(vendor, "dev-1")
        signed = stack.emit(sample(t=1.0))
        tampered = type(signed)(
            sample=sample(t=999.0), device_id=signed.device_id, tag=signed.tag
        )
        sensor_verifier = SensorInputVerifier(vendor)
        assert sensor_verifier.filter_authentic([tampered]) == []

    def test_cross_device_tags_invalid(self, vendor):
        stack1 = TrustedSensorStack(vendor, "dev-1")
        signed = stack1.emit(sample())
        moved = type(signed)(sample=signed.sample, device_id="dev-2", tag=signed.tag)
        sensor_verifier = SensorInputVerifier(vendor)
        assert sensor_verifier.filter_authentic([moved]) == []
