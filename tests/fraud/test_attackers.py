"""Tests for the attacker zoo and the detection/cost trade-off."""

import numpy as np
import pytest

from repro.fraud.attackers import (
    CallSpamAttacker,
    EmployeeAttacker,
    MimicAttacker,
    SybilAttacker,
)
from repro.fraud.detector import FraudDetector
from repro.fraud.profiles import build_profiles
from repro.privacy.identifiers import DeviceIdentity
from repro.util.clock import DAY

from tests.fraud.test_profiles_detector import KINDS, attack_history, honest_store


@pytest.fixture(scope="module")
def detector():
    store = honest_store(n_users=60, seed=10)
    return FraudDetector(build_profiles(store, KINDS), KINDS)


@pytest.fixture(scope="module")
def profile():
    store = honest_store(n_users=60, seed=10)
    return build_profiles(store, KINDS)["dentist"]


class TestCallSpam:
    def test_generates_requested_calls(self):
        identity = DeviceIdentity.create("a", seed=0)
        result = CallSpamAttacker(n_calls=12).generate(identity, "dentist-1", 0.0)
        assert len(result.uploads) == 12
        assert all(u.interaction_type == "call" for u in result.uploads)

    def test_cheap_in_time_and_effort(self):
        identity = DeviceIdentity.create("a", seed=0)
        result = CallSpamAttacker().generate(identity, "dentist-1", 0.0)
        assert result.cost.wall_clock_days < 5
        assert result.cost.active_effort < 600  # a few minutes on the phone

    def test_detected(self, detector):
        identity = DeviceIdentity.create("a", seed=0)
        result = CallSpamAttacker().generate(identity, "dentist-1", 0.0)
        assert detector.judge(attack_history(result.uploads)).suspicious


class TestEmployee:
    def test_daily_cadence(self):
        identity = DeviceIdentity.create("e", seed=1)
        result = EmployeeAttacker(n_days=20).generate(identity, "dentist-1", 0.0)
        times = sorted(u.event_time for u in result.uploads)
        gaps = np.diff(times)
        assert np.all(np.abs(gaps - DAY) < 0.1 * DAY)

    def test_detected(self, detector):
        identity = DeviceIdentity.create("e", seed=1)
        result = EmployeeAttacker().generate(identity, "dentist-1", 0.0)
        assert detector.judge(attack_history(result.uploads)).suspicious


class TestSybil:
    def test_each_device_has_own_history(self):
        results = SybilAttacker(n_devices=5).generate_all("dentist-1", 0.0)
        ids = {r.uploads[0].history_id for r in results}
        assert len(ids) == 5

    def test_individual_histories_unjudgeable(self, detector):
        """Each tiny sybil history evades judgement — but contributes only
        a tiny history, which is the paper's influence argument."""
        results = SybilAttacker(n_devices=5, interactions_per_device=2).generate_all(
            "dentist-1", 0.0
        )
        for result in results:
            verdict = detector.judge(attack_history(result.uploads))
            assert not verdict.judged


class TestMimic:
    def test_evades_detection(self, detector, profile):
        identity = DeviceIdentity.create("m", seed=2)
        result = MimicAttacker().generate(identity, "dentist-1", 0.0, profile)
        verdict = detector.judge(attack_history(result.uploads))
        assert not verdict.suspicious

    def test_but_costs_months_of_realistic_behaviour(self, profile):
        """The economic defense: undetectable fraud requires behaving like a
        real patient — appointments spread over months with real dwell times."""
        identity = DeviceIdentity.create("m", seed=2)
        result = MimicAttacker().generate(identity, "dentist-1", 0.0, profile)
        spam = CallSpamAttacker().generate(identity, "dentist-1", 0.0)
        assert result.cost.wall_clock_days > 30
        assert result.cost.wall_clock > 20 * spam.cost.wall_clock
        assert result.cost.active_effort > 30 * 60  # real appointment dwell

    def test_respects_volume_band(self, profile):
        identity = DeviceIdentity.create("m", seed=3)
        result = MimicAttacker(n_interactions=50).generate(identity, "dentist-1", 0.0, profile)
        assert len(result.uploads) <= max(2, int(profile.counts.p95))
