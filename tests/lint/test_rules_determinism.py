"""Determinism rule family: one failing and one passing case per rule."""

from repro.lint import Analyzer, default_rules
from repro.lint.engine import LintConfig

from tests.lint.conftest import rule_ids


class TestRandomModule:
    def test_flags_import_and_call(self, lint_paths):
        result = lint_paths("world/bad_random.py")
        ids = rule_ids(result)
        assert ids.count("det-random-module") == 2  # the import and the call
        lines = sorted(v.line for v in result.violations)
        assert lines == [3, 7]

    def test_allowed_module_is_exempt(self, fixture_root, tmp_path):
        # The same source is legal when it *is* the sanctioned rng module.
        source = (fixture_root / "world" / "bad_random.py").read_text()
        exempt = tmp_path / "rng.py"
        exempt.write_text(source)
        config = LintConfig(rng_modules=frozenset({"rng"}))
        result = Analyzer(default_rules(), config).run([exempt])
        assert "det-random-module" not in rule_ids(result)


class TestWallClock:
    def test_flags_time_and_datetime_reads(self, lint_paths):
        result = lint_paths("world/bad_wall_clock.py")
        ids = rule_ids(result)
        assert ids.count("det-wall-clock") == 2
        messages = " ".join(v.message for v in result.violations)
        assert "time.time" in messages
        assert "datetime.datetime.now" in messages

    def test_simulated_clock_module_is_exempt(self, fixture_root, tmp_path):
        source = (fixture_root / "world" / "bad_wall_clock.py").read_text()
        exempt = tmp_path / "clock.py"
        exempt.write_text(source)
        config = LintConfig(clock_modules=frozenset({"clock"}))
        result = Analyzer(default_rules(), config).run([exempt])
        assert "det-wall-clock" not in rule_ids(result)


class TestNumpyRandom:
    def test_flags_unseeded_default_rng_and_legacy_api(self, lint_paths):
        result = lint_paths("world/bad_numpy.py")
        ids = rule_ids(result)
        assert ids.count("det-numpy-random") == 2
        messages = " ".join(v.message for v in result.violations)
        assert "numpy.random.default_rng" in messages
        assert "numpy.random.rand" in messages

    def test_seeded_generators_via_util_rng_pass(self, lint_paths):
        result = lint_paths("world/good_rng.py")
        assert result.ok

    def test_generator_annotations_are_not_calls(self, lint_paths):
        # good_rng.py uses np.random.Generator in annotations and
        # isinstance checks; neither may trip the rule.
        result = lint_paths("world/good_rng.py")
        assert "det-numpy-random" not in rule_ids(result)


class TestDirtyIteration:
    def test_flags_bare_loop_and_comprehension(self, lint_paths):
        result = lint_paths("service/bad_dirty_iteration.py")
        ids = rule_ids(result)
        assert ids.count("det-dirty-iteration") == 2
        messages = " ".join(v.message for v in result.violations)
        assert "dirty_entities" in messages
        assert "sorted()" in messages

    def test_sorted_iteration_passes(self, lint_paths):
        result = lint_paths("service/good_dirty_iteration.py")
        assert "det-dirty-iteration" not in rule_ids(result)

    def test_rule_only_applies_to_service_packages(self, fixture_root, tmp_path):
        # The same hash-order loop is legal outside repro.service/repro.scale
        # (e.g. in the harness, where nothing float-sensitive consumes it).
        source = (fixture_root / "service" / "bad_dirty_iteration.py").read_text()
        outside = tmp_path / "harness.py"
        outside.write_text(source)
        result = Analyzer(default_rules()).run([outside])
        assert "det-dirty-iteration" not in rule_ids(result)


class TestReadPath:
    def test_flags_raw_accessors_and_bare_candidates(self, lint_paths):
        result = lint_paths("serve/bad_read_path.py")
        ids = rule_ids(result)
        # Two raw store-view accessor iterations plus one bare
        # candidate-collection comprehension.
        assert ids.count("det-read-path") == 3
        messages = " ".join(v.message for v in result.violations)
        assert "entities_with_histories()" in messages
        assert "review_entities()" in messages
        assert "candidate_ids" in messages

    def test_sorted_materializations_pass(self, lint_paths):
        result = lint_paths("serve/good_read_path.py")
        assert "det-read-path" not in rule_ids(result)

    def test_rule_only_applies_to_service_packages(self, fixture_root, tmp_path):
        # The same loops are legal outside repro.service/scale/serve —
        # e.g. a test helper folding sets into order-insensitive counts.
        source = (fixture_root / "serve" / "bad_read_path.py").read_text()
        outside = tmp_path / "helper.py"
        outside.write_text(source)
        result = Analyzer(default_rules()).run([outside])
        assert "det-read-path" not in rule_ids(result)

    def test_ordered_index_calls_are_exempt(self, lint_paths):
        # good_read_path.py iterates sorted(...) calls; a call expression
        # establishes explicit order and must never trip the rule.
        result = lint_paths("serve/good_read_path.py")
        assert result.ok
