"""GOOD: the experiment harness is allowed to script faults."""

from repro.faults import FaultInjector, FaultPlan


def drive(plan: FaultPlan):
    return FaultInjector(plan)
