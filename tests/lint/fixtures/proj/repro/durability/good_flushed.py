"""Clean: every WAL write is flushed (and optionally fsynced)."""

import os


class Log:
    def append(self, frame, sync):
        self._file.write(frame)
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())
