"""Broken: a WAL write that never leaves the user-space buffer."""


class Log:
    def append(self, frame):
        self._file.write(frame)
        self.records_written += 1
