"""Fixture: a client that talks to the service only via the wire protocol."""

from repro.core.protocol import Envelope


def stage(record, token):
    return Envelope(record=record, token=token)
