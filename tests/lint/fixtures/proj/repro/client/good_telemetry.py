"""Fixture: telemetry labels carrying only coarse categories (clean)."""


def record_coarse_labels(telemetry, entity_kind, shard_index, epoch):
    telemetry.inc("rsp.envelopes.accepted", record=entity_kind)
    telemetry.observe("rsp.shard.batch", 7, shard=shard_index)
    telemetry.span("epoch", 0.0, 1.0, epoch=epoch)


def value_positions_are_not_labels(self, device_id, identity, entity_id):
    # ``n``/``value``/``start``/``end`` carry measurements, not labels,
    # and a sanitized identity is fine anywhere.
    self.telemetry.inc("client.tokens.blinded", n=3)
    self.telemetry.set_gauge("mix.queue_depth", value=4)
    self.telemetry.inc("client.sync", history=identity.history_id(entity_id))
