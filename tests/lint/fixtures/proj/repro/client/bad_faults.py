"""BAD: device-side code importing the fault-injection subsystem."""

from repro.faults import FaultInjector


def peek_at_plan(injector: FaultInjector, now: float) -> bool:
    # A real client can never know whether its upload was dropped.
    return injector.server_down_at(now)
