"""Fixture: identity sanitized through hash(Ru, e) before upload."""

from repro.privacy.history_store import InteractionUpload


def sanitize(identity, entity_id, t):
    return InteractionUpload(
        history_id=identity.history_id(entity_id),
        entity_id=entity_id,
        interaction_type="visit",
        event_time=t,
        duration=600.0,
        travel_km=1.0,
    )
