"""Fixture: raw identity leaked into an upload payload (priv-taint-sink)."""

from repro.privacy.history_store import InteractionUpload


def leak(user_id, entity_id, t):
    return InteractionUpload(
        history_id=user_id,
        entity_id=entity_id,
        interaction_type="visit",
        event_time=t,
        duration=600.0,
        travel_km=1.0,
    )
