"""Fixture: device-side code importing server internals (layer-client-service)."""

from repro.service.server import RSPServer


def shortcut(server: RSPServer):
    return server.history_store
