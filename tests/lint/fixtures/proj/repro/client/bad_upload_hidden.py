"""Fixture: taints hidden inside wrapper nodes the old walk skipped.

Comprehension generators (``ast.comprehension``), lambda defaults
(``ast.arguments``), and subscripted callees are not ``ast.expr`` children
of their parents, so the pre-fix ``_iter_tainted`` never descended into
them; f-string values and ternary branches are pinned here too so the
covered cases cannot silently regress.
"""

from repro.core.protocol import Envelope


def leak_comprehension_iterable(user_id, fetch):
    return Envelope(record=[r for r in fetch(user_id)], token=None, nonce=b"n")


def leak_comprehension_condition(user_id, rows):
    return Envelope(
        record=[r for r in rows if r.owner == user_id], token=None, nonce=b"n"
    )


def leak_lambda_default(device_id):
    return Envelope(record=(lambda d=device_id: d), token=None, nonce=b"n")


def leak_subscripted_callee(handlers, user_id):
    return Envelope(record=handlers[user_id](), token=None, nonce=b"n")


def leak_fstring_value(device_id):
    return Envelope(record=f"dev-{device_id}", token=None, nonce=b"n")


def leak_fstring_format_spec(width, user_id):
    return Envelope(record=f"{width:{user_id}}", token=None, nonce=b"n")


def leak_ternary_branch(user_id, fallback, attributed):
    return Envelope(
        record=user_id if attributed else fallback, token=None, nonce=b"n"
    )
