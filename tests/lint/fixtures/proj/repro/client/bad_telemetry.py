"""Fixture: raw identities leaked into telemetry labels (priv-telemetry-label)."""


def leak_into_counter(telemetry, user_id):
    telemetry.inc("client.sync", user=user_id)


def leak_attribute_into_histogram(self, record):
    self.telemetry.observe("client.upload_delay", 3.0, device=record.device_id)


def leak_formatted_into_span(telemetry, device_id, start, end):
    telemetry.span("sync", start, end, owner=f"dev-{device_id}")
