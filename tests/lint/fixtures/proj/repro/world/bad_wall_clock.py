"""Fixture: wall-clock reads in a world module (det-wall-clock)."""

import time
from datetime import datetime


def stamp_event():
    return time.time()


def stamp_day():
    return datetime.now().date()
