"""Fixture: bare stdlib random in a world module (det-random-module)."""

import random


def sample_need():
    return random.random()
