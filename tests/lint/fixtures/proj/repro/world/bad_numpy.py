"""Fixture: direct numpy.random usage in a world module (det-numpy-random)."""

import numpy as np


def draw_visits(n):
    rng = np.random.default_rng()
    return rng.integers(0, 10, size=n)


def legacy_draw(n):
    return np.random.rand(n)
