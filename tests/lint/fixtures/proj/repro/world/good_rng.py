"""Fixture: determinism done right — seeded Generators via repro.util.rng."""

import numpy as np

from repro.util.rng import make_rng


def draw_visits(seed: int, n: int):
    rng = make_rng(seed, "world/visits")
    return rng.integers(0, 10, size=n)


def consume(rng: np.random.Generator) -> float:
    # Annotations and isinstance checks against np.random.Generator are
    # fine; only *calls* into numpy.random are forbidden.
    assert isinstance(rng, np.random.Generator)
    return float(rng.uniform())
