"""Fixture: a justified inline suppression silences det-random-module."""

import random  # repro: allow[det-random-module] — fixture: invariant stated here


def sample_need():
    return random.random()  # repro: allow[det-random-module] — fixture
