"""Fixture: read-path sets materialized through sorted() (det-read-path)."""


class Index:
    def __init__(self, view):
        self.view = view
        self.candidate_ids = set()
        self._postings = {}

    def warm(self):
        for entity_id in sorted(self.view.entities_with_histories()):
            self._postings[entity_id] = []
        return {entity_id for entity_id in sorted(self.view.review_entities())}

    def rank(self):
        return [entity_id for entity_id in sorted(self.candidate_ids)]
