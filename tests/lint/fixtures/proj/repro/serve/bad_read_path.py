"""Fixture: read-path sets iterated in hash order (det-read-path)."""


class Index:
    def __init__(self, view):
        self.view = view
        self.candidate_ids = set()
        self._postings = {}

    def warm(self):
        # Raw store-view set accessors iterated directly.
        for entity_id in self.view.entities_with_histories():
            self._postings[entity_id] = []
        return {entity_id for entity_id in self.view.review_entities()}

    def rank(self):
        # Bare iteration over an unsorted candidate collection.
        return [entity_id for entity_id in self.candidate_ids]
