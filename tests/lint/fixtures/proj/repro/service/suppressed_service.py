"""Fixture: the same violations waived by inline and file-level suppressions."""

# repro: allow-file[layer-service-client] — fixture: whole-file waiver

from repro.sensing.sensors import generate_trace
from repro.client.app import RSPClient


def issue(device_id):  # repro: allow[priv-server-identity] — fixture
    return (device_id, generate_trace, RSPClient)
