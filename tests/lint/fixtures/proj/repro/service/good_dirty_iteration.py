"""Fixture: dirty sets drained through sorted() (det-dirty-iteration)."""


class Engine:
    def __init__(self):
        self.dirty_entities = set()

    def drain(self):
        total = 0.0
        for entity_id in sorted(self.dirty_entities):
            total += float(len(entity_id))
        return total

    def snapshot(self, dirty):
        return [entity_id for entity_id in sorted(dirty)]
