"""Fixture: dirty sets iterated in hash order (det-dirty-iteration)."""


class Engine:
    def __init__(self):
        self.dirty_entities = set()
        self._dirty = set()

    def drain(self):
        total = 0.0
        for entity_id in self.dirty_entities:
            total += float(len(entity_id))
        return total

    def snapshot(self, dirty):
        return [entity_id for entity_id in dirty]
