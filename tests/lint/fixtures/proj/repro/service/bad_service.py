"""Fixture: service layer reaching into device code and handling identities
(layer-service-client + priv-server-identity)."""

from repro.sensing.sensors import generate_trace


def rebuild_profile(user_id, town):
    return generate_trace(user_id, town, None, 0.0, None)


class AccountRecord:
    user_id: str
