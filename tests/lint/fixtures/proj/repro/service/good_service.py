"""Fixture: server-side code staying inside its layer."""

from repro.core.protocol import Envelope
from repro.privacy.history_store import HistoryStore


def ingest(store: HistoryStore, envelope: Envelope, arrival_time: float):
    return store.append(envelope.record, arrival_time=arrival_time)
