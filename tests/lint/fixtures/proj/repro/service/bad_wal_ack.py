"""Broken: commits the acceptance before journaling the mutation."""


class Server:
    def receive_one(self, record, nonce):
        self.accepted_envelopes += 1
        self._seen_nonces.add(nonce)
        if self.journal is not None:
            self.journal.log_interaction(record, 0.0, nonce, None)
