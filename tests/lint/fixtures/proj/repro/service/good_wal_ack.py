"""Clean: the mutation reaches the WAL before the acceptance commit."""


class Server:
    def receive_one(self, record, nonce):
        if self.journal is not None:
            self.journal.log_interaction(record, 0.0, nonce, None)
        self.accepted_envelopes += 1
        self._seen_nonces.add(nonce)

    def rebind_bucket(self, nonce_bucket):
        # A plain assignment that *mentions* a commit spelling is not a
        # commit — the rule must not flag shard-bucket routing.
        nonce_bucket = list(nonce_bucket)
        return nonce_bucket
