"""Durability rule: WAL append before acceptance commit, writes flushed."""

from repro.lint import Analyzer, default_rules
from repro.lint.engine import LintConfig, parse_module
from repro.lint.rules_durability import FsyncBeforeAckRule

from tests.lint.conftest import rule_ids


class TestWalBeforeAckOrdering:
    def test_commit_before_append_is_flagged(self, lint_paths):
        result = lint_paths("service/bad_wal_ack.py")
        assert rule_ids(result) == ["durability-fsync-before-ack"]
        [violation] = result.violations
        assert "accepted_envelopes" in violation.message
        assert violation.line == 6

    def test_append_before_commit_is_clean(self, lint_paths):
        result = lint_paths("service/good_wal_ack.py")
        assert result.ok

    def test_nonce_set_add_counts_as_commit(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "service").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "service" / "__init__.py").write_text("")
        offender = pkg / "service" / "intake.py"
        offender.write_text(
            "class S:\n"
            "    def take(self, record, nonce):\n"
            "        self._seen_nonces.add(nonce)\n"
            "        self.journal.log_opinion(record, nonce, None)\n"
        )
        result = Analyzer(default_rules()).run([offender])
        assert rule_ids(result) == ["durability-fsync-before-ack"]

    def test_mark_accepted_helper_counts_as_commit(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "scale").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "scale" / "__init__.py").write_text("")
        offender = pkg / "scale" / "intake.py"
        offender.write_text(
            "class S:\n"
            "    def take(self, record, nonce):\n"
            "        self._mark_accepted(nonce)\n"
            "        self.journal.log_interaction(record, 0.0, nonce, None)\n"
        )
        result = Analyzer(default_rules()).run([offender])
        assert rule_ids(result) == ["durability-fsync-before-ack"]

    def test_commit_without_any_append_is_clean(self, tmp_path):
        # The helper that *performs* the commit contains no journal call;
        # the ordering check needs both markers in one function.
        pkg = tmp_path / "repro"
        (pkg / "service").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "service" / "__init__.py").write_text("")
        helper = pkg / "service" / "helper.py"
        helper.write_text(
            "class S:\n"
            "    def _mark_accepted(self, nonce):\n"
            "        self.accepted_envelopes += 1\n"
            "        self._seen_nonces.add(nonce)\n"
        )
        result = Analyzer(default_rules()).run([helper])
        assert result.ok

    def test_outside_service_packages_is_ignored(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "durability").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "durability" / "__init__.py").write_text("")
        # Recovery replays legitimately commit without appending anew.
        replay = pkg / "durability" / "replay.py"
        replay.write_text(
            "def commit(server, nonce):\n"
            "    server.accepted_envelopes += 1\n"
            "    server._seen_nonces.add(nonce)\n"
        )
        result = Analyzer(default_rules()).run([replay])
        assert result.ok

    def test_one_violation_per_function(self, lint_paths, fixture_root):
        module = parse_module(fixture_root / "service" / "bad_wal_ack.py")
        violations = list(FsyncBeforeAckRule().check(module, LintConfig()))
        assert len(violations) == 1


class TestUnflushedWrites:
    def test_unflushed_write_is_flagged(self, lint_paths):
        result = lint_paths("durability/bad_unflushed.py")
        assert rule_ids(result) == ["durability-fsync-before-ack"]
        [violation] = result.violations
        assert "_file" in violation.message

    def test_flushed_write_is_clean(self, lint_paths):
        result = lint_paths("durability/good_flushed.py")
        assert result.ok

    def test_non_wal_handles_are_ignored(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "durability").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "durability" / "__init__.py").write_text("")
        other = pkg / "durability" / "report.py"
        other.write_text(
            "def dump(handle, text):\n"
            "    handle.write(text)\n"
        )
        result = Analyzer(default_rules()).run([other])
        assert result.ok

    def test_suppression_comment_waives(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "durability").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "durability" / "__init__.py").write_text("")
        waived = pkg / "durability" / "waived.py"
        waived.write_text(
            "class L:\n"
            "    def append(self, frame):\n"
            "        self._file.write(frame)  "
            "# repro: allow[durability-fsync-before-ack]\n"
        )
        result = Analyzer(default_rules()).run([waived])
        assert result.ok
        assert [v.rule_id for v in result.sorted_suppressed()] == [
            "durability-fsync-before-ack"
        ]


class TestSelfClean:
    def test_production_intake_paths_are_clean(self):
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        result = Analyzer([FsyncBeforeAckRule()]).run(
            [src / "service", src / "scale", src / "durability"]
        )
        assert result.ok, "\n".join(v.render() for v in result.sorted_violations())
