"""Privacy rule family: taint into sinks, identity in the service layer."""

from tests.lint.conftest import rule_ids


class TestSinkTaint:
    def test_raw_identity_into_upload_payload_is_flagged(self, lint_paths):
        result = lint_paths("client/bad_upload.py")
        assert rule_ids(result) == ["priv-taint-sink"]
        [violation] = result.violations
        assert "`user_id`" in violation.message
        assert "InteractionUpload" in violation.message
        assert violation.line == 8  # the history_id=user_id keyword

    def test_sanitized_identity_passes(self, lint_paths):
        result = lint_paths("client/good_upload.py")
        assert result.ok

    def test_wire_protocol_envelope_without_identity_passes(self, lint_paths):
        result = lint_paths("client/good_client.py")
        assert result.ok

    def test_taints_hidden_in_wrapper_nodes_are_flagged(self, lint_paths):
        # Regressions for the `_iter_tainted` blind spots: comprehension
        # generators, lambda defaults, and subscripted callees hide their
        # expressions inside non-expr wrapper nodes; f-strings and
        # ternaries are pinned alongside so they cannot regress either.
        result = lint_paths("client/bad_upload_hidden.py")
        assert rule_ids(result) == ["priv-taint-sink"] * 7
        tainted = [
            v.message.split("`")[1] for v in result.sorted_violations()
        ]
        assert tainted == [
            "user_id",  # comprehension iterable
            "user_id",  # comprehension condition
            "device_id",  # lambda default
            "user_id",  # subscripted callee
            "device_id",  # f-string value
            "user_id",  # f-string format spec
            "user_id",  # ternary branch
        ]


class TestServerIdentity:
    def test_identity_parameter_and_field_in_service_layer(self, lint_paths):
        result = lint_paths("service/bad_service.py")
        ids = rule_ids(result)
        assert ids.count("priv-server-identity") == 2  # def param + class field
        messages = [
            v.message
            for v in result.violations
            if v.rule_id == "priv-server-identity"
        ]
        assert any("rebuild_profile" in m for m in messages)
        assert any("AccountRecord" in m for m in messages)

    def test_rule_only_applies_to_service_packages(self, lint_paths):
        # The same identifier spellings on the client side are fine: the
        # device is *supposed* to know who its user is.
        result = lint_paths("client/bad_upload.py")
        assert "priv-server-identity" not in rule_ids(result)

    def test_server_side_code_without_identities_passes(self, lint_paths):
        result = lint_paths("service/good_service.py")
        assert result.ok


class TestTelemetryLabel:
    def test_identity_in_label_positions_is_flagged(self, lint_paths):
        result = lint_paths("client/bad_telemetry.py")
        ids = rule_ids(result)
        # One per leak site: a bare name on inc(), an attribute on
        # observe(), and an f-string-wrapped name on span().
        assert ids == ["priv-telemetry-label"] * 3
        messages = [v.message for v in result.violations]
        assert any("`user_id`" in m and "`user`" in m for m in messages)
        assert any("`device_id`" in m and "`device`" in m for m in messages)
        assert any("`owner`" in m and "span" in m for m in messages)

    def test_coarse_labels_and_value_params_pass(self, lint_paths):
        result = lint_paths("client/good_telemetry.py")
        assert result.ok

    def test_rule_fires_outside_service_packages_too(self, lint_paths):
        # Unlike priv-server-identity, label hygiene is global: client-side
        # code records into the same exported registry.
        result = lint_paths("client/bad_telemetry.py")
        assert "priv-telemetry-label" in rule_ids(result)
