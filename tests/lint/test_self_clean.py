"""Integration: the analyzer holds over the entire ``src/repro`` tree.

This is the enforcement test: any future change that leaks an identity
into a sink, draws ambient randomness/time, or crosses the client/server
boundary fails the tier-1 suite here with the precise rule and location.
"""

from pathlib import Path

import pytest

import repro
from repro.lint import Analyzer, default_rules
from repro.lint.cli import main as lint_main

SRC_REPRO = Path(repro.__file__).parent


def test_source_tree_location_sanity():
    assert (SRC_REPRO / "lint" / "engine.py").exists()
    assert (SRC_REPRO / "service" / "server.py").exists()


def test_whole_tree_has_zero_violations():
    result = Analyzer(default_rules()).run([SRC_REPRO])
    rendered = "\n".join(v.render() for v in result.sorted_violations())
    assert result.ok, f"repro.lint violations in src/repro:\n{rendered}"
    assert result.n_files > 70  # the whole tree, not an accidental subset


def test_every_waiver_is_a_known_audited_exception():
    """Suppressions are load-bearing documentation: each one must sit in a
    sanctioned touchpoint — the server facades' identity edges (token
    issuance and explicit-review posting), the journal's wall-clock
    snapshot timer, the soak harness's throughput/latency stopwatch, or
    the serving layer's query-latency stopwatch (all observability-only:
    the readings land in DEPLOYMENT scope, never in a report or an
    invariant digest)."""
    result = Analyzer(default_rules()).run([SRC_REPRO])
    by_file = {}
    for violation in result.suppressed:
        if violation.rule_id == "priv-server-identity":
            assert violation.path.endswith(("service/server.py", "scale/server.py"))
        else:
            assert violation.rule_id == "det-wall-clock"
            assert violation.path.endswith(
                ("durability/journal.py", "ingest/soak.py", "serve/facade.py")
            )
        by_file[violation.path] = by_file.get(violation.path, 0) + 1
    # The monolith's three identity touchpoints, mirrored minus the
    # redeemer internals by the sharded facade, the journal's two
    # perf_counter reads around the snapshot write, the soak harness's
    # single stopwatch read, and the serving layer's two perf_counter
    # reads around a query.
    assert sorted(by_file.values()) == [1, 2, 2, 2, 3]


def test_cli_exits_zero_on_the_tree(capsys):
    assert lint_main([str(SRC_REPRO)]) == 0
    assert "no violations" in capsys.readouterr().out


@pytest.mark.parametrize("subpackage", ["client", "sensing", "service", "world"])
def test_each_layer_is_individually_clean(subpackage):
    result = Analyzer(default_rules()).run([SRC_REPRO / subpackage])
    assert result.ok
