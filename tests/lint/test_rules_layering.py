"""Layering rule family: the Figure 2 device/service boundary."""

from repro.lint import Analyzer, default_rules

from tests.lint.conftest import rule_ids


class TestClientImportsService:
    def test_client_importing_server_internals_is_flagged(self, lint_paths):
        result = lint_paths("client/bad_import.py")
        assert rule_ids(result) == ["layer-client-service"]
        [violation] = result.violations
        assert "repro.service" in violation.message
        assert violation.line == 3

    def test_client_using_wire_protocol_passes(self, lint_paths):
        result = lint_paths("client/good_client.py")
        assert result.ok


class TestServiceImportsClient:
    def test_service_importing_sensing_is_flagged(self, lint_paths):
        result = lint_paths("service/bad_service.py")
        assert "layer-service-client" in rule_ids(result)

    def test_service_staying_in_layer_passes(self, lint_paths):
        result = lint_paths("service/good_service.py")
        assert result.ok

    def test_relative_imports_resolve_before_matching(self, tmp_path):
        # ``from ..sensing import sensors`` inside repro/service must be
        # recognized as a repro.sensing import.
        pkg = tmp_path / "repro"
        (pkg / "service").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "service" / "__init__.py").write_text("")
        offender = pkg / "service" / "sneaky.py"
        offender.write_text("from ..sensing import sensors\n")
        result = Analyzer(default_rules()).run([offender])
        assert rule_ids(result) == ["layer-service-client"]


class TestOrchestrationIsExempt:
    def test_orchestration_may_import_both_sides(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "orchestration").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "orchestration" / "__init__.py").write_text("")
        driver = pkg / "orchestration" / "driver.py"
        driver.write_text(
            "from repro.client.app import RSPClient\n"
            "from repro.sensing.sensors import generate_trace\n"
            "from repro.service.server import RSPServer\n"
        )
        result = Analyzer(default_rules()).run([driver])
        assert result.ok
