"""Reporters and both CLI entry points (`python -m repro.lint`, `repro lint`)."""

import json

import pytest

from repro.cli import main as repro_main
from repro.lint import Analyzer, default_rules, render_json, render_text
from repro.lint.cli import main as lint_main

from tests.lint.conftest import FIXTURE_ROOT

#: The acceptance trio: deliberately broken fixtures and the rule each must trip.
BROKEN_FIXTURES = [
    ("client/bad_upload.py", "priv-taint-sink"),
    ("world/bad_random.py", "det-random-module"),
    ("client/bad_import.py", "layer-client-service"),
]


class TestTextReporter:
    def test_violation_lines_and_summary(self):
        result = Analyzer(default_rules()).run([FIXTURE_ROOT / "world" / "bad_random.py"])
        text = render_text(result)
        assert "bad_random.py:3:0: det-random-module" in text
        assert "FAIL: 2 violation(s) in 1 file(s) checked" in text

    def test_clean_run_reports_ok_and_suppressed_count(self):
        result = Analyzer(default_rules()).run(
            [FIXTURE_ROOT / "world" / "suppressed_random.py"]
        )
        text = render_text(result)
        assert text.startswith("OK: checked 1 file(s), no violations")
        assert "(2 suppressed)" in text

    def test_show_suppressed_lists_waived_findings(self):
        result = Analyzer(default_rules()).run(
            [FIXTURE_ROOT / "world" / "suppressed_random.py"]
        )
        text = render_text(result, show_suppressed=True)
        assert "det-random-module" in text
        assert "(suppressed)" in text


class TestJsonReporter:
    def test_document_shape(self):
        result = Analyzer(default_rules()).run([FIXTURE_ROOT / "client"])
        document = json.loads(render_json(result))
        assert document["ok"] is False
        assert document["files_checked"] == 9  # 8 modules + __init__
        assert document["violation_count"] == len(document["violations"])
        for violation in document["violations"]:
            assert set(violation) == {
                "rule_id",
                "path",
                "line",
                "col",
                "message",
                "suppressed",
            }
            assert violation["suppressed"] is False

    def test_suppressed_findings_are_reported_separately(self):
        result = Analyzer(default_rules()).run(
            [FIXTURE_ROOT / "service" / "suppressed_service.py"]
        )
        document = json.loads(render_json(result))
        assert document["ok"] is True
        assert document["violation_count"] == 0
        assert document["suppressed_count"] >= 2
        assert {v["rule_id"] for v in document["suppressed"]} == {
            "layer-service-client",
            "priv-server-identity",
        }


class TestBrokenFixturesBothFormats:
    @pytest.mark.parametrize("relpath,expected_rule", BROKEN_FIXTURES)
    def test_text_output_names_the_rule(self, capsys, relpath, expected_rule):
        exit_code = lint_main([str(FIXTURE_ROOT / relpath)])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert expected_rule in out

    @pytest.mark.parametrize("relpath,expected_rule", BROKEN_FIXTURES)
    def test_json_output_names_the_rule(self, capsys, relpath, expected_rule):
        exit_code = lint_main([str(FIXTURE_ROOT / relpath), "--format", "json"])
        assert exit_code == 1
        document = json.loads(capsys.readouterr().out)
        assert expected_rule in {v["rule_id"] for v in document["violations"]}


class TestCliBehaviour:
    def test_clean_paths_exit_zero(self, capsys):
        assert lint_main([str(FIXTURE_ROOT / "world" / "good_rng.py")]) == 0
        assert "OK" in capsys.readouterr().out

    def test_select_limits_rules(self, capsys):
        exit_code = lint_main(
            [str(FIXTURE_ROOT / "service" / "bad_service.py"), "--select", "priv-server-identity"]
        )
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "priv-server-identity" in out
        assert "layer-service-client" not in out

    def test_ignore_skips_rules(self, capsys):
        exit_code = lint_main(
            [
                str(FIXTURE_ROOT / "service" / "bad_service.py"),
                "--ignore",
                "priv-server-identity,layer-service-client",
            ]
        )
        assert exit_code == 0
        capsys.readouterr()

    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        assert lint_main(["--select", "no-such-rule"]) == 2
        assert "unknown rule id" in capsys.readouterr().out

    def test_unknown_ignore_id_is_a_usage_error(self, capsys):
        assert lint_main(["--ignore", "privtaint-sink"]) == 2
        assert "unknown rule id" in capsys.readouterr().out

    def test_empty_selection_is_a_usage_error(self, capsys):
        # `--select ""` used to silently select *nothing* and exit green —
        # a vacuous pass for any gate built on `--select <rule>`.
        assert lint_main(["--select", " , "]) == 2
        assert "no rule ids parsed" in capsys.readouterr().out

    def test_select_ignore_cancelling_out_is_a_usage_error(self, capsys):
        exit_code = lint_main(
            ["--select", "priv-taint-sink", "--ignore", "priv-taint-sink"]
        )
        assert exit_code == 2
        assert "leaves no rules" in capsys.readouterr().out

    def test_duplicate_findings_are_reported_once(self):
        # Running the same rule twice must not double-report: the engine
        # de-duplicates identical findings and sorts deterministically.
        from repro.lint.rules_privacy import SinkTaintRule

        result = Analyzer([SinkTaintRule(), SinkTaintRule()]).run(
            [FIXTURE_ROOT / "client" / "bad_upload.py"]
        )
        assert len(result.violations) == 1

    def test_list_rules_names_every_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.rule_id in out


class TestReproCliSubcommand:
    def test_repro_lint_subcommand_runs_the_analyzer(self, capsys):
        exit_code = repro_main(["lint", str(FIXTURE_ROOT / "world" / "bad_random.py")])
        assert exit_code == 1
        assert "det-random-module" in capsys.readouterr().out

    def test_repro_lint_subcommand_clean_exit(self, capsys):
        exit_code = repro_main(["lint", str(FIXTURE_ROOT / "client" / "good_upload.py")])
        assert exit_code == 0
        capsys.readouterr()
