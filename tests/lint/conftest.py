"""Shared helpers for the lint suite."""

from pathlib import Path

import pytest

from repro.lint import Analyzer, default_rules
from repro.lint.engine import LintResult

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "proj" / "repro"


@pytest.fixture
def fixture_root() -> Path:
    return FIXTURE_ROOT


@pytest.fixture
def lint_paths():
    """Run the full default rule set over fixture-relative paths."""

    def run(*relative: str) -> LintResult:
        paths = [FIXTURE_ROOT / rel for rel in relative]
        for path in paths:
            assert path.exists(), f"missing fixture {path}"
        return Analyzer(default_rules()).run(paths)

    return run


def rule_ids(result: LintResult) -> list[str]:
    return [violation.rule_id for violation in result.sorted_violations()]
