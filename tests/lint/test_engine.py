"""Engine mechanics: module naming, suppressions, file walking, parse errors."""


from repro.lint import Analyzer, default_rules
from repro.lint.engine import (
    PARSE_ERROR_RULE_ID,
    collect_suppressions,
    iter_python_files,
    module_name_for,
)

from tests.lint.conftest import FIXTURE_ROOT


class TestModuleNames:
    def test_walks_up_package_tree(self):
        path = FIXTURE_ROOT / "world" / "bad_random.py"
        assert module_name_for(path) == "repro.world.bad_random"

    def test_init_names_the_package_itself(self):
        assert module_name_for(FIXTURE_ROOT / "world" / "__init__.py") == "repro.world"

    def test_file_outside_any_package_is_its_own_module(self, tmp_path):
        loose = tmp_path / "loose.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) == "loose"


class TestSuppressionParsing:
    def test_line_suppression_single_id(self):
        per_line, whole = collect_suppressions(
            "import random  # repro: allow[det-random-module] — why\n"
        )
        assert per_line == {1: frozenset({"det-random-module"})}
        assert whole == frozenset()

    def test_line_suppression_multiple_ids(self):
        per_line, _ = collect_suppressions(
            "x = f(user_id)  # repro: allow[priv-taint-sink, det-random-module]\n"
        )
        assert per_line[1] == {"priv-taint-sink", "det-random-module"}

    def test_file_suppression(self):
        _, whole = collect_suppressions(
            "# repro: allow-file[layer-service-client] — fixture\nimport os\n"
        )
        assert whole == frozenset({"layer-service-client"})

    def test_plain_comments_are_not_suppressions(self):
        per_line, whole = collect_suppressions("# just a comment\nx = 1  # another\n")
        assert per_line == {} and whole == frozenset()


class TestSuppressionApplication:
    def test_inline_suppression_moves_violation_aside(self, lint_paths):
        result = lint_paths("world/suppressed_random.py")
        assert result.ok
        assert {v.rule_id for v in result.suppressed} == {"det-random-module"}
        assert all(v.suppressed for v in result.suppressed)

    def test_file_level_suppression_covers_every_line(self, lint_paths):
        result = lint_paths("service/suppressed_service.py")
        assert result.ok
        suppressed_ids = {v.rule_id for v in result.suppressed}
        assert "layer-service-client" in suppressed_ids
        assert "priv-server-identity" in suppressed_ids

    def test_suppression_does_not_hide_other_rules(self, tmp_path):
        # An allow[] for one rule must not waive a different rule on the line.
        source = "import random  # repro: allow[det-wall-clock]\n"
        bad = tmp_path / "mod.py"
        bad.write_text(source)
        result = Analyzer(default_rules()).run([bad])
        assert [v.rule_id for v in result.violations] == ["det-random-module"]


class TestFileWalking:
    def test_directories_expand_recursively_and_dedupe(self):
        world = FIXTURE_ROOT / "world"
        twice = list(iter_python_files([world, world / "bad_random.py"]))
        names = [path.name for path in twice]
        assert names.count("bad_random.py") == 1
        assert "bad_numpy.py" in names

    def test_hidden_directories_are_skipped(self, tmp_path):
        hidden = tmp_path / ".cache"
        hidden.mkdir()
        (hidden / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        names = [path.name for path in iter_python_files([tmp_path])]
        assert names == ["real.py"]


class TestParseErrors:
    def test_unparseable_file_is_a_violation_not_a_crash(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        result = Analyzer(default_rules()).run([broken])
        assert not result.ok
        [violation] = result.violations
        assert violation.rule_id == PARSE_ERROR_RULE_ID
        assert str(broken) == violation.path


class TestCleanFixtures:
    def test_good_fixtures_produce_no_findings(self, lint_paths):
        result = lint_paths(
            "world/good_rng.py",
            "client/good_client.py",
            "client/good_upload.py",
            "service/good_service.py",
        )
        assert result.ok
        assert result.suppressed == []
        assert result.n_files == 4
