"""Fault-containment rule: only the harness may import repro.faults."""

import ast

from repro.lint import Analyzer, default_rules
from repro.lint.engine import LintConfig, parse_module
from repro.lint.rules_faults import FaultsOnlyInHarnessRule

from tests.lint.conftest import rule_ids


class TestFaultsOnlyInHarness:
    def test_client_importing_faults_is_flagged(self, lint_paths):
        result = lint_paths("client/bad_faults.py")
        assert rule_ids(result) == ["faults-only-in-harness"]
        [violation] = result.violations
        assert "repro.faults" in violation.message
        assert violation.line == 3

    def test_orchestration_may_import_faults(self, lint_paths):
        result = lint_paths("orchestration/good_faults_driver.py")
        assert result.ok

    def test_cli_module_is_harness(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        cli = pkg / "cli.py"
        cli.write_text("from repro.faults import FaultPlan\n")
        result = Analyzer(default_rules()).run([cli])
        assert result.ok

    def test_service_importing_faults_is_flagged(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "service").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "service" / "__init__.py").write_text("")
        offender = pkg / "service" / "server.py"
        offender.write_text("import repro.faults.injector\n")
        result = Analyzer(default_rules()).run([offender])
        assert rule_ids(result) == ["faults-only-in-harness"]

    def test_code_outside_guarded_root_is_ignored(self, tmp_path):
        loose = tmp_path / "scratch.py"
        loose.write_text("from repro.faults import FaultPlan\n")
        result = Analyzer(default_rules()).run([loose])
        assert result.ok

    def test_relative_import_of_faults_resolves(self, tmp_path):
        # ``from ..faults import injector`` inside repro/privacy must be
        # recognized as a repro.faults import.
        pkg = tmp_path / "repro"
        (pkg / "privacy").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "privacy" / "__init__.py").write_text("")
        offender = pkg / "privacy" / "sneaky.py"
        offender.write_text("from ..faults import injector\n")
        result = Analyzer(default_rules()).run([offender])
        assert rule_ids(result) == ["faults-only-in-harness"]

    def test_suppression_comment_waives(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "client").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "client" / "__init__.py").write_text("")
        waived = pkg / "client" / "waived.py"
        waived.write_text(
            "import repro.faults  # repro: allow[faults-only-in-harness]\n"
        )
        result = Analyzer(default_rules()).run([waived])
        assert result.ok
        assert rule_ids(result) == []
        assert [v.rule_id for v in result.sorted_suppressed()] == [
            "faults-only-in-harness"
        ]

    def test_one_violation_per_import_statement(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "client").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "client" / "__init__.py").write_text("")
        offender = pkg / "client" / "greedy.py"
        offender.write_text("from repro.faults import FaultPlan, FaultInjector\n")
        module = parse_module(offender)
        assert not isinstance(module, ast.AST)
        violations = list(
            FaultsOnlyInHarnessRule().check(module, LintConfig())
        )
        assert len(violations) == 1
