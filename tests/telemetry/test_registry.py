"""Unit tests for the telemetry core: labels, instruments, facade, dashboard."""

import pytest

from repro.telemetry import (
    AGGREGATE,
    DEPLOYMENT,
    NULL,
    LabelPolicyError,
    MetricError,
    MetricsRegistry,
    SpanTimeline,
    Telemetry,
)
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.labels import canonical_labels, format_labels, validate_label
from repro.telemetry.registry import SUM_SCALE, Counter, Gauge, Histogram


class TestLabelPolicy:
    def test_allowed_keys_and_token_values(self):
        assert validate_label("reason", "token") == "token"
        assert validate_label("epoch", 3) == "3"
        assert validate_label("shard", 0) == "0"

    def test_unknown_key_rejected(self):
        with pytest.raises(LabelPolicyError, match="aggregate-label vocabulary"):
            validate_label("user", "u-1")

    def test_long_value_rejected(self):
        with pytest.raises(LabelPolicyError, match="exceeds 24 characters"):
            validate_label("reason", "x" * 25)

    def test_hash_shaped_value_rejected(self):
        # 16+ hex chars is the shape of hash(Ru, e) keys, nonces, and tags.
        with pytest.raises(LabelPolicyError, match="hex run"):
            validate_label("reason", "8e602d290266cd06")

    def test_bool_and_float_values_rejected(self):
        with pytest.raises(LabelPolicyError):
            validate_label("outcome", True)
        with pytest.raises(LabelPolicyError):
            validate_label("epoch", 1.5)

    def test_canonical_labels_sorted_and_rendered(self):
        labels = canonical_labels({"shard": 2, "epoch": 1})
        assert labels == (("epoch", "1"), ("shard", "2"))
        assert format_labels(labels) == "{epoch=1,shard=2}"


class TestCounter:
    def test_monotone_integer_only(self):
        counter = Counter()
        counter.inc(2)
        counter.inc()
        assert counter.value == 3
        with pytest.raises(MetricError):
            counter.inc(-1)
        with pytest.raises(MetricError):
            counter.inc(1.5)
        with pytest.raises(MetricError):
            counter.inc(True)


class TestGauge:
    def test_merge_keeps_highest_version(self):
        a, b = Gauge(), Gauge()
        a.set(10.0)
        b.set(1.0)
        b.set(2.0)  # version 2 beats version 1 regardless of value
        a.merge_from(b)
        assert (a.version, a.value) == (2, 2.0)

    def test_equal_versions_tiebreak_on_value(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(5.0)
        a.merge_from(b)
        assert a.value == 5.0


class TestHistogram:
    def test_bucketing_and_fixed_point_sum(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(0.5)
        h.observe(1.0)  # inclusive upper edge
        h.observe(7.0)
        h.observe(99.0)  # overflow bucket
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum_scaled == round(107.5 * SUM_SCALE)
        assert h.min == 0.5 and h.max == 99.0

    def test_bounds_must_increase(self):
        with pytest.raises(MetricError):
            Histogram(bounds=(1.0, 1.0))

    def test_merge_requires_equal_bounds(self):
        a, b = Histogram((1.0,)), Histogram((2.0,))
        with pytest.raises(MetricError):
            a.merge_from(b)


class TestRegistry:
    def test_declaration_fixed_at_first_use(self):
        registry = MetricsRegistry()
        registry.inc("rsp.envelopes.accepted")
        with pytest.raises(MetricError, match="is a counter"):
            registry.observe("rsp.envelopes.accepted", 1.0)
        with pytest.raises(MetricError, match="aggregate-scope"):
            registry.inc("rsp.envelopes.accepted", scope=DEPLOYMENT)

    def test_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.inc("rsp.envelopes.rejected", reason="token")
        registry.inc("rsp.envelopes.rejected", 2, reason="malformed")
        assert registry.total("rsp.envelopes.rejected") == 3
        assert registry.total("never.used") == 0
        registry.set_gauge("mix.queue_depth", 4)
        with pytest.raises(MetricError):
            registry.total("mix.queue_depth")

    def test_labels_validated_at_recording_time(self):
        registry = MetricsRegistry()
        with pytest.raises(LabelPolicyError):
            registry.inc("mix.submissions", entity_kind="chan-8e602d290266cd06")

    def test_export_is_canonical_and_scope_filtered(self):
        registry = MetricsRegistry()
        registry.inc("b.metric")
        registry.inc("a.metric", shard=1, scope=DEPLOYMENT)
        rows = registry.snapshot()
        assert [r["name"] for r in rows] == ["a.metric", "b.metric"]
        assert [r["name"] for r in registry.snapshot(scope=AGGREGATE)] == ["b.metric"]
        assert registry.export_json(scope=AGGREGATE) == (
            registry.merged(MetricsRegistry()).export_json(scope=AGGREGATE)
        )


class TestSpans:
    def test_record_validates_and_sorts(self):
        timeline = SpanTimeline()
        timeline.record("epoch", 10.0, 20.0, epoch=2)
        timeline.record("epoch", 0.0, 10.0, epoch=1)
        assert [s.start for s in timeline.spans()] == [0.0, 10.0]
        assert timeline.spans("epoch")[0].duration == 10.0
        with pytest.raises(MetricError):
            timeline.record("epoch", 5.0, 1.0)

    def test_snapshot_scope_filter(self):
        timeline = SpanTimeline()
        timeline.record("maintenance", 0.0, 0.0)
        timeline.record("shard.maintenance", 0.0, 0.0, scope=DEPLOYMENT, shard=1)
        assert len(timeline.snapshot()) == 2
        assert len(timeline.snapshot(scope=AGGREGATE)) == 1


class TestNullTelemetry:
    def test_all_recording_is_a_noop(self):
        # NULL silently accepts even policy-violating labels: the policy
        # guards what gets *exported*, and NULL exports nothing.
        NULL.inc("anything", user="8e602d290266cd065079349721b76145")
        NULL.observe("anything.else", 1.0)
        NULL.set_gauge("g", 2.0)
        assert NULL.span("s", 0.0, 1.0) is None
        assert not NULL.enabled
        assert NULL.export() == {"metrics": [], "spans": []}

    def test_null_cannot_accumulate(self):
        with pytest.raises(TypeError):
            NULL.merge_from(Telemetry())


class TestDashboard:
    def test_renders_all_instrument_kinds(self):
        telemetry = Telemetry()
        telemetry.inc("rsp.envelopes.accepted", 5, record="interaction")
        telemetry.set_gauge("mix.queue_depth", 7)
        telemetry.observe("rsp.intake.batch", 3.0, buckets=(1.0, 5.0))
        telemetry.span("epoch", 0.0, 86400.0, epoch=1)
        text = render_dashboard(telemetry)
        assert "rsp.envelopes.accepted" in text
        assert "mix.queue_depth" in text
        assert "rsp.intake.batch" in text
        assert "epoch" in text

    def test_empty_dashboard(self):
        assert "no telemetry" in render_dashboard(Telemetry())
