"""Property tests: telemetry merge is commutative, associative, identity-safe.

Hand-rolled generators over ``repro.util.rng``, mirroring
``tests/scale/test_merge_properties.py``: histogram observations use
dyadic rationals (k/16), for which both the fixed-point sum and min/max
are exact, so every property is asserted as byte-equality of the
canonical export — not approximation.  The partition property is the one
the sharded deployment leans on: a stream of events split across any
number of per-shard registries and folded in any order must export the
same bytes as one registry that saw everything.
"""

from repro.telemetry import DEPLOYMENT, MetricsRegistry, SpanTimeline, Telemetry
from repro.util.rng import make_rng

from repro.telemetry.catalog import INTAKE_BATCH_BUCKETS

#: Closed pools the generators draw from (labels must satisfy the policy).
COUNTER_NAMES = ("rsp.envelopes.accepted", "mix.dropped", "client.retransmissions")
REASONS = ("token", "malformed", "unknown-entity")
GAUGE_NAMES = ("mix.queue_depth", "rsp.maintenance.histories")
HISTOGRAM_NAMES = ("rsp.intake.batch", "mix.batch_size")
SPAN_NAMES = ("epoch", "maintenance")


def dyadic(rng, low=0, high=16 * 4096):
    """A float that IEEE-754 addition treats exactly: k/16."""
    return float(int(rng.integers(low, high))) / 16.0


def random_event(rng):
    """One recording action, replayable against any registry."""
    kind = int(rng.integers(0, 4))
    if kind == 0:
        name = COUNTER_NAMES[int(rng.integers(0, len(COUNTER_NAMES)))]
        reason = REASONS[int(rng.integers(0, len(REASONS)))]
        n = int(rng.integers(1, 5))
        return ("inc", name, n, {"reason": reason})
    if kind == 1:
        name = GAUGE_NAMES[int(rng.integers(0, len(GAUGE_NAMES)))]
        return ("set_gauge", name, dyadic(rng), {})
    if kind == 2:
        name = HISTOGRAM_NAMES[int(rng.integers(0, len(HISTOGRAM_NAMES)))]
        return ("observe", name, dyadic(rng, high=16 * 600), {})
    start = dyadic(rng)
    name = SPAN_NAMES[int(rng.integers(0, len(SPAN_NAMES)))]
    return ("span", name, (start, start + dyadic(rng)), {"epoch": int(rng.integers(1, 9))})


def apply_event(telemetry, event):
    action, name, value, labels = event
    if action == "inc":
        telemetry.inc(name, value, **labels)
    elif action == "set_gauge":
        telemetry.set_gauge(name, value, **labels)
    elif action == "observe":
        telemetry.observe(name, value, buckets=INTAKE_BATCH_BUCKETS, **labels)
    else:
        telemetry.span(name, value[0], value[1], **labels)


def random_telemetry(rng, n_events=40):
    telemetry = Telemetry()
    for _ in range(int(rng.integers(1, n_events))):
        apply_event(telemetry, random_event(rng))
    return telemetry


class TestMergeAlgebra:
    def test_commutative(self):
        rng = make_rng(1, "telemetry/test/merge-comm")
        for _ in range(50):
            a, b = random_telemetry(rng), random_telemetry(rng)
            assert a.merged(b).export_json() == b.merged(a).export_json()

    def test_associative(self):
        rng = make_rng(2, "telemetry/test/merge-assoc")
        for _ in range(50):
            a, b, c = (random_telemetry(rng) for _ in range(3))
            left = a.merged(b).merged(c)
            right = a.merged(b.merged(c))
            assert left.export_json() == right.export_json()

    def test_empty_is_identity(self):
        rng = make_rng(3, "telemetry/test/merge-identity")
        for _ in range(20):
            a = random_telemetry(rng)
            assert a.merged(Telemetry()).export_json() == a.export_json()
            assert Telemetry().merged(a).export_json() == a.export_json()

    def test_merge_does_not_mutate_inputs(self):
        rng = make_rng(4, "telemetry/test/merge-pure")
        a, b = random_telemetry(rng), random_telemetry(rng)
        before_a, before_b = a.export_json(), b.export_json()
        a.merged(b)
        assert a.export_json() == before_a
        assert b.export_json() == before_b


class TestPartitionInvariance:
    """Splitting one event stream across shards must not change the export."""

    def partition_digests(self, seed, n_shards):
        rng = make_rng(seed, "telemetry/test/partition")
        # Counters, histograms, and spans are exactly partition-invariant.
        # Gauges are last-writer-wins with per-registry versions, so they
        # are excluded: deployments set gauges from merged state only
        # (see run_maintenance), never from per-shard partial state.
        events = [
            e for e in (random_event(rng) for _ in range(200)) if e[0] != "set_gauge"
        ]
        whole = Telemetry()
        for event in events:
            apply_event(whole, event)
        shards = [Telemetry() for _ in range(n_shards)]
        for index, event in enumerate(events):
            apply_event(shards[index % n_shards], event)
        folded = shards[0].merged(*shards[1:])
        return whole.export_json(), folded.export_json()

    def test_invariant_under_shard_count(self):
        for n_shards in (1, 2, 4, 8):
            whole, folded = self.partition_digests(seed=5, n_shards=n_shards)
            assert whole == folded

    def test_fold_order_irrelevant(self):
        rng = make_rng(6, "telemetry/test/fold-order")
        parts = [random_telemetry(rng) for _ in range(5)]
        forward = parts[0].merged(*parts[1:])
        backward = parts[-1].merged(*parts[-2::-1])
        assert forward.export_json() == backward.export_json()


class TestRegistryAndTimelineMerge:
    def test_registry_merge_creates_missing_instruments(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("rsp.envelopes.accepted", 3)
        b.inc("rsp.pool.fallbacks", scope=DEPLOYMENT)
        a.merge_from(b)
        assert a.total("rsp.envelopes.accepted") == 3
        assert a.export_json() == b.export_json()

    def test_timeline_merge_concatenates_and_resorts(self):
        a, b = SpanTimeline(), SpanTimeline()
        a.record("epoch", 10.0, 20.0)
        b.record("epoch", 0.0, 10.0)
        merged = a.merged(b)
        assert [s.start for s in merged.spans()] == [0.0, 10.0]
        assert merged.export_json() == b.merged(a).export_json()
