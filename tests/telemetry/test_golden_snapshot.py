"""Golden pins for the aggregate telemetry export of canonical scenarios.

The aggregate-scope export (``Telemetry.digest(scope=AGGREGATE)``) is the
observability twin of the epoch-report pins in
``tests/scale/test_golden_digest.py``: a pure function of *what happened*
in the deployment, contractually byte-identical for every shard and
worker count.  The grid below is the ISSUE's acceptance matrix — shards
{1, 4, 8} × workers {1, 4} — plus the monolith that sources the pin.

If a pin moves because of an *intentional* change to the metric catalog
or instrumentation points, re-derive it with the helpers below and
update the constant in the same commit, saying why.
"""

import pytest

from repro.faults import DropFault, DuplicateFault, FaultPlan, Window
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.uploads import RetransmitPolicy
from repro.telemetry import AGGREGATE
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 28.0
HORIZON = HORIZON_DAYS * DAY

# Re-derived when incremental maintenance landed: the aggregate export
# gained the dirty-set/cache-hit metric family (rsp.maintenance.dirty_*,
# cache_hits/cache_skips, redirtied, dirty_set histogram), all computed
# from tracked sets so the digest stays invariant across deployments,
# worker counts, and incremental vs full recompute.
GOLDEN_TELEMETRY_CLEAN = (
    "9c7ad644656c302f0c53a880e3d97e1e45ff38130f73197eac313d77a1ac3240"
)
GOLDEN_TELEMETRY_CHAOS = (
    "c6892df196efb1c5f58f7af8dfa49dcdd867647161785fc844afb0949430470e"
)

CHAOS_PLAN = FaultPlan(
    seed=17,
    drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.05),),
    duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), 0.10),),
)
CHAOS_RETRY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)

#: The acceptance grid: monolith plus every sharded/pooled combination.
DEPLOYMENTS = [(1, 0), (1, 1), (1, 4), (4, 1), (4, 4), (8, 1), (8, 4)]


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def telemetry_of(world, n_shards, workers, plan=None, retransmit=None):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=29, retransmit=retransmit)
    outcome = run_epochs(
        town,
        result,
        config,
        n_epochs=3,
        classifier=classifier,
        max_users=8,
        fault_plan=plan,
        n_shards=n_shards,
        workers=workers,
    )
    return outcome.telemetry


@pytest.mark.parametrize("n_shards,workers", DEPLOYMENTS)
def test_clean_telemetry_pins(world, n_shards, workers):
    telemetry = telemetry_of(world, n_shards, workers)
    assert telemetry.digest(scope=AGGREGATE) == GOLDEN_TELEMETRY_CLEAN


@pytest.mark.parametrize("n_shards,workers", [(1, 0), (8, 2)])
def test_chaos_telemetry_pins(world, n_shards, workers):
    telemetry = telemetry_of(
        world, n_shards, workers, plan=CHAOS_PLAN, retransmit=CHAOS_RETRY
    )
    assert telemetry.digest(scope=AGGREGATE) == GOLDEN_TELEMETRY_CHAOS


def test_export_json_itself_is_byte_identical(world):
    """The pin covers the digest; this covers the literal export bytes."""
    mono = telemetry_of(world, 1, 0).export_json(scope=AGGREGATE)
    sharded = telemetry_of(world, 8, 4).export_json(scope=AGGREGATE)
    assert mono == sharded


def test_deployment_scope_is_allowed_to_differ(world):
    """Per-shard metrics exist only in sharded runs — and only outside
    the invariant (aggregate) scope."""
    mono = telemetry_of(world, 1, 0)
    sharded = telemetry_of(world, 4, 0)
    mono_names = {row["name"] for row in mono.export()["metrics"]}
    sharded_names = {row["name"] for row in sharded.export()["metrics"]}
    assert "rsp.shard.batch" in sharded_names - mono_names
    assert mono.digest() != sharded.digest()  # full export differs...
    assert mono.digest(scope=AGGREGATE) == sharded.digest(scope=AGGREGATE)
