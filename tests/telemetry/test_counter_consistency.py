"""Integration: EpochReport robustness fields ≡ telemetry counters ≡ legacy.

``run_epochs`` derives its per-epoch robustness deltas *from* the shared
telemetry registry, so three views of the same events must agree exactly,
under chaos, for both deployments:

1. the summed ``EpochReport`` fields,
2. the telemetry counter totals, and
3. the legacy hand-threaded counters on the server/network/injector/
   clients (which remain the ground truth the derivation is pinned to).
"""

import pytest

from repro.faults import (
    ClientCrash,
    DropFault,
    DuplicateFault,
    FaultPlan,
    ServerOutage,
    Window,
)
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.uploads import RetransmitPolicy
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 28.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
EPOCH = HORIZON / N_EPOCHS

#: Drops + duplicates + a mid-run outage + a crash: every counter the
#: reports derive is exercised at least once.
CHAOS_PLAN = FaultPlan(
    seed=23,
    drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.15),),
    duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), 0.20),),
    server_outages=(ServerOutage(Window(1.2 * EPOCH, 1.8 * EPOCH)),),
    crashes=(ClientCrash(1.5 * EPOCH),),
)
RETRY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


@pytest.fixture(scope="module", params=[(1, 0), (4, 0)], ids=["monolith", "sharded"])
def outcome(request, world):
    town, result, classifier = world
    n_shards, workers = request.param
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=29, retransmit=RETRY)
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=8,
        fault_plan=CHAOS_PLAN,
        n_shards=n_shards,
        workers=workers,
    )


def summed(outcome, field):
    return sum(getattr(report, field) for report in outcome.reports)


class TestCounterConsistency:
    def test_chaos_actually_exercised_every_counter(self, outcome):
        assert summed(outcome, "dropped_messages") > 0
        assert summed(outcome, "duplicates_suppressed") > 0
        assert summed(outcome, "retransmissions") > 0
        assert any(r.server_deferred for r in outcome.reports)

    def test_rejected_envelopes(self, outcome):
        telemetry, server = outcome.telemetry, outcome.server
        assert summed(outcome, "rejected_envelopes") == server.rejected_envelopes
        assert telemetry.total("rsp.envelopes.rejected") == server.rejected_envelopes

    def test_duplicates_suppressed(self, outcome):
        telemetry, server = outcome.telemetry, outcome.server
        assert summed(outcome, "duplicates_suppressed") == server.duplicates_suppressed
        assert telemetry.total("rsp.envelopes.duplicate") == (
            server.duplicates_suppressed
        )

    def test_dropped_messages(self, outcome):
        telemetry = outcome.telemetry
        legacy = (
            outcome.injector.messages_dropped + outcome.server.dropped_by_outage
        )
        assert summed(outcome, "dropped_messages") == legacy
        assert telemetry.total("mix.dropped") + telemetry.total(
            "rsp.envelopes.outage_dropped"
        ) == legacy
        assert telemetry.total("rsp.envelopes.outage_dropped") == (
            outcome.injector.envelopes_lost_to_outage
        )

    def test_retransmissions(self, outcome):
        telemetry = outcome.telemetry
        legacy = sum(c.stats.retransmissions for c in outcome.clients.values())
        assert summed(outcome, "retransmissions") == legacy
        assert telemetry.total("client.retransmissions") == legacy

    def test_accepted_envelopes_and_dedup_invariant(self, outcome):
        telemetry, server = outcome.telemetry, outcome.server
        assert telemetry.total("rsp.envelopes.accepted") == server.accepted_envelopes
        assert server.accepted_envelopes == server.n_unique_nonces

    def test_injected_fault_counts_match_injector(self, outcome):
        telemetry, injector = outcome.telemetry, outcome.injector
        metric = "faults.injected"
        assert telemetry.value(metric, kind="drop") == injector.messages_dropped
        assert telemetry.value(metric, kind="duplicate") == (
            injector.messages_duplicated
        )
        assert telemetry.value(metric, kind="crash") == injector.crashes_triggered

    def test_epoch_spans_cover_the_horizon(self, outcome):
        spans = outcome.telemetry.spans.spans("epoch")
        assert len(spans) == N_EPOCHS
        assert spans[0].start == 0.0
        assert spans[-1].end == HORIZON
