"""Tests for the reminder baseline (Section 3's dismissed alternative)."""

import pytest

from repro.core.reminders import ReminderPolicy, simulate_reminders
from repro.util.clock import DAY


def visits(n, spacing_days=5.0, start=1.0):
    return [start * DAY + i * spacing_days * DAY for i in range(n)]


class TestPolicyValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            ReminderPolicy(prompt_probability=1.5)
        with pytest.raises(ValueError):
            ReminderPolicy(max_prompts_per_week=0)
        with pytest.raises(ValueError):
            ReminderPolicy(acceptance_boost=0.5)
        with pytest.raises(ValueError):
            ReminderPolicy(churn_per_prompt=2.0)


class TestSimulateReminders:
    def test_no_visits_no_prompts(self):
        outcome = simulate_reminders({"u": []}, {"u": 0.5}, horizon=100 * DAY)
        assert outcome.n_prompts == 0
        assert outcome.n_reviews_gained == 0

    def test_prompting_converts_inclined_users(self):
        """High-propensity users post when nudged."""
        policy = ReminderPolicy(churn_per_prompt=0.0)
        outcome = simulate_reminders(
            {f"u{i}": visits(10) for i in range(20)},
            {f"u{i}": 0.5 for i in range(20)},
            horizon=100 * DAY,
            policy=policy,
        )
        assert outcome.n_prompts > 0
        assert outcome.n_reviews_gained > 0.5 * outcome.n_prompts

    def test_lurkers_rarely_convert_even_when_nudged(self):
        """The structural limit: nudging a 1% propensity yields ~5%."""
        policy = ReminderPolicy(churn_per_prompt=0.0)
        outcome = simulate_reminders(
            {f"u{i}": visits(10) for i in range(100)},
            {f"u{i}": 0.01 for i in range(100)},
            horizon=100 * DAY,
            policy=policy,
            seed=1,
        )
        assert outcome.reviews_per_prompt < 0.15

    def test_rate_limit_respected(self):
        policy = ReminderPolicy(max_prompts_per_week=1, churn_per_prompt=0.0)
        outcome = simulate_reminders(
            {"u": visits(14, spacing_days=1.0)},  # daily visits for two weeks
            {"u": 0.5},
            horizon=100 * DAY,
            policy=policy,
        )
        assert outcome.n_prompts <= 3  # one per started week window

    def test_aggressive_prompting_churns_users(self):
        policy = ReminderPolicy(churn_per_prompt=0.2, max_prompts_per_week=7)
        outcome = simulate_reminders(
            {f"u{i}": visits(30, spacing_days=2.0) for i in range(50)},
            {f"u{i}": 0.1 for i in range(50)},
            horizon=100 * DAY,
            policy=policy,
            seed=2,
        )
        assert outcome.churn_rate > 0.3

    def test_churned_users_stop_everything(self):
        """Once churned, a user generates no further prompts or reviews."""
        policy = ReminderPolicy(churn_per_prompt=1.0)  # churn on first prompt
        outcome = simulate_reminders(
            {"u": visits(20, spacing_days=1.0)},
            {"u": 0.9},
            horizon=100 * DAY,
            policy=policy,
        )
        assert outcome.n_prompts == 1
        assert outcome.n_churned_users == 1

    def test_deterministic(self):
        args = ({"u": visits(10)}, {"u": 0.3})
        a = simulate_reminders(*args, horizon=100 * DAY, seed=5)
        b = simulate_reminders(*args, horizon=100 * DAY, seed=5)
        assert a == b
