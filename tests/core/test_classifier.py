"""Tests for the opinion classifier and the repeat-count baseline."""

import numpy as np
import pytest

from repro.core.classifier import (
    ClassifierConfig,
    NotFittedError,
    OpinionClassifier,
    RepeatCountBaseline,
)
from repro.core.features import OpinionFeatures


def synthetic_features(rng, opinion):
    """Features statistically consistent with a given true opinion.

    Liked entities (high opinion): more interactions, farther travel, no
    complaint markers.  Disliked: few interactions, bursty short calls.
    """
    liked = opinion / 5.0
    n = max(1, int(rng.poisson(1 + 6 * liked)))
    travel = float(rng.uniform(0.5, 1.0 + 6.0 * liked))
    return OpinionFeatures(
        n_interactions=float(n),
        span_days=float(rng.uniform(5, 150) * (0.3 + liked)),
        mean_gap_days=float(rng.uniform(5, 60)),
        mean_travel_km=travel,
        max_travel_km=travel * float(rng.uniform(1.0, 1.5)),
        mean_duration_min=float(rng.uniform(30, 90)),
        total_duration_hours=n * float(rng.uniform(0.5, 1.5)),
        excess_travel_km=travel - float(rng.uniform(0.5, 2.0)),
        n_alternatives_tried=float(rng.integers(0, 4)),
        tried_before_settling=float(rng.random() < 0.3 + 0.4 * liked),
        switched_away=float(rng.random() < 0.7 * (1 - liked)),
        n_similar_nearby=float(rng.integers(0, 10)),
        call_fraction=0.0,
        short_call_fraction=float((1 - liked) * rng.random() * 0.5),
        burst_fraction=float((1 - liked) * rng.random() * 0.5),
    )


def training_set(n=400, seed=0):
    rng = np.random.default_rng(seed)
    features, ratings = [], []
    for _ in range(n):
        opinion = float(rng.uniform(0.5, 5.0))
        features.append(synthetic_features(rng, opinion))
        ratings.append(float(np.clip(round(opinion + rng.normal(0, 0.3)), 0, 5)))
    return features, ratings


@pytest.fixture(scope="module")
def fitted():
    features, ratings = training_set()
    return OpinionClassifier().fit(features, ratings)


class TestTraining:
    def test_unfitted_raises(self):
        classifier = OpinionClassifier()
        features, _ = training_set(20)
        with pytest.raises(NotFittedError):
            classifier.predict(features[0])
        with pytest.raises(NotFittedError):
            classifier.feature_weights()

    def test_requires_enough_data(self):
        features, ratings = training_set(5)
        with pytest.raises(ValueError):
            OpinionClassifier().fit(features, ratings)

    def test_rejects_misaligned(self):
        features, ratings = training_set(20)
        with pytest.raises(ValueError):
            OpinionClassifier().fit(features, ratings[:-1])

    def test_rejects_out_of_range_ratings(self):
        features, ratings = training_set(20)
        ratings[0] = 9.0
        with pytest.raises(ValueError):
            OpinionClassifier().fit(features, ratings)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClassifierConfig(ridge_lambda=-1)
        with pytest.raises(ValueError):
            ClassifierConfig(min_interactions=0)

    def test_effort_carries_positive_weight(self, fitted):
        """The model should discover that travel distance signals endorsement
        — the paper's 'effort is endorsement' hypothesis in the weights."""
        weights = fitted.feature_weights()
        assert weights["mean_travel_km"] > 0

    def test_complaint_markers_carry_negative_weight(self, fitted):
        weights = fitted.feature_weights()
        assert weights["switched_away"] < 0


class TestPrediction:
    def test_predictions_bounded(self, fitted):
        rng = np.random.default_rng(1)
        for _ in range(50):
            opinion = fitted.predict(synthetic_features(rng, float(rng.uniform(0, 5))))
            if not opinion.abstained:
                assert 0.0 <= opinion.rating <= 5.0

    def test_accuracy_beats_constant_predictor(self, fitted):
        rng = np.random.default_rng(2)
        errors, constant_errors = [], []
        for _ in range(300):
            truth = float(rng.uniform(0.5, 5.0))
            opinion = fitted.predict(synthetic_features(rng, truth))
            if opinion.abstained:
                continue
            errors.append(abs(opinion.rating - truth))
            constant_errors.append(abs(2.75 - truth))
        assert len(errors) > 50
        assert np.mean(errors) < 0.85 * np.mean(constant_errors)

    def test_abstains_on_thin_evidence(self, fitted):
        rng = np.random.default_rng(3)
        features = synthetic_features(rng, 3.0)
        thin = OpinionFeatures(
            **{
                **{name: getattr(features, name) for name in OpinionFeatures.feature_names()},
                "n_interactions": 1.0,
            }
        )
        assert fitted.predict(thin).abstained

    def test_abstention_rate_falls_with_evidence(self, fitted):
        rng = np.random.default_rng(4)
        def rate(n_interactions):
            abstained = 0
            for _ in range(100):
                features = synthetic_features(rng, float(rng.uniform(0, 5)))
                forced = OpinionFeatures(
                    **{
                        **{n: getattr(features, n) for n in OpinionFeatures.feature_names()},
                        "n_interactions": float(n_interactions),
                    }
                )
                if fitted.predict(forced).abstained:
                    abstained += 1
            return abstained / 100
        assert rate(1) == 1.0
        assert rate(8) < rate(1)

    def test_predict_many(self, fitted):
        rng = np.random.default_rng(5)
        batch = {f"e{i}": synthetic_features(rng, 4.0) for i in range(5)}
        out = fitted.predict_many(batch)
        assert set(out) == set(batch)


class TestBaselineComparison:
    def test_baseline_unfitted_raises(self):
        baseline = RepeatCountBaseline()
        features, _ = training_set(20)
        with pytest.raises(NotFittedError):
            baseline.predict(features[0])

    def test_full_model_beats_count_only_baseline(self):
        """A1's headline: effort features beat the naive repeat-count rule.

        The baseline is fitted on the same data, so the gap is the value of
        the effort/exploration features, not of calibration.
        """
        features, ratings = training_set(500, seed=10)
        model = OpinionClassifier().fit(features, ratings)
        baseline = RepeatCountBaseline().fit(features, ratings)
        rng = np.random.default_rng(11)
        model_errors, baseline_errors = [], []
        for _ in range(400):
            truth = float(rng.uniform(0.5, 5.0))
            test_features = synthetic_features(rng, truth)
            base = baseline.predict(test_features)
            baseline_errors.append(abs(base.rating - truth))
            inferred = model.predict(test_features)
            if not inferred.abstained:
                model_errors.append(abs(inferred.rating - truth))
        assert np.mean(model_errors) < 0.9 * np.mean(baseline_errors)
