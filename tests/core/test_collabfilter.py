"""Tests for the item-based CF baseline and the applicability argument."""

import numpy as np
import pytest

from repro.core.collabfilter import ItemBasedCF, cf_applicability


def dense_restaurant_ratings(cf: ItemBasedCF, n_users=30, seed=0):
    """Many users co-rating many restaurants: CF's happy case."""
    rng = np.random.default_rng(seed)
    restaurants = [f"restaurant-{i}" for i in range(8)]
    qualities = {r: rng.uniform(1.5, 4.5) for r in restaurants}
    for user_index in range(n_users):
        rated = rng.choice(restaurants, size=4, replace=False)
        for entity_id in rated:
            rating = float(np.clip(qualities[entity_id] + rng.normal(0, 0.5), 0, 5))
            cf.add_rating(f"user-{user_index}", entity_id, rating)
    return restaurants, qualities


class TestItemBasedCF:
    def test_rating_validation(self):
        cf = ItemBasedCF()
        with pytest.raises(ValueError):
            cf.add_rating("u", "e", 5.5)

    def test_requires_fit(self):
        cf = ItemBasedCF()
        cf.add_rating("u", "e", 4.0)
        with pytest.raises(RuntimeError):
            cf.recommend("u", ["e2"])
        with pytest.raises(RuntimeError):
            cf.similar_items("e")

    def test_min_corated_validation(self):
        with pytest.raises(ValueError):
            ItemBasedCF(min_corated=0)

    def test_recommends_in_dense_domain(self):
        cf = ItemBasedCF()
        restaurants, _ = dense_restaurant_ratings(cf)
        cf.fit()
        recommendations = cf.recommend("user-0", restaurants)
        assert recommendations
        rated = set()
        for r in recommendations:
            assert 0 <= r.score <= 5

    def test_never_recommends_already_rated(self):
        cf = ItemBasedCF()
        restaurants, _ = dense_restaurant_ratings(cf)
        cf.fit()
        for user_index in range(10):
            user = f"user-{user_index}"
            rated = set(cf._ratings[user])
            for rec in cf.recommend(user, restaurants):
                assert rec.entity_id not in rated

    def test_similarity_symmetric(self):
        cf = ItemBasedCF()
        dense_restaurant_ratings(cf)
        cf.fit()
        for (a, b), sim in cf._similarity.items():
            assert cf._similarity[(b, a)] == sim

    def test_good_items_score_higher(self):
        """In a dense domain with shared taste, CF should roughly order by
        quality."""
        cf = ItemBasedCF()
        restaurants, qualities = dense_restaurant_ratings(cf, n_users=80, seed=3)
        cf.fit()
        best = max(qualities, key=qualities.get)
        worst = min(qualities, key=qualities.get)
        best_scores, worst_scores = [], []
        for user_index in range(80):
            for rec in cf.recommend(f"user-{user_index}", restaurants, top_k=8):
                if rec.entity_id == best:
                    best_scores.append(rec.score)
                if rec.entity_id == worst:
                    worst_scores.append(rec.score)
        assert best_scores and worst_scores
        assert np.mean(best_scores) > np.mean(worst_scores)

    def test_cold_user_gets_nothing(self):
        cf = ItemBasedCF()
        dense_restaurant_ratings(cf)
        cf.fit()
        assert cf.recommend("stranger", ["restaurant-0"]) == []
        assert not cf.can_recommend("stranger", ["restaurant-0"])

    def test_sparse_domain_gets_nothing(self):
        """The paper's argument: "any particular user is likely to have
        interacted with only one or at most a few doctors and plumbers,
        preempting the inference of the user's preferences."  With one
        plumber rating per user there are no co-rated plumber pairs, so CF
        has no similarity edges and cannot recommend among plumbers."""
        cf = ItemBasedCF()
        for user_index in range(40):
            cf.add_rating(f"user-{user_index}", f"plumber-{user_index % 10}", 4.0)
        cf.fit()
        plumbers = [f"plumber-{i}" for i in range(10)]
        for user_index in range(40):
            assert cf.recommend(f"user-{user_index}", plumbers) == []

    def test_cross_category_edges_are_vanilla_cf_behaviour(self):
        """Vanilla item-item CF will happily bridge categories through
        co-rating users — documented here because the A9 benchmark uses
        same-category candidate sets, which is how a deployed CF recommender
        would be scoped."""
        cf = ItemBasedCF()
        for user_index in range(10):
            cf.add_rating(f"user-{user_index}", "plumber-0", 4.0)
            cf.add_rating(f"user-{user_index}", "restaurant-0", 4.5)
        cf.fit()
        assert any(other == "restaurant-0" for other, _ in cf.similar_items("plumber-0"))


class TestApplicability:
    def test_report_rates(self):
        cf = ItemBasedCF()
        dense_restaurant_ratings(cf)
        cf.fit()
        restaurants = [f"restaurant-{i}" for i in range(8)]
        needs = [(f"user-{i}", "thai", restaurants) for i in range(10)]
        needs += [(f"user-{i}", "plumber", ["plumber-1", "plumber-2"]) for i in range(10)]
        report = cf_applicability(cf, needs, {"thai": "restaurant", "plumber": "plumber"})
        assert report.rate("restaurant") > 0.5
        assert report.rate("plumber") == 0.0
        assert report.rate("unknown-kind") == 0.0
