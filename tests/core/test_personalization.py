"""Tests for client-side personalized re-ranking (Section 5 incentives)."""

import pytest

from repro.client.transparency import TransparencyLog
from repro.core.aggregation import EntityOpinionSummary
from repro.core.classifier import InferredOpinion
from repro.core.discovery import Query, RankedResult, SearchResponse
from repro.core.personalization import PersonalizationWeights, personalize
from repro.world.entities import Entity, EntityKind
from repro.world.geography import Point


def entity(entity_id, x):
    return Entity(
        entity_id=entity_id, kind=EntityKind.RESTAURANT, category="thai",
        location=Point(x, 0.0), quality=3.0, price_level=2,
    )


def summary(entity_id):
    return EntityOpinionSummary(
        entity_id=entity_id, n_explicit_reviews=0, explicit_mean=None,
        explicit_histogram=[0] * 5, n_inferred_opinions=0, inferred_mean=None,
        inferred_histogram=[0] * 5, n_interacting_users=0,
        effective_interactions=0.0, raw_interactions=0,
    )


def response(entities, scores):
    results = tuple(
        RankedResult(entity=e, distance_km=e.location.x, summary=summary(e.entity_id), score=s)
        for e, s in zip(entities, scores)
    )
    return SearchResponse(
        query=Query(category="thai", near=Point(0, 0), radius_km=50.0),
        results=results,
        visualization=None,
    )


HOME = Point(0.0, 0.0)


class TestPersonalize:
    def test_own_favourite_floats_up(self):
        a, b = entity("thai-a", 1.0), entity("thai-b", 1.0)
        log = TransparencyLog()
        log.record("thai-b", 0.0, InferredOpinion(rating=5.0, confidence=0.3), "loyal")
        ranked = personalize(response([a, b], [3.0, 3.0]), log, HOME)
        assert ranked[0].entity_id == "thai-b"
        assert ranked[0].personal_adjustment > 0

    def test_own_disliked_sinks(self):
        a, b = entity("thai-a", 1.0), entity("thai-b", 1.0)
        log = TransparencyLog()
        log.record("thai-a", 0.0, InferredOpinion(rating=1.0, confidence=0.3), "bad meal")
        ranked = personalize(response([a, b], [3.0, 3.0]), log, HOME)
        assert ranked[0].entity_id == "thai-b"
        assert ranked[-1].personal_adjustment < 0

    def test_user_correction_wins_over_model(self):
        """A corrected opinion (Section 5 transparency) drives the re-rank."""
        a, b = entity("thai-a", 1.0), entity("thai-b", 1.0)
        log = TransparencyLog()
        log.record("thai-a", 0.0, InferredOpinion(rating=5.0, confidence=0.3), "model liked it")
        log.correct("thai-a", 1.0)  # the user disagrees
        ranked = personalize(response([a, b], [3.0, 3.0]), log, HOME)
        assert ranked[0].entity_id == "thai-b"

    def test_far_entities_penalized(self):
        near, far = entity("thai-near", 2.0), entity("thai-far", 20.0)
        ranked = personalize(response([near, far], [3.0, 3.0]), TransparencyLog(), HOME)
        assert ranked[0].entity_id == "thai-near"

    def test_within_tolerance_no_distance_penalty(self):
        close = entity("thai-a", 1.0)
        ranked = personalize(response([close], [3.0]), TransparencyLog(), HOME)
        assert ranked[0].personal_adjustment == 0.0

    def test_strong_server_signal_survives_mild_personal_penalty(self):
        """Personalization adjusts, it does not override a big quality gap."""
        good_far = entity("thai-good", 5.0)
        bad_near = entity("thai-bad", 1.0)
        ranked = personalize(
            response([good_far, bad_near], [4.5, 2.0]), TransparencyLog(), HOME
        )
        assert ranked[0].entity_id == "thai-good"

    def test_empty_log_preserves_local_order(self):
        a, b = entity("thai-a", 1.0), entity("thai-b", 2.0)
        ranked = personalize(response([a, b], [4.0, 3.0]), TransparencyLog(), HOME)
        assert [r.entity_id for r in ranked] == ["thai-a", "thai-b"]

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            PersonalizationWeights(travel_tolerance_km=0)
