"""Tests for safe aggregate publication and the differencing attack."""

import pytest

from repro.core.aggregation import EntityOpinionSummary
from repro.core.publication import (
    PublicationPolicy,
    coarsened_policy,
    differencing_attack,
    exact_policy,
    publish,
)


def summary(entity_id="e1", n_inferred=0, n_explicit=0, mean=4.0):
    return EntityOpinionSummary(
        entity_id=entity_id,
        n_explicit_reviews=n_explicit,
        explicit_mean=mean if n_explicit else None,
        explicit_histogram=[0] * 5,
        n_inferred_opinions=n_inferred,
        inferred_mean=mean if n_inferred else None,
        inferred_histogram=[0] * 5,
        n_interacting_users=n_inferred,
        effective_interactions=float(n_inferred),
        raw_interactions=n_inferred,
        inferred_weight=float(n_inferred),
    )


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            PublicationPolicy(min_count=0)
        with pytest.raises(ValueError):
            PublicationPolicy(round_to=0)


class TestPublish:
    def test_threshold_hides_thin_summaries(self):
        published = publish(summary(n_inferred=3), coarsened_policy())
        assert not published.shown
        assert published.mean is None

    def test_rounding_hides_single_increments(self):
        policy = coarsened_policy()
        seventeen = publish(summary(n_inferred=17), policy)
        eighteen = publish(summary(n_inferred=18), policy)
        assert seventeen.n_opinions == eighteen.n_opinions == 15

    def test_rounding_crosses_boundary_eventually(self):
        policy = coarsened_policy()
        assert publish(summary(n_inferred=19), policy).n_opinions == 15
        assert publish(summary(n_inferred=20), policy).n_opinions == 20

    def test_exact_policy_shows_everything(self):
        published = publish(summary(n_inferred=1), exact_policy())
        assert published.shown
        assert published.n_opinions == 1

    def test_mean_rounded(self):
        result = publish(summary(n_inferred=10, mean=4.23456), coarsened_policy())
        assert result.mean == pytest.approx(4.2)

    def test_explicit_reviews_count_toward_threshold(self):
        result = publish(summary(n_inferred=2, n_explicit=3), coarsened_policy())
        assert result.shown


class TestDifferencingAttack:
    def snapshots(self, policy, before_counts, after_counts):
        before = {
            entity_id: publish(summary(entity_id, n_inferred=n), policy)
            for entity_id, n in before_counts.items()
        }
        after = {
            entity_id: publish(summary(entity_id, n_inferred=n), policy)
            for entity_id, n in after_counts.items()
        }
        return before, after

    def test_exact_publication_leaks(self):
        """With exact continuous counts, every suspicion is confirmed."""
        before, after = self.snapshots(
            exact_policy(),
            {"d1": 17, "d2": 9},
            {"d1": 18, "d2": 9},
        )
        report = differencing_attack(before, after, [("alice", "d1"), ("bob", "d2")])
        assert report.n_confirmed == 1  # d1 incremented, d2 did not
        assert report.success_rate == 0.5

    def test_coarsened_publication_blinds_single_increments(self):
        before, after = self.snapshots(
            coarsened_policy(),
            {"d1": 17, "d2": 8},
            {"d1": 18, "d2": 9},
        )
        report = differencing_attack(before, after, [("alice", "d1"), ("bob", "d2")])
        assert report.n_confirmed == 0

    def test_coarsening_leaks_only_at_bucket_boundaries(self):
        """Crossing a rounding boundary is the residual leak — 1-in-round_to
        odds instead of certainty."""
        before, after = self.snapshots(
            coarsened_policy(),
            {"d1": 19},
            {"d1": 20},
        )
        report = differencing_attack(before, after, [("alice", "d1")])
        assert report.n_confirmed == 1

    def test_empty_suspicions(self):
        report = differencing_attack({}, {}, [])
        assert report.success_rate == 0.0
