"""Tests for the effort/exploration/choice-set feature extraction."""

import pytest

from repro.core.features import (
    OpinionFeatures,
    extract_all_features,
    extract_features,
)
from repro.sensing.resolution import InteractionType, ObservedInteraction
from repro.util.clock import DAY, HOUR
from repro.world.entities import Entity, EntityKind
from repro.world.geography import Point


def entity(entity_id="thai-1", category="thai", x=5.0, y=5.0, kind=EntityKind.RESTAURANT):
    return Entity(
        entity_id=entity_id, kind=kind, category=category,
        location=Point(x, y), quality=3.0, price_level=2,
    )


def visit(entity_id, day, travel=2.0, duration=1.0 * HOUR):
    return ObservedInteraction(
        entity_id=entity_id,
        interaction_type=InteractionType.VISIT,
        time=day * DAY,
        duration=duration,
        travel_km=travel,
    )


def call(entity_id, day, duration=120.0):
    return ObservedInteraction(
        entity_id=entity_id,
        interaction_type=InteractionType.CALL,
        time=day * DAY,
        duration=duration,
    )


HOME = Point(0.0, 0.0)


class TestRepetitionAndEffort:
    def test_basic_counts(self):
        target = entity()
        own = [visit("thai-1", d) for d in (0, 10, 20)]
        features = extract_features(target, own, own, {"thai-1": target}, HOME)
        assert features.n_interactions == 3
        assert features.span_days == pytest.approx(20.0)
        assert features.mean_gap_days == pytest.approx(10.0)

    def test_effort_features(self):
        target = entity()
        own = [visit("thai-1", 0, travel=3.0), visit("thai-1", 10, travel=5.0)]
        features = extract_features(target, own, own, {"thai-1": target}, HOME)
        assert features.mean_travel_km == pytest.approx(4.0)
        assert features.max_travel_km == pytest.approx(5.0)
        assert features.total_duration_hours == pytest.approx(2.0)

    def test_excess_travel_positive_when_passing_closer_option(self):
        target = entity("thai-far", x=6.0, y=0.0)
        near = entity("thai-near", x=1.0, y=0.0)
        catalog = {"thai-far": target, "thai-near": near}
        own = [visit("thai-far", d, travel=6.0) for d in (0, 15)]
        features = extract_features(target, own, own, catalog, HOME)
        # Nearest similar alternative is 1 km away but the user travels 6 km.
        assert features.excess_travel_km == pytest.approx(5.0)

    def test_requires_interactions(self):
        with pytest.raises(ValueError):
            extract_features(entity(), [], [], {}, HOME)


class TestExploration:
    def test_alternatives_tried_counted(self):
        target = entity("thai-1")
        other = entity("thai-2", x=4.0)
        catalog = {"thai-1": target, "thai-2": other}
        stream = [visit("thai-2", 0), visit("thai-1", 5), visit("thai-1", 15)]
        own = [i for i in stream if i.entity_id == "thai-1"]
        features = extract_features(target, own, stream, catalog, HOME)
        assert features.n_alternatives_tried == 1
        assert features.tried_before_settling == 1.0

    def test_switched_away_detected(self):
        target = entity("thai-1")
        other = entity("thai-2", x=4.0)
        catalog = {"thai-1": target, "thai-2": other}
        stream = [visit("thai-1", 0), visit("thai-1", 5), visit("thai-2", 30)]
        own = [i for i in stream if i.entity_id == "thai-1"]
        features = extract_features(target, own, stream, catalog, HOME)
        assert features.switched_away == 1.0

    def test_loyal_user_not_switched(self):
        target = entity("thai-1")
        catalog = {"thai-1": target}
        own = [visit("thai-1", d) for d in (0, 10, 20)]
        features = extract_features(target, own, own, catalog, HOME)
        assert features.switched_away == 0.0
        assert features.tried_before_settling == 0.0

    def test_different_category_not_an_alternative(self):
        target = entity("thai-1")
        sushi = entity("sushi-1", category="japanese", x=4.0)
        catalog = {"thai-1": target, "sushi-1": sushi}
        stream = [visit("sushi-1", 0), visit("thai-1", 5)]
        own = [i for i in stream if i.entity_id == "thai-1"]
        features = extract_features(target, own, stream, catalog, HOME)
        assert features.n_alternatives_tried == 0


class TestChoiceSet:
    def test_similar_nearby_counted(self):
        target = entity("thai-1", x=5.0, y=5.0)
        catalog = {"thai-1": target}
        for index in range(4):
            e = entity(f"thai-n{index}", x=5.5 + 0.2 * index, y=5.0)
            catalog[e.entity_id] = e
        far = entity("thai-far", x=15.0, y=15.0)
        catalog["thai-far"] = far
        own = [visit("thai-1", d) for d in (0, 10)]
        features = extract_features(target, own, own, catalog, HOME)
        assert features.n_similar_nearby == 4  # the far one is out of radius


class TestComplaintMarkers:
    def test_short_call_fraction(self):
        plumber = entity("plumber-1", category="plumber", kind=EntityKind.PLUMBER)
        catalog = {"plumber-1": plumber}
        own = [call("plumber-1", 0, duration=200.0)] + [
            call("plumber-1", 0.1 + i * 0.05, duration=20.0) for i in range(3)
        ]
        features = extract_features(plumber, own, own, catalog, HOME)
        assert features.call_fraction == 1.0
        assert features.short_call_fraction == pytest.approx(0.75)
        assert features.burst_fraction > 0.9

    def test_relaxed_cadence_has_low_burst_fraction(self):
        target = entity()
        own = [visit("thai-1", d) for d in (0, 20, 45, 70)]
        features = extract_features(target, own, own, {"thai-1": target}, HOME)
        assert features.burst_fraction == 0.0


class TestVectorization:
    def test_vector_matches_field_order(self):
        target = entity()
        own = [visit("thai-1", 0), visit("thai-1", 10)]
        features = extract_features(target, own, own, {"thai-1": target}, HOME)
        vector = features.as_vector()
        names = OpinionFeatures.feature_names()
        assert vector.shape == (len(names),)
        assert vector[names.index("n_interactions")] == 2.0

    def test_extract_all_features_covers_entities(self):
        a, b = entity("thai-1"), entity("thai-2", x=3.0)
        catalog = {"thai-1": a, "thai-2": b}
        stream = [visit("thai-1", 0), visit("thai-2", 5), visit("thai-1", 9)]
        features = extract_all_features(stream, catalog, HOME)
        assert set(features) == {"thai-1", "thai-2"}
        assert features["thai-1"].n_interactions == 2

    def test_unknown_entities_skipped(self):
        a = entity("thai-1")
        stream = [visit("thai-1", 0), visit("ghost", 2)]
        features = extract_all_features(stream, {"thai-1": a}, HOME)
        assert set(features) == {"thai-1"}
