"""Tests for aggregation (group deflation), visualizations, and discovery."""

import pytest

from repro.core.aggregation import (
    OpinionUpload,
    deflate_groups,
    rating_histogram,
    summarize_entity,
)
from repro.core.discovery import DiscoveryService, Query, opinion_score
from repro.core.visualization import (
    compare_entities,
    distance_vs_visits,
    visits_per_user_histogram,
)
from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.util.clock import DAY
from repro.world.entities import Entity, EntityKind
from repro.world.geography import Point


def make_history_store(specs):
    """specs: list of (device, entity, [(time, duration, travel)])"""
    store = HistoryStore()
    for device, entity_id, records in specs:
        identity = DeviceIdentity.create(device, seed=hash(device) % 1000)
        for t, duration, travel in records:
            store.append(
                InteractionUpload(
                    history_id=identity.history_id(entity_id),
                    entity_id=entity_id,
                    interaction_type="visit",
                    event_time=t,
                    duration=duration,
                    travel_km=travel,
                ),
                arrival_time=t,
            )
    return store


class TestRatingHistogram:
    def test_buckets(self):
        histogram = rating_histogram([0.5, 1.5, 2.5, 3.5, 4.5, 5.0])
        assert histogram == [1, 1, 1, 1, 2]

    def test_empty(self):
        assert rating_histogram([]) == [0, 0, 0, 0, 0]


class TestGroupDeflation:
    def test_covisits_collapse(self):
        """Three phones at the same table produce one effective visit."""
        store = make_history_store(
            [
                ("a", "r1", [(10 * DAY, 3600.0, 1.0)]),
                ("b", "r1", [(10 * DAY, 3600.0, 2.0)]),
                ("c", "r1", [(10 * DAY, 3600.0, 3.0)]),
            ]
        )
        effective, raw = deflate_groups(store.histories_for_entity("r1"))
        assert raw == 3
        assert effective == 1

    def test_independent_visits_not_collapsed(self):
        store = make_history_store(
            [
                ("a", "r1", [(10 * DAY, 3600.0, 1.0)]),
                ("b", "r1", [(11 * DAY, 3600.0, 2.0)]),
                ("c", "r1", [(10 * DAY, 5400.0, 3.0)]),  # same day, diff duration
            ]
        )
        effective, raw = deflate_groups(store.histories_for_entity("r1"))
        assert raw == 3
        assert effective == 3

    def test_empty(self):
        assert deflate_groups([]) == (0.0, 0)


class TestSummarizeEntity:
    def test_summary_combines_sources(self):
        store = make_history_store(
            [
                ("a", "r1", [(1 * DAY, 3600.0, 1.0), (9 * DAY, 3600.0, 1.0)]),
                ("b", "r1", [(3 * DAY, 1800.0, 4.0)]),
            ]
        )
        histories = store.histories_for_entity("r1")
        identity_a = DeviceIdentity.create("a", seed=hash("a") % 1000)
        inferred = [
            OpinionUpload(
                history_id=identity_a.history_id("r1"), entity_id="r1", rating=4.2
            )
        ]
        summary = summarize_entity("r1", histories, inferred, explicit_ratings=[5.0, 3.0])
        assert summary.n_explicit_reviews == 2
        assert summary.explicit_mean == 4.0
        assert summary.n_inferred_opinions == 1
        assert summary.inferred_mean == pytest.approx(4.2)
        assert summary.total_opinions == 3
        assert summary.n_interacting_users == 2

    def test_opinions_from_filtered_histories_dropped(self):
        """An opinion whose history was fraud-rejected must not count."""
        store = make_history_store([("a", "r1", [(1 * DAY, 3600.0, 1.0)])])
        histories = store.histories_for_entity("r1")
        ghost = OpinionUpload(history_id="not-a-surviving-history", entity_id="r1", rating=5.0)
        summary = summarize_entity("r1", histories, [ghost], explicit_ratings=[])
        assert summary.n_inferred_opinions == 0

    def test_combined_mean_uses_influence_weights(self):
        """Three duplicate opinions from a single 1-interaction history
        carry 3 x 1/3 = 1 vote total, so they tie with one explicit review."""
        store = make_history_store([("a", "r1", [(1 * DAY, 3600.0, 1.0)])])
        histories = store.histories_for_entity("r1")
        identity = DeviceIdentity.create("a", seed=hash("a") % 1000)
        inferred = [
            OpinionUpload(history_id=identity.history_id("r1"), entity_id="r1", rating=4.0)
        ] * 3
        summary = summarize_entity("r1", histories, inferred, explicit_ratings=[1.0])
        assert summary.inferred_weight == pytest.approx(1.0)
        assert summary.combined_mean == pytest.approx((1.0 + 1.0 * 4.0) / 2)

    def test_influence_weight_saturates(self):
        from repro.core.aggregation import influence_weight

        assert influence_weight(0) == 0.0
        assert influence_weight(1) == pytest.approx(1 / 3)
        assert influence_weight(3) == 1.0
        assert influence_weight(30) == 1.0
        with pytest.raises(ValueError):
            influence_weight(-1)
        with pytest.raises(ValueError):
            influence_weight(1, maturity_interactions=0)

    def test_thin_histories_move_mean_less_than_mature_ones(self):
        """Section 4.3's influence argument: a sybil swarm of 1-visit
        histories rating 5.0 shifts the aggregate far less than the same
        number of mature honest histories would."""
        honest_specs = [
            (f"honest{i}", "r1", [(d * 20 * DAY, 3600.0, 2.0) for d in range(4)])
            for i in range(6)
        ]
        sybil_specs = [
            (f"sybil{i}", "r1", [(5 * DAY, 1800.0 + i, 1.0)]) for i in range(6)
        ]
        store = make_history_store(honest_specs + sybil_specs)
        histories = store.histories_for_entity("r1")
        opinions = []
        for i in range(6):
            identity = DeviceIdentity.create(f"honest{i}", seed=hash(f"honest{i}") % 1000)
            opinions.append(
                OpinionUpload(history_id=identity.history_id("r1"), entity_id="r1", rating=2.0)
            )
        for i in range(6):
            identity = DeviceIdentity.create(f"sybil{i}", seed=hash(f"sybil{i}") % 1000)
            opinions.append(
                OpinionUpload(history_id=identity.history_id("r1"), entity_id="r1", rating=5.0)
            )
        summary = summarize_entity("r1", histories, opinions, explicit_ratings=[])
        unweighted_mean = (6 * 2.0 + 6 * 5.0) / 12  # 3.5
        assert summary.inferred_mean < unweighted_mean - 0.4

    def test_rating_validation(self):
        with pytest.raises(ValueError):
            OpinionUpload(history_id="h", entity_id="e", rating=5.5)


class TestVisualizations:
    def test_visits_histogram_buckets(self):
        store = make_history_store(
            [
                ("a", "d1", [(i * 30 * DAY, 3600.0, 1.0) for i in range(1)]),
                ("b", "d1", [(i * 30 * DAY, 3600.0, 1.0) for i in range(2)]),
                ("c", "d1", [(i * 30 * DAY, 3600.0, 1.0) for i in range(4)]),
                ("d", "d1", [(i * 30 * DAY, 3600.0, 1.0) for i in range(12)]),
            ]
        )
        histogram = visits_per_user_histogram("d1", store.histories_for_entity("d1"))
        assert histogram.n_users == 4
        assert histogram.counts == (1, 1, 1, 0, 1)
        assert histogram.repeat_fraction == pytest.approx(0.75)

    def test_distance_vs_visits_correlation_sign(self):
        specs = []
        # Committed far patients: many visits, far.
        for index in range(6):
            specs.append(
                (
                    f"far{index}",
                    "d1",
                    [(i * 40 * DAY, 3600.0, 6.0 + index * 0.3) for i in range(8)],
                )
            )
        # Casual near patients: few visits, near.
        for index in range(6):
            specs.append(
                (
                    f"near{index}",
                    "d1",
                    [(i * 40 * DAY, 3600.0, 0.5 + index * 0.1) for i in range(2)],
                )
            )
        store = make_history_store(specs)
        series = distance_vs_visits("d1", store.histories_for_entity("d1"))
        assert series.correlation > 0.8

    def test_one_time_visitors_excluded_from_series(self):
        store = make_history_store(
            [
                ("a", "d1", [(0.0, 3600.0, 9.0)]),
                ("b", "d1", [(0.0, 3600.0, 1.0), (30 * DAY, 3600.0, 1.0)]),
            ]
        )
        series = distance_vs_visits("d1", store.histories_for_entity("d1"))
        assert series.n_users == 1

    def test_compare_entities_renders(self):
        store = make_history_store(
            [
                ("a", "d1", [(0.0, 3600.0, 1.0), (30 * DAY, 3600.0, 1.0)]),
                ("b", "d2", [(0.0, 3600.0, 2.0)]),
            ]
        )
        viz = compare_entities(
            {
                "d1": store.histories_for_entity("d1"),
                "d2": store.histories_for_entity("d2"),
            }
        )
        rendered = viz.render()
        assert "d1" in rendered and "d2" in rendered


def catalog():
    return [
        Entity(
            entity_id=f"thai-{i}", kind=EntityKind.RESTAURANT, category="thai",
            location=Point(1.0 + i, 1.0), quality=3.0, price_level=2,
        )
        for i in range(5)
    ] + [
        Entity(
            entity_id="sushi-0", kind=EntityKind.RESTAURANT, category="japanese",
            location=Point(2.0, 2.0), quality=3.0, price_level=2,
        )
    ]


class TestDiscovery:
    def test_query_filters_category_and_radius(self):
        service = DiscoveryService(catalog())
        response = service.search(Query(category="thai", near=Point(1.0, 1.0), radius_km=2.0), {})
        ids = [r.entity.entity_id for r in response.results]
        assert "sushi-0" not in ids
        assert all(eid.startswith("thai") for eid in ids)
        assert len(ids) == 3  # thai-0..thai-2 within 2 km

    def test_better_reviewed_entity_ranks_higher(self):
        entities = catalog()
        service = DiscoveryService(entities)

        def summary(entity_id, mean, n):
            from repro.core.aggregation import EntityOpinionSummary
            return EntityOpinionSummary(
                entity_id=entity_id, n_explicit_reviews=n, explicit_mean=mean,
                explicit_histogram=[0] * 5, n_inferred_opinions=0, inferred_mean=None,
                inferred_histogram=[0] * 5, n_interacting_users=n,
                effective_interactions=float(n), raw_interactions=n,
            )

        summaries = {
            "thai-0": summary("thai-0", 2.0, 30),
            "thai-1": summary("thai-1", 4.8, 30),
        }
        response = service.search(Query(category="thai", near=Point(1.0, 1.0)), summaries)
        assert response.results[0].entity.entity_id == "thai-1"

    def test_evidence_volume_breaks_ties(self):
        from repro.core.aggregation import EntityOpinionSummary

        def summary(entity_id, n):
            return EntityOpinionSummary(
                entity_id=entity_id, n_explicit_reviews=n, explicit_mean=4.0,
                explicit_histogram=[0] * 5, n_inferred_opinions=0, inferred_mean=None,
                inferred_histogram=[0] * 5, n_interacting_users=n,
                effective_interactions=float(n), raw_interactions=n,
            )

        assert opinion_score(summary("a", 50)) > opinion_score(summary("a", 2))

    def test_unreviewed_entities_still_listed(self):
        service = DiscoveryService(catalog())
        response = service.search(Query(category="thai", near=Point(1.0, 1.0)), {})
        assert response.n_results > 0
        assert all(r.summary.total_opinions == 0 for r in response.results)

    def test_render(self):
        service = DiscoveryService(catalog())
        response = service.search(Query(category="thai", near=Point(1.0, 1.0)), {})
        assert "thai" in response.render()

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscoveryService([])
        with pytest.raises(ValueError):
            Query(category="thai", near=Point(0, 0), radius_km=0)
