"""Batch routing regression: route once per envelope, never twice.

``receive_batch`` used to derive each record's shard in the grouping pass
and then re-derive it inside the store dispatch — two SHA-256 routes per
envelope.  The fix threads the grouping-pass route into ``_receive_one``
as a hint (and skips group allocation entirely for single-shard batches).
These tests pin both the call count and, more importantly, that the fast
path changes nothing observable: same stores, same counters, same
telemetry export as per-envelope ``receive``.
"""

import pytest

from repro.ingest import SyntheticTraffic, WorkloadConfig
from repro.scale.router import ShardRouter
from repro.scale.server import ShardedRSPServer
from repro.telemetry import Telemetry

WORKLOAD = WorkloadConfig(
    n_users=200,
    n_entities=30,
    opinion_fraction=0.35,
    duplicate_fraction=0.05,
    stale_fraction=0.1,
    seed=13,
)

COUNTERS = (
    "accepted_envelopes",
    "rejected_envelopes",
    "duplicates_suppressed",
    "opinions_stale",
    "history_mismatches",
    "n_records",
    "n_opinions",
)


class CountingRouter(ShardRouter):
    """A ShardRouter that counts string-key routes."""

    __slots__ = ("calls",)

    def __init__(self, n_shards):
        super().__init__(n_shards)
        self.calls = 0

    def shard_of(self, key):
        self.calls += 1
        return super().shard_of(key)


def make_server(n_shards=4):
    traffic = SyntheticTraffic(WORKLOAD)
    server = ShardedRSPServer(
        traffic.catalog, n_shards=n_shards, workers=0, require_tokens=False
    )
    server.attach_telemetry(Telemetry())
    counting = CountingRouter(n_shards)
    server.router = counting
    return server, counting, traffic


class TestRouteOnce:
    def test_mixed_batch_routes_once_per_delivery(self):
        server, counting, traffic = make_server()
        batch = traffic.batch(300, now=100.0)
        counting.calls = 0
        server.receive_batch(batch, now=100.0)
        assert counting.calls == len(batch)

    def test_single_shard_batch_routes_once_per_delivery(self):
        server, counting, traffic = make_server()
        pool = traffic.batch(600, now=100.0)
        target = [
            d
            for d in pool
            if counting.shard_of(d.payload.record.history_id) == 2
        ]
        assert len(target) > 10
        counting.calls = 0
        server.receive_batch(target, now=100.0)
        assert counting.calls == len(target)

    def test_duplicates_do_not_route_twice_either(self):
        server, counting, traffic = make_server()
        batch = traffic.batch(200, now=100.0)
        server.receive_batch(batch, now=100.0)
        counting.calls = 0
        server.receive_batch(batch, now=200.0)  # all duplicates
        assert counting.calls == len(batch)
        assert server.duplicates_suppressed >= len(batch)


class TestFastPathEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 4, 8])
    def test_batch_matches_per_envelope_receive(self, n_shards):
        batched, _, t1 = make_server(n_shards)
        loop, _, t2 = make_server(n_shards)
        for tick in range(4):
            now = 100.0 * tick
            batch_a = t1.batch(250, now)
            batch_b = t2.batch(250, now)
            batched.receive_batch(batch_a, now=now)
            for delivery in batch_b:
                loop.receive(delivery, now=now)
        for attr in COUNTERS:
            assert getattr(batched, attr) == getattr(loop, attr), attr
        assert batched.all_summaries() == loop.all_summaries()

    def test_single_shard_burst_digest_pinned(self):
        """The fast path (no group allocation) vs the grouped path."""
        fast, counting, t1 = make_server(4)
        grouped, _, t2 = make_server(4)
        pool_a = t1.batch(600, now=100.0)
        pool_b = t2.batch(600, now=100.0)
        same = [
            d
            for d in pool_a
            if counting.shard_of(d.payload.record.history_id) == 1
        ]
        twin = [
            d
            for d in pool_b
            if counting.shard_of(d.payload.record.history_id) == 1
        ]
        assert [d.payload.nonce for d in same] == [d.payload.nonce for d in twin]
        fast.receive_batch(same, now=100.0)  # homogeneous: fast path
        for delivery in twin:  # per-envelope reference
            grouped.receive(delivery, now=100.0)
        for attr in COUNTERS:
            assert getattr(fast, attr) == getattr(grouped, attr), attr

    def test_record_without_string_history_id_still_store_errors(self):
        class NoKey:
            pass

        from repro.core.protocol import Envelope
        from repro.privacy.anonymity import Delivery

        server, _, traffic = make_server()
        weird = Delivery(
            payload=Envelope(record=NoKey(), token=None, nonce=b"n-rt" * 4),
            arrival_time=100.0,
            channel_tag="t",
        )
        before = server.rejected_envelopes
        server.receive_batch([weird] + traffic.batch(40, 100.0), now=100.0)
        assert server.rejected_envelopes > before
        export = server.telemetry.metrics.export_json()
        assert "malformed" in export
