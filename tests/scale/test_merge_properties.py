"""Property tests for the order-independent merges of ``repro.scale.merge``.

Hand-rolled generators over ``repro.util.rng``.  Float-summing merges are
exercised with dyadic rationals (multiples of 1/16 well inside the
53-bit mantissa), for which IEEE-754 addition is exact — so associativity
and commutativity can be asserted as *equality*, not approximation.
Percentile-consuming merges (:func:`merge_pools`) are exercised with
arbitrary floats, because their contract is permutation-invariance of the
downstream *profiles*, which only needs the multiset to survive.
"""

import numpy as np

from repro.fraud.profiles import ProfilePools, profiles_from_pools
from repro.privacy.history_store import (
    FoldedStats,
    InteractionHistory,
    InteractionUpload,
    StoredRecord,
)
from repro.scale.merge import merge_counts, merge_folded, merge_histories, merge_pools
from repro.util.rng import make_rng


def dyadic(rng, low=0, high=16 * 4096):
    """A float that IEEE-754 addition treats exactly: k/16."""
    return float(int(rng.integers(low, high))) / 16.0


def random_folded(rng):
    n = int(rng.integers(1, 50))
    return FoldedStats(
        n=n,
        earliest_event_time=dyadic(rng),
        latest_event_time=dyadic(rng),
        duration_sum=dyadic(rng),
        travel_sum=dyadic(rng),
    )


class TestMergeFolded:
    def test_commutative(self):
        rng = make_rng(1, "scale/test/folded-comm")
        for _ in range(100):
            a, b = random_folded(rng), random_folded(rng)
            assert merge_folded(a, b) == merge_folded(b, a)

    def test_associative(self):
        rng = make_rng(2, "scale/test/folded-assoc")
        for _ in range(100):
            a, b, c = (random_folded(rng) for _ in range(3))
            assert merge_folded(merge_folded(a, b), c) == merge_folded(
                a, merge_folded(b, c)
            )

    def test_none_and_empty_are_identities(self):
        rng = make_rng(3, "scale/test/folded-identity")
        a = random_folded(rng)
        empty = FoldedStats()
        assert merge_folded(a, None) is a
        assert merge_folded(None, a) is a
        assert merge_folded(a, empty) is a
        assert merge_folded(empty, a) is a
        assert merge_folded(None, None) is None


def record(rng, hid, eid):
    t = dyadic(rng)
    return StoredRecord(
        upload=InteractionUpload(
            history_id=hid,
            entity_id=eid,
            interaction_type="visit",
            event_time=t,
            duration=dyadic(rng),
            travel_km=dyadic(rng),
        ),
        arrival_time=t + 1.0,
    )


def partial_history(rng, hid="h", eid="e", n_max=6, with_folded=False):
    records = [record(rng, hid, eid) for _ in range(int(rng.integers(0, n_max)))]
    folded = random_folded(rng) if with_folded and rng.integers(0, 2) else None
    return InteractionHistory(
        history_id=hid, entity_id=eid, records=records, folded=folded
    )


class TestMergeHistories:
    def test_commutative(self):
        rng = make_rng(4, "scale/test/hist-comm")
        for _ in range(50):
            a = partial_history(rng, with_folded=True)
            b = partial_history(rng, with_folded=True)
            assert merge_histories(a, b) == merge_histories(b, a)

    def test_associative(self):
        rng = make_rng(5, "scale/test/hist-assoc")
        for _ in range(50):
            a, b, c = (partial_history(rng, with_folded=True) for _ in range(3))
            assert merge_histories(merge_histories(a, b), c) == merge_histories(
                a, merge_histories(b, c)
            )

    def test_record_multiset_preserved(self):
        rng = make_rng(6, "scale/test/hist-multiset")
        a, b = partial_history(rng), partial_history(rng)
        merged = merge_histories(a, b)
        assert sorted(
            (r.upload.event_time, r.upload.duration) for r in merged.records
        ) == sorted(
            (r.upload.event_time, r.upload.duration)
            for r in list(a.records) + list(b.records)
        )

    def test_mismatched_identifier_rejected(self):
        rng = make_rng(7, "scale/test/hist-mismatch")
        a = partial_history(rng, hid="h1")
        b = partial_history(rng, hid="h2")
        try:
            merge_histories(a, b)
        except ValueError:
            pass
        else:  # pragma: no cover - defends the assertion
            raise AssertionError("merging different histories must fail")

    def test_mismatched_entity_binding_rejected(self):
        rng = make_rng(8, "scale/test/hist-entity")
        a = partial_history(rng, hid="h1", eid="e1")
        b = partial_history(rng, hid="h1", eid="e2")
        try:
            merge_histories(a, b)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("one identifier is bound to one entity")


def random_counts(rng, kinds=("restaurant", "dentist", "gym")):
    return {
        kind: int(rng.integers(0, 100))
        for kind in kinds
        if rng.integers(0, 2)
    }


class TestMergeCounts:
    def test_commutative_and_associative(self):
        rng = make_rng(9, "scale/test/counts")
        for _ in range(100):
            a, b, c = (random_counts(rng) for _ in range(3))
            assert merge_counts(a, b) == merge_counts(b, a)
            assert merge_counts(merge_counts(a, b), c) == merge_counts(
                a, merge_counts(b, c)
            )

    def test_emitted_in_sorted_key_order(self):
        merged = merge_counts({"z": 1}, {"a": 2, "m": 3})
        assert list(merged) == ["a", "m", "z"]


def random_pools(rng, kinds=("restaurant", "dentist")):
    pools = ProfilePools()
    for kind in kinds:
        n = int(rng.integers(0, 6))
        if n == 0:
            continue
        pools.n_histories[kind] = n
        pools.counts[kind] = [float(rng.integers(1, 20)) for _ in range(n)]
        pools.durations[kind] = list(rng.uniform(60.0, 7200.0, size=3 * n))
        if rng.integers(0, 2):
            pools.gaps[kind] = np.asarray(
                rng.uniform(3600.0, 10 * 86400.0, size=2 * n), dtype=np.float64
            )
    return pools


class TestMergePools:
    def test_concatenation_preserves_multisets(self):
        rng = make_rng(10, "scale/test/pools-multiset")
        parts = [random_pools(rng) for _ in range(4)]
        merged = merge_pools(parts)
        for field in ("gaps", "durations", "counts"):
            expected: dict[str, list[float]] = {}
            for pools in parts:
                for kind, values in getattr(pools, field).items():
                    expected.setdefault(kind, []).extend(float(v) for v in values)
            got = getattr(merged, field)
            assert set(got) == {k for k, v in expected.items() if v}
            for kind in got:
                assert sorted(float(v) for v in got[kind]) == sorted(expected[kind])

    def test_profiles_invariant_under_input_permutation(self):
        """The whole point of the mergeable intermediate: whatever order
        shards report in, the global profiles are identical."""
        rng = make_rng(11, "scale/test/pools-perm")
        for trial in range(10):
            parts = [random_pools(rng) for _ in range(5)]
            reference = profiles_from_pools(merge_pools(parts))
            perm_rng = make_rng(12, f"scale/test/pools-perm[{trial}]")
            order = perm_rng.permutation(len(parts))
            permuted = profiles_from_pools(
                merge_pools([parts[int(i)] for i in order])
            )
            assert permuted == reference

    def test_histories_counter_sums(self):
        rng = make_rng(13, "scale/test/pools-counts")
        parts = [random_pools(rng) for _ in range(3)]
        merged = merge_pools(parts)
        for kind in merged.n_histories:
            assert merged.n_histories[kind] == sum(
                p.n_histories.get(kind, 0) for p in parts
            )
