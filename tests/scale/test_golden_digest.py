"""Golden-digest regression pins for two canonical epoch scenarios.

Each pin is the sha256 of ``EpochsOutcome.reports_digest()`` for a fully
deterministic pipeline run.  Monolithic and sharded configurations must
both hit the *same* pin — so a drift in either the core math or the
scale layer's merge order shows up as a one-line failure here before the
(slower) differential matrix localizes it.

If a pin moves because of an *intentional* semantic change, re-derive it
with the scenario helpers below and update BOTH constants in one commit,
saying why in the commit message.
"""

import hashlib

import pytest

from repro.faults import DropFault, DuplicateFault, FaultPlan, Window
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.uploads import RetransmitPolicy
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 28.0
HORIZON = HORIZON_DAYS * DAY

GOLDEN_CLEAN = "efb4ba73cdc6df663515b14835aa4a47fa3a4d6dcbbc7f4e524103a469db0791"
GOLDEN_CHAOS = "deff64580df2c0021245f7a6aba4ffe25517a7738ef92d8e7240228b10a7d127"

CHAOS_PLAN = FaultPlan(
    seed=17,
    drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.05),),
    duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), 0.10),),
)
CHAOS_RETRY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def digest_of(world, n_shards, workers, plan=None, retransmit=None):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=29, retransmit=retransmit)
    outcome = run_epochs(
        town,
        result,
        config,
        n_epochs=3,
        classifier=classifier,
        max_users=8,
        fault_plan=plan,
        n_shards=n_shards,
        workers=workers,
    )
    return hashlib.sha256(outcome.reports_digest().encode()).hexdigest()


@pytest.mark.parametrize("n_shards,workers", [(1, 0), (8, 0)])
def test_clean_scenario_pins(world, n_shards, workers):
    assert digest_of(world, n_shards, workers) == GOLDEN_CLEAN


@pytest.mark.parametrize("n_shards,workers", [(1, 0), (8, 2)])
def test_chaos_scenario_pins(world, n_shards, workers):
    assert (
        digest_of(world, n_shards, workers, plan=CHAOS_PLAN, retransmit=CHAOS_RETRY)
        == GOLDEN_CHAOS
    )
