"""Behavioural equivalence of :class:`ShardedRSPServer` with the monolith.

These tests drive both servers through handcrafted intake sequences —
duplicates, token replays, poisoned records, outages — and assert the
sharded facade classifies *every* envelope identically and produces
byte-identical maintenance output.  The statistical differential matrix
lives in ``test_differential.py``; this module is the precise, per-nuance
layer.
"""

import pytest

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.tokens import TokenWallet
from repro.scale import parallel
from repro.scale.server import ShardedRSPServer
from repro.service.server import RSPServer
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def town():
    return build_town(TownConfig(n_users=5), seed=20)


def make_pair(town, n_shards, workers=0, **kwargs):
    mono = RSPServer(catalog=town.entities, key_seed=20, key_bits=256, **kwargs)
    sharded = ShardedRSPServer(
        catalog=town.entities,
        key_seed=20,
        key_bits=256,
        n_shards=n_shards,
        workers=workers,
        **kwargs,
    )
    return mono, sharded


def tokens_for(server, count, device="dev", seed=0):
    wallet = TokenWallet(device_id=device, seed=seed)
    blinded = wallet.mint(server.issuer.public_key, count)
    wallet.accept_signatures(
        server.issuer.public_key, server.issuer.issue(device, blinded, now=0.0)
    )
    return [wallet.spend() for _ in range(count)]


def interaction(identity, entity_id, t=0.0, duration=1800.0):
    return InteractionUpload(
        history_id=identity.history_id(entity_id),
        entity_id=entity_id,
        interaction_type="visit",
        event_time=t,
        duration=duration,
        travel_km=2.0,
    )


def delivery(record, token=None, nonce=None, arrival=1.0):
    return Delivery(
        payload=Envelope(record=record, token=token, nonce=nonce),
        arrival_time=arrival,
        channel_tag="c",
    )


def intake_script(server, town):
    """One fixed, nuance-dense intake sequence; returns per-envelope bools."""
    entities = [e.entity_id for e in town.entities]
    identities = [DeviceIdentity.create(f"u{i}", seed=i) for i in range(4)]
    tokens = tokens_for(server, 12)
    outcomes = []
    day = 86400.0
    # Ordinary accepted interactions across several histories/entities.
    for i, identity in enumerate(identities):
        for k in range(3):
            record = interaction(identity, entities[i % len(entities)], t=k * day)
            outcomes.append(
                server.receive(
                    delivery(
                        record,
                        tokens[3 * i + k],
                        nonce=f"nonce-{i}-{k}".encode(),
                        arrival=k * day + 3600.0,
                    )
                )
            )
    # Exact duplicate (same nonce, replayed spent token): suppressed.
    replay = interaction(identities[0], entities[0], t=0.0)
    outcomes.append(
        server.receive(delivery(replay, tokens[0], nonce=b"nonce-0-0", arrival=9e4))
    )
    # Missing token: rejected.
    outcomes.append(
        server.receive(delivery(interaction(identities[1], entities[1]), None, b"n-a"))
    )
    # Unknown entity: rejected (burns its token, not its nonce).
    [extra] = tokens_for(server, 1, device="dev2", seed=9)
    unknown = InteractionUpload(
        history_id=identities[2].history_id("ghost"),
        entity_id="ghost",
        interaction_type="visit",
        event_time=0.0,
        duration=60.0,
        travel_km=0.0,
    )
    outcomes.append(server.receive(delivery(unknown, extra, nonce=b"n-b")))
    # Opinions for the surviving histories.
    op_tokens = tokens_for(server, 2, device="dev3", seed=11)
    for i in range(2):
        opinion = OpinionUpload(
            history_id=identities[i].history_id(entities[i % len(entities)]),
            entity_id=entities[i % len(entities)],
            rating=4.0 - i,
        )
        outcomes.append(
            server.receive(delivery(opinion, op_tokens[i], nonce=f"n-op{i}".encode()))
        )
    # Explicit reviews on the legacy path.
    server.post_review("reviewer-1", entities[0], 5, time=2 * day)
    server.post_review("reviewer-2", entities[1], 3, time=2 * day)
    return outcomes


def counters(server):
    return {
        "accepted": server.accepted_envelopes,
        "rejected": server.rejected_envelopes,
        "duplicates": server.duplicates_suppressed,
        "n_records": server.n_records,
        "n_histories": server.n_histories,
        "n_opinions": server.n_opinions,
        "n_reviews": server.n_explicit_reviews,
        "n_nonces": server.n_unique_nonces,
    }


class TestIntakeEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_per_envelope_classification_matches(self, town, n_shards):
        mono, sharded = make_pair(town, n_shards)
        assert intake_script(mono, town) == intake_script(sharded, town)
        assert counters(mono) == counters(sharded)

    @pytest.mark.parametrize("n_shards,workers", [(1, 0), (2, 0), (8, 0), (8, 2)])
    def test_maintenance_and_summaries_match(self, town, n_shards, workers):
        mono, sharded = make_pair(town, n_shards, workers=workers)
        intake_script(mono, town)
        intake_script(sharded, town)
        assert repr(mono.run_maintenance()) == repr(sharded.run_maintenance())
        assert mono.all_summaries() == sharded.all_summaries()
        for entity in town.entities:
            assert mono.summary(entity.entity_id) == sharded.summary(entity.entity_id)
            assert mono.reviews_for(entity.entity_id) == sharded.reviews_for(
                entity.entity_id
            )

    def test_batch_and_single_intake_agree(self, town):
        """``receive_batch`` regroups by shard; outcomes must not move."""
        one, batch = (
            ShardedRSPServer(
                catalog=town.entities,
                key_seed=20,
                key_bits=256,
                n_shards=4,
                require_tokens=False,
            )
            for _ in range(2)
        )
        identity = DeviceIdentity.create("u", seed=1)
        entities = [e.entity_id for e in town.entities]
        deliveries = [
            delivery(interaction(identity, entities[i % 3], t=i * 1000.0), nonce=bytes([i]))
            for i in range(10)
        ]
        # Duplicate of delivery 3 at the end of the batch.
        deliveries.append(
            delivery(interaction(identity, entities[0], t=3000.0), nonce=bytes([3]))
        )
        accepted_single = sum(1 for d in deliveries if one.receive(d))
        accepted_batch = batch.receive_batch(deliveries)
        assert accepted_single == accepted_batch
        assert counters(one) == counters(batch)

    def test_dedup_spans_batches(self, town):
        server = ShardedRSPServer(
            catalog=town.entities, require_tokens=False, n_shards=4
        )
        identity = DeviceIdentity.create("u", seed=2)
        entity_id = town.entities[0].entity_id
        record = interaction(identity, entity_id)
        assert server.receive_batch([delivery(record, nonce=b"same-nonce")]) == 1
        assert server.receive_batch([delivery(record, nonce=b"same-nonce")]) == 0
        assert server.duplicates_suppressed == 1
        assert server.n_unique_nonces == 1


class PoisonedKey(str):
    """A history key whose hash explodes inside the store — simulating a
    record that fails mid-dispatch, after all up-front validation."""

    def __hash__(self):
        raise RuntimeError("poisoned record")


class TestTransactionalAccept:
    def test_poisoned_record_neither_counts_nor_burns_nonce(self, town):
        server = ShardedRSPServer(
            catalog=town.entities, require_tokens=False, n_shards=4
        )
        identity = DeviceIdentity.create("u", seed=3)
        entity_id = town.entities[0].entity_id
        good = interaction(identity, entity_id)
        poisoned = InteractionUpload(
            history_id=PoisonedKey(good.history_id),
            entity_id=entity_id,
            interaction_type="visit",
            event_time=0.0,
            duration=1800.0,
            travel_km=2.0,
        )
        assert not server.receive(delivery(poisoned, nonce=b"keep-me"))
        assert server.rejected_envelopes == 1
        assert server.accepted_envelopes == 0
        assert server.n_unique_nonces == 0
        # The sender repairs the record and retransmits under the same nonce.
        assert server.receive(delivery(good, nonce=b"keep-me"))
        assert server.accepted_envelopes == 1
        assert server.n_records == 1


class DenyAll:
    def verify(self, quote):
        return False


class TestFacadeParity:
    def test_attestation_denial_matches_monolith(self, town):
        mono, sharded = make_pair(town, 4, attestation=DenyAll())
        for server in (mono, sharded):
            with pytest.raises(PermissionError):
                server.issue_tokens("dev", [1, 2], now=0.0, quote=None)
            assert server.rejected_attestations == 1

    def test_review_for_unknown_entity_raises(self, town):
        _, sharded = make_pair(town, 4)
        with pytest.raises(KeyError):
            sharded.post_review("u", "no-such-entity", 4, time=0.0)

    def test_outage_hook_drops_like_monolith(self, town):
        class DownAfter:
            def server_down(self, now):
                return now >= 100.0

        mono, sharded = make_pair(town, 4, require_tokens=False)
        identity = DeviceIdentity.create("u", seed=4)
        entity_id = town.entities[0].entity_id
        for server in (mono, sharded):
            server.fault_hook = DownAfter()
            assert server.receive(
                delivery(interaction(identity, entity_id), nonce=b"n1", arrival=50.0)
            )
            assert not server.receive(
                delivery(interaction(identity, entity_id, t=1.0), nonce=b"n2", arrival=150.0)
            )
        assert mono.dropped_by_outage == sharded.dropped_by_outage == 1

    def test_search_matches_monolith(self, town):
        from repro.core.discovery import Query

        mono, sharded = make_pair(town, 8)
        intake_script(mono, town)
        intake_script(sharded, town)
        mono.run_maintenance()
        sharded.run_maintenance()
        target = town.entities[0]
        query = Query(category=target.category, near=target.location, radius_km=50.0)
        a = mono.search(query)
        b = sharded.search(query)
        assert [r.entity.entity_id for r in a.results] == [
            r.entity.entity_id for r in b.results
        ]
        assert repr(a.visualization) == repr(b.visualization)


class TestPoolFallback:
    def test_broken_pool_degrades_to_identical_serial_result(self, town):
        mono, sharded = make_pair(town, 4, workers=2)
        intake_script(mono, town)
        intake_script(sharded, town)

        class ExplodingExecutor:
            def submit(self, fn, *args):
                raise OSError("worker pipe torn down")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        original_enter = parallel.MaintenancePool.__enter__

        def sabotaged_enter(pool):
            original_enter(pool)
            if pool._executor is not None:
                pool._executor.shutdown(wait=True, cancel_futures=True)
            pool._executor = ExplodingExecutor()
            return pool

        parallel.MaintenancePool.__enter__ = sabotaged_enter
        try:
            report = sharded.run_maintenance()
        finally:
            parallel.MaintenancePool.__enter__ = original_enter
        assert sharded.pool_fallbacks >= 1
        assert repr(report) == repr(mono.run_maintenance())
        assert sharded.all_summaries() == mono.all_summaries()

    def test_zero_workers_never_forks(self, town):
        _, sharded = make_pair(town, 2, workers=0)
        with parallel.MaintenancePool(sharded, 0) as pool:
            assert pool._executor is None
            assert pool.map(lambda x: x * 2, [(1,), (2,)]) == [2, 4]


def test_lint_guards_the_scale_package():
    """The sharded service is held to the same identity-handling rules as
    the monolithic one — the analyzer must treat it as server code."""
    from repro.lint.engine import LintConfig

    assert "repro.scale" in LintConfig().service_packages
