"""The differential matrix: sharded vs monolithic, end to end.

Every cell runs the full epochs pipeline — simulated town, on-device
clients, mixnet, token issuance, maintenance — twice: once against the
monolithic :class:`RSPServer` and once against a
:class:`ShardedRSPServer` configuration, and asserts *exact* equality of

* the per-epoch report digest (``EpochsOutcome.reports_digest()``),
* every entity's opinion summary (all floats, bit for bit),
* the set of fraud verdicts (which histories were flagged, and why).

The chaos cells repeat the comparison under a fault plan with drops,
duplicates and retransmission, where intake interleaving is at its
nastiest.  This suite is the proof obligation of the scale package:
sharding and the process pool are pure implementation detail.
"""

import pytest

from repro.faults import DropFault, DuplicateFault, FaultPlan, Window
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.uploads import RetransmitPolicy
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 28.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
MAX_USERS = 8

CHAOS = FaultPlan(
    seed=17,
    drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.05),),
    duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), 0.10),),
)
RETRY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def run(world, seed, n_shards=1, workers=0, plan=None, retransmit=None):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=seed, retransmit=retransmit)
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
        n_shards=n_shards,
        workers=workers,
    )


def verdict_set(outcome):
    return {
        (v.history_id, v.entity_id, v.flags)
        for report in outcome.reports
        if report.maintenance is not None
        for v in report.maintenance.rejected
    }


def assert_equivalent(baseline, candidate):
    assert candidate.reports_digest() == baseline.reports_digest()
    assert candidate.server.all_summaries() == baseline.server.all_summaries()
    assert verdict_set(candidate) == verdict_set(baseline)


@pytest.fixture(scope="module")
def baselines(world):
    """Monolithic reference runs, one per seed, shared across the matrix."""
    return {seed: run(world, seed) for seed in (29, 31)}


class TestCleanMatrix:
    @pytest.mark.parametrize("seed", [29, 31])
    @pytest.mark.parametrize("n_shards,workers", [(1, 0), (2, 0), (8, 0), (8, 2)])
    def test_sharded_run_is_indistinguishable(
        self, world, baselines, seed, n_shards, workers
    ):
        outcome = run(world, seed, n_shards=n_shards, workers=workers)
        assert_equivalent(baselines[seed], outcome)
        if workers:
            assert outcome.server.pool_fallbacks == 0

    def test_sanity_different_seeds_differ(self, baselines):
        """Guards the matrix against vacuous equality (e.g. empty runs)."""
        assert baselines[29].reports_digest() != baselines[31].reports_digest()
        assert baselines[29].server.n_records > 0
        assert verdict_set(baselines[29]) or baselines[29].server.n_histories > 0


class TestChaosMatrix:
    @pytest.fixture(scope="class")
    def chaos_baseline(self, world):
        return run(world, 29, plan=CHAOS, retransmit=RETRY)

    @pytest.mark.parametrize("n_shards,workers", [(2, 0), (8, 0), (8, 2)])
    def test_chaos_run_is_indistinguishable(
        self, world, chaos_baseline, n_shards, workers
    ):
        outcome = run(
            world, 29, n_shards=n_shards, workers=workers, plan=CHAOS, retransmit=RETRY
        )
        assert_equivalent(chaos_baseline, outcome)
        # Same fault stream, same suppression behaviour — per shard.
        assert (
            outcome.server.duplicates_suppressed
            == chaos_baseline.server.duplicates_suppressed
        )
        assert outcome.server.accepted_envelopes == outcome.server.n_unique_nonces

    def test_chaos_actually_bites(self, chaos_baseline):
        assert chaos_baseline.injector.messages_dropped > 0
        assert chaos_baseline.server.duplicates_suppressed > 0
