"""Property tests for :class:`repro.scale.router.ShardRouter`.

Hand-rolled generators over ``repro.util.rng`` (no third-party property
framework): each property is checked over a few hundred seeded random
keys.  The properties are the routing contract the sharded server's
correctness argument leans on:

* **totality** — every key routes, to an index in ``[0, n_shards)``;
* **stability** — routing is a pure function of the key: the same key
  routes identically on every call, from every router instance, and
  (because the route never touches builtin ``hash`` or process state)
  in every process;
* **co-location** — a record, its retransmissions, and its opinion all
  carry the same key, hence land on the same shard; identical nonces
  meet in the same nonce bucket;
* **rough balance** — uniformly random keys spread across shards.
"""

import hashlib

from repro.scale.router import ShardRouter
from repro.util.hashing import stable_u64
from repro.util.rng import make_rng

SHARD_COUNTS = (1, 2, 3, 8, 16)


def random_hex_keys(n, seed):
    """Realistic record identifiers: 64-hex-digit digests."""
    rng = make_rng(seed, "scale/test/hex-keys")
    return [
        hashlib.sha256(bytes(rng.bytes(16))).hexdigest() for _ in range(n)
    ]


def random_string_keys(n, seed):
    """Arbitrary short string keys (entity ids and the like)."""
    rng = make_rng(seed, "scale/test/str-keys")
    return [f"e{int(rng.integers(0, 10**9)):09d}" for _ in range(n)]


def random_byte_keys(n, seed, length=16):
    rng = make_rng(seed, "scale/test/byte-keys")
    return [bytes(rng.bytes(length)) for _ in range(n)]


class TestTotalityAndStability:
    def test_every_string_key_routes_in_range(self):
        keys = random_hex_keys(200, seed=1) + random_string_keys(200, seed=2)
        for n_shards in SHARD_COUNTS:
            router = ShardRouter(n_shards)
            for key in keys:
                assert 0 <= router.shard_of(key) < n_shards

    def test_every_bytes_key_routes_in_range(self):
        keys = (
            random_byte_keys(200, seed=3)
            + random_byte_keys(50, seed=4, length=4)  # short: stable_u64 path
            + [b""]
        )
        for n_shards in SHARD_COUNTS:
            router = ShardRouter(n_shards)
            for key in keys:
                assert 0 <= router.shard_of_bytes(key) < n_shards

    def test_routing_is_stable_across_instances_and_calls(self):
        keys = random_hex_keys(100, seed=5) + random_string_keys(100, seed=6)
        for n_shards in SHARD_COUNTS:
            first, second = ShardRouter(n_shards), ShardRouter(n_shards)
            for key in keys:
                route = first.shard_of(key)
                assert route == first.shard_of(key)
                assert route == second.shard_of(key)

    def test_one_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        for key in random_hex_keys(50, seed=7):
            assert router.shard_of(key) == 0
        for key in random_byte_keys(50, seed=8):
            assert router.shard_of_bytes(key) == 0

    def test_pinned_routes(self):
        """Golden pins: the routing function must never drift silently.

        The canonical 8-shard prefix table assigns the top three bits of
        the 64-bit key to shards ``[0, 4, 2, 5, 1, 6, 3, 7]`` (the order
        the recursive split construction yields them in).  Updating these
        pins is only legitimate for an intentional routing change, paired
        with a migration story.
        """
        owner_by_top3 = [0, 4, 2, 5, 1, 6, 3, 7]
        router = ShardRouter(8)
        record_key = hashlib.sha256(b"pinned").hexdigest()
        assert router.shard_of(record_key) == owner_by_top3[
            int(record_key[:16], 16) >> 61
        ]
        assert router.shard_of("entity-42") == owner_by_top3[
            stable_u64("scale/shard-route", "entity-42") >> 61
        ]
        assert router.shard_of_bytes(b"\x01" * 16) == owner_by_top3[
            int.from_bytes(b"\x01" * 8, "big") >> 61
        ]
        assert router.shard_of_bytes(b"ab") == owner_by_top3[
            stable_u64("scale/shard-route", b"ab") >> 61
        ]

    def test_hexlike_but_invalid_key_falls_back(self):
        """A 64-char key with non-hex characters takes the hash path."""
        key = "z" * 64
        for n_shards in SHARD_COUNTS:
            router = ShardRouter(n_shards)
            assert router.shard_of(key) == router.shard_of_u64(
                stable_u64("scale/shard-route", key)
            )

    def test_sign_space_and_case_variants_take_the_hash_path(self):
        """``int(key, 16)`` alone would accept these; the strict guard
        must not.  Regression pins for the hex fast-path tightening: each
        tricky key routes exactly where ``stable_u64`` sends it, and the
        uppercase twin of a genuine record id does *not* follow the
        record id itself."""
        router = ShardRouter(8)
        tricky = [
            "+" + "f" * 63,  # sign prefix, still 64 chars
            "-" + "f" * 63,
            " " + "f" * 63,  # whitespace prefix
            "f" * 63 + "\n",  # trailing whitespace
            "AB" * 32,  # uppercase hex
            hashlib.sha256(b"pinned").hexdigest().upper(),
            "_" + "f" * 63,  # underscore: int() accepts "f_f" grouping
        ]
        for key in tricky:
            assert len(key) == 64
            assert router.shard_of(key) == router.shard_of_u64(
                stable_u64("scale/shard-route", key)
            ), key
        record_key = hashlib.sha256(b"pinned").hexdigest()
        upper = record_key.upper()
        assert router.shard_of(upper) == router.shard_of_u64(
            stable_u64("scale/shard-route", upper)
        )
        assert router.shard_of(record_key) == router.shard_of_u64(
            int(record_key[:16], 16)
        )


class TestCoLocation:
    def test_retransmitted_nonce_meets_its_original(self):
        """A duplicate delivery carries the same nonce bytes, so both
        copies must probe the same nonce bucket."""
        router = ShardRouter(8)
        for nonce in random_byte_keys(200, seed=9):
            duplicate = bytes(nonce)  # fresh object, equal bytes
            assert router.shard_of_bytes(nonce) == router.shard_of_bytes(duplicate)

    def test_record_and_opinion_share_a_shard(self):
        """Interaction records and the inferred opinion for the same
        history carry the same ``hash(Ru, e)`` key."""
        router = ShardRouter(8)
        for key in random_hex_keys(200, seed=10):
            assert router.shard_of(key) == router.shard_of(str(key))

    def test_shard_counts_partition_independently(self):
        """Changing the shard count re-partitions but stays total — no key
        is ever orphaned by a resize."""
        keys = random_hex_keys(100, seed=11)
        for n_shards in SHARD_COUNTS:
            router = ShardRouter(n_shards)
            assert all(0 <= router.shard_of(k) < n_shards for k in keys)


class TestBalance:
    def test_hex_record_keys_spread(self):
        router = ShardRouter(8)
        keys = random_hex_keys(2000, seed=12)
        counts = [0] * 8
        for key in keys:
            counts[router.shard_of(key)] += 1
        # Expected 250 per shard; binomial std ~15, so [125, 375] is ~8 sigma.
        assert all(125 <= c <= 375 for c in counts), counts

    def test_nonce_keys_spread(self):
        router = ShardRouter(8)
        counts = [0] * 8
        for key in random_byte_keys(2000, seed=13):
            counts[router.shard_of_bytes(key)] += 1
        assert all(125 <= c <= 375 for c in counts), counts
