"""Incremental maintenance: same digest, less work.

The matrix half of this suite runs the full epochs pipeline with
``incremental=True`` against a from-scratch (``incremental=False``)
monolithic baseline and asserts *exact* equality of the per-epoch report
digest, every entity summary, and the aggregate telemetry digest — for
every deployment in the acceptance grid (shards {1, 4, 8} × workers
{1, 4}, plus the monolith), clean and under chaos.  An explicit
cache-hit guard keeps the equality from being vacuous: the incremental
runs must actually skip work.

The unit half pins the invalidation contract of
:mod:`repro.service.incremental` directly: quiescent cycles track
nothing, an entity whose last history is rejected loses its cached
summary, a changed kind profile conservatively re-dirties the kind, a
delayed (reordered) opinion re-upload never clobbers a newer one, and an
interaction upload whose identifier is bound to another entity is
rejected as ``history-mismatch`` — in both deployments.
"""

import pytest

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.faults import DropFault, DuplicateFault, FaultPlan, Window
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import RetransmitPolicy
from repro.scale.server import ShardedRSPServer
from repro.service.server import RSPServer
from repro.telemetry import AGGREGATE, Telemetry
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 28.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
MAX_USERS = 8

CHAOS = FaultPlan(
    seed=17,
    drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.05),),
    duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), 0.10),),
)
RETRY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def run(world, n_shards=1, workers=0, plan=None, retransmit=None, incremental=True):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=29, retransmit=retransmit)
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
        n_shards=n_shards,
        workers=workers,
        incremental=incremental,
    )


def assert_equivalent(baseline, candidate):
    assert candidate.reports_digest() == baseline.reports_digest()
    assert candidate.server.all_summaries() == baseline.server.all_summaries()
    assert candidate.telemetry.digest(scope=AGGREGATE) == baseline.telemetry.digest(
        scope=AGGREGATE
    )


#: The acceptance grid: monolith plus shards {1, 4, 8} × workers {1, 4}.
DEPLOYMENTS = [(1, 0), (1, 1), (1, 4), (4, 1), (4, 4), (8, 1), (8, 4)]


class TestCleanMatrix:
    @pytest.fixture(scope="class")
    def full_baseline(self, world):
        """Monolithic from-scratch recompute: the contractual reference."""
        return run(world, incremental=False)

    @pytest.mark.parametrize("n_shards,workers", DEPLOYMENTS)
    def test_incremental_matches_full_recompute(
        self, world, full_baseline, n_shards, workers
    ):
        outcome = run(world, n_shards=n_shards, workers=workers, incremental=True)
        assert_equivalent(full_baseline, outcome)

    def test_full_mode_is_also_deployment_invariant(self, world, full_baseline):
        outcome = run(world, n_shards=4, workers=1, incremental=False)
        assert_equivalent(full_baseline, outcome)

    def test_incremental_runs_actually_skip_work(self, world):
        """Anti-vacuity: equality means nothing if nothing was cached."""
        outcome = run(world, incremental=True)
        hits = outcome.telemetry.total("rsp.maintenance.cache_hits")
        skips = outcome.telemetry.total("rsp.maintenance.cache_skips")
        assert hits > 0, "no entity was ever served from cache"
        assert skips > 0, "no entity was ever recomputed"
        assert outcome.server.n_histories > 0


class TestChaosMatrix:
    @pytest.fixture(scope="class")
    def chaos_full_baseline(self, world):
        return run(world, plan=CHAOS, retransmit=RETRY, incremental=False)

    @pytest.mark.parametrize("n_shards,workers", [(1, 0), (4, 1), (8, 2)])
    def test_chaos_incremental_matches_full(
        self, world, chaos_full_baseline, n_shards, workers
    ):
        outcome = run(
            world,
            n_shards=n_shards,
            workers=workers,
            plan=CHAOS,
            retransmit=RETRY,
            incremental=True,
        )
        assert_equivalent(chaos_full_baseline, outcome)


# --------------------------------------------------------------- units


def make_servers(seed=40, n_users=16):
    """One monolithic and one sharded server over the same small town."""
    town = build_town(TownConfig(n_users=n_users), seed=seed)
    mono = RSPServer(catalog=town.entities, key_seed=seed, require_tokens=False)
    sharded = ShardedRSPServer(
        catalog=town.entities, key_seed=seed, require_tokens=False, n_shards=4
    )
    return town, mono, sharded


def deliver(server, record, nonce, arrival=1.0):
    envelope = Envelope(record=record, token=None, nonce=nonce)
    return server.receive(
        Delivery(payload=envelope, arrival_time=arrival, channel_tag="c")
    )


def interaction(identity, entity_id, t, duration=1800.0):
    return InteractionUpload(
        history_id=identity.history_id(entity_id),
        entity_id=entity_id,
        interaction_type="visit",
        event_time=t,
        duration=duration,
        travel_km=2.0,
    )


def entities_by_kind(town):
    groups = {}
    for entity in town.entities:
        groups.setdefault(entity.kind.label, []).append(entity.entity_id)
    return groups


def fill_honest(server, entity_id, n_users=12, nonce_tag=b"h"):
    """Twelve well-spaced 3-visit histories: the typical-profile baseline."""
    for index in range(n_users):
        identity = DeviceIdentity.create(f"honest-{index}", seed=index)
        for visit in range(3):
            record = interaction(
                identity, entity_id, t=(5 + index + visit * 7) * DAY
            )
            assert deliver(
                server, record, nonce=nonce_tag + bytes([index, visit])
            )


@pytest.mark.parametrize("flavor", ["mono", "sharded"])
class TestInvalidationUnits:
    def pick(self, flavor, mono, sharded):
        return mono if flavor == "mono" else sharded

    def test_quiescent_cycle_tracks_nothing(self, flavor):
        town, mono, sharded = make_servers()
        server = self.pick(flavor, mono, sharded)
        telemetry = Telemetry()
        server.attach_telemetry(telemetry)
        fill_honest(server, town.entities[0].entity_id)
        server.run_maintenance()
        first = server.all_summaries()
        assert first
        skips_after_first = telemetry.total("rsp.maintenance.cache_skips")
        server.run_maintenance()
        assert telemetry.value("rsp.maintenance.dirty_entities") == 0
        assert telemetry.total("rsp.maintenance.cache_skips") == skips_after_first
        assert server.all_summaries() == first

    def test_eviction_when_last_history_is_rejected(self, flavor):
        town, mono, sharded = make_servers()
        server = self.pick(flavor, mono, sharded)
        kinds = entities_by_kind(town)
        kind, members = next(
            (kind, ids) for kind, ids in kinds.items() if len(ids) >= 2
        )
        honest_entity, bot_entity = members[0], members[1]
        fill_honest(server, honest_entity)
        bot = DeviceIdentity.create("bot", seed=99)
        # Two interactions: below the judging threshold, so the history
        # is accepted and the entity gets a summary.
        for visit in range(2):
            assert deliver(
                server,
                interaction(bot, bot_entity, t=visit * 60.0),
                nonce=b"bot" + bytes([visit]),
            )
        server.run_maintenance()
        assert server.summary(bot_entity) is not None
        # The same history balloons to 60 machine-gun interactions — far
        # beyond the honest count ceiling — and gets rejected wholesale.
        for visit in range(2, 60):
            assert deliver(
                server,
                interaction(bot, bot_entity, t=visit * 60.0),
                nonce=b"bot" + bytes([visit]),
            )
        report = server.run_maintenance()
        assert any(v.entity_id == bot_entity for v in report.rejected)
        assert server.summary(bot_entity) is None

    def test_changed_profile_redirties_the_kind(self, flavor):
        town, mono, sharded = make_servers()
        server = self.pick(flavor, mono, sharded)
        telemetry = Telemetry()
        server.attach_telemetry(telemetry)
        kinds = entities_by_kind(town)
        kind, members = next(
            (kind, ids) for kind, ids in sorted(kinds.items()) if len(ids) >= 2
        )
        other_kind_entity = next(
            ids[0] for k, ids in sorted(kinds.items()) if k != kind
        )
        fill_honest(server, members[0])
        fill_honest(server, other_kind_entity, nonce_tag=b"o")
        server.run_maintenance()
        assert telemetry.total("rsp.maintenance.redirtied") == 0
        # New activity at a *sibling* entity moves the kind's profile, so
        # the clean same-kind entity must be re-dirtied; the other kind's
        # profile is untouched and its entity stays cached.
        newcomer = DeviceIdentity.create("newcomer", seed=7)
        for visit in range(3):
            assert deliver(
                server,
                interaction(newcomer, members[1], t=(3 + visit * 5) * DAY),
                nonce=b"n" + bytes([visit]),
            )
        server.run_maintenance()
        assert telemetry.total("rsp.maintenance.redirtied") == 1
        assert telemetry.value("rsp.maintenance.cached_entities") == 1

    def test_cross_entity_opinion_overwrite_moves_the_claim(self, flavor):
        """A re-upload that re-targets another entity (the client's
        inference moved) must pull the inferred opinion out of the old
        entity's summary and into the new one's — in cache, exactly as a
        full recompute would."""
        town, mono, sharded = make_servers()
        server = self.pick(flavor, mono, sharded)
        full = RSPServer(
            catalog=town.entities,
            key_seed=40,
            require_tokens=False,
            incremental=False,
        )
        entity_a = town.entities[0].entity_id
        entity_b = town.entities[1].entity_id
        identity = DeviceIdentity.create("u", seed=1)
        history_id = identity.history_id(entity_a)
        uploads = [
            (interaction(identity, entity_a, t=0.0), b"i"),
            (
                OpinionUpload(
                    history_id=history_id, entity_id=entity_a, rating=4.0, seq=0
                ),
                b"o0",
            ),
        ]
        for record, nonce in uploads:
            assert deliver(server, record, nonce=nonce)
            assert deliver(full, record, nonce=nonce)
        server.run_maintenance()
        full.run_maintenance()
        assert server.summary(entity_a).n_inferred_opinions == 1
        retarget = OpinionUpload(
            history_id=history_id, entity_id=entity_b, rating=2.0, seq=1
        )
        assert deliver(server, retarget, nonce=b"o1")
        assert deliver(full, retarget, nonce=b"o1")
        server.run_maintenance()
        full.run_maintenance()
        assert server.summary(entity_a).n_inferred_opinions == 0
        # The claim moved: B now owns a summary row.  The opinion itself
        # is discounted (B has no history with that id — aggregation
        # drops depth-less inferred opinions), same as a full recompute.
        assert server.summary(entity_b) is not None
        assert server.summary(entity_b).n_inferred_opinions == 0
        assert server.all_summaries() == full.all_summaries()

    def test_history_mismatch_is_split_from_unstored(self, flavor):
        town, mono, sharded = make_servers()
        server = self.pick(flavor, mono, sharded)
        telemetry = Telemetry()
        server.attach_telemetry(telemetry)
        identity = DeviceIdentity.create("u", seed=1)
        entity_a = town.entities[0].entity_id
        entity_b = town.entities[1].entity_id
        assert deliver(server, interaction(identity, entity_a, t=0.0), nonce=b"ok")
        # Same history identifier, different claimed entity: a client bug
        # or a corruption attempt, not a generic storage failure.
        forged = InteractionUpload(
            history_id=identity.history_id(entity_a),
            entity_id=entity_b,
            interaction_type="visit",
            event_time=60.0,
            duration=1800.0,
            travel_km=2.0,
        )
        assert not deliver(server, forged, nonce=b"forged")
        assert server.history_mismatches == 1
        assert (
            telemetry.value("rsp.envelopes.rejected", reason="history-mismatch") == 1
        )
        assert telemetry.value("rsp.envelopes.rejected", reason="unstored") is None


@pytest.mark.parametrize("flavor", ["mono", "sharded"])
class TestSeqOrdering:
    """The version-ordered opinion intake (the foregrounded bugfix).

    Scenario: the client uploads its opinion (``seq=0``), the mix holds
    that envelope in a delay window, the client's inference changes and
    it re-uploads (``seq=1``), and the *newer* envelope arrives first.
    Arrival-order last-write-wins — the old code — would let the late
    ``seq=0`` straggler clobber the newer rating; ``seq`` ordering keeps
    the newest opinion whatever the network did.
    """

    def pick(self, flavor, mono, sharded):
        return mono if flavor == "mono" else sharded

    def slot(self, flavor, server, history_id):
        if flavor == "mono":
            return server._opinions[history_id]
        shard = server.shards[server.router.shard_of(history_id)]
        return shard.opinions[history_id]

    def test_delayed_stale_upload_cannot_clobber_newer(self, flavor):
        town, mono, sharded = make_servers()
        server = self.pick(flavor, mono, sharded)
        telemetry = Telemetry()
        server.attach_telemetry(telemetry)
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        history_id = identity.history_id(entity_id)
        assert deliver(server, interaction(identity, entity_id, t=0.0), nonce=b"i")
        newer = OpinionUpload(
            history_id=history_id, entity_id=entity_id, rating=5.0, seq=1
        )
        stale = OpinionUpload(
            history_id=history_id, entity_id=entity_id, rating=2.0, seq=0
        )
        # The re-upload outruns the delayed original.
        assert deliver(server, newer, nonce=b"new", arrival=2.0)
        assert deliver(server, stale, nonce=b"old", arrival=6.0 * HOUR)
        assert self.slot(flavor, server, history_id).rating == 5.0
        assert self.slot(flavor, server, history_id).seq == 1
        assert server.opinions_stale == 1
        assert telemetry.total("rsp.opinions.stale") == 1
        # The straggler is *accepted* (correct sender, no retransmit
        # needed); only the slot write was skipped.
        assert server.n_opinions == 1

    def test_in_order_uploads_still_take_latest(self, flavor):
        town, mono, sharded = make_servers()
        server = self.pick(flavor, mono, sharded)
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        history_id = identity.history_id(entity_id)
        first = OpinionUpload(
            history_id=history_id, entity_id=entity_id, rating=2.0, seq=0
        )
        second = OpinionUpload(
            history_id=history_id, entity_id=entity_id, rating=4.0, seq=1
        )
        assert deliver(server, first, nonce=b"a")
        assert deliver(server, second, nonce=b"b")
        assert self.slot(flavor, server, history_id).rating == 4.0
        assert server.opinions_stale == 0

    def test_equal_seq_keeps_existing(self, flavor):
        """Ties keep the stored record: a duplicate that slipped past the
        nonce table (e.g. a re-encrypted copy) must be a no-op."""
        town, mono, sharded = make_servers()
        server = self.pick(flavor, mono, sharded)
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        history_id = identity.history_id(entity_id)
        original = OpinionUpload(
            history_id=history_id, entity_id=entity_id, rating=3.0, seq=0
        )
        copy = OpinionUpload(
            history_id=history_id, entity_id=entity_id, rating=1.0, seq=0
        )
        assert deliver(server, original, nonce=b"a")
        assert deliver(server, copy, nonce=b"b")
        assert self.slot(flavor, server, history_id).rating == 3.0
        assert server.opinions_stale == 1
