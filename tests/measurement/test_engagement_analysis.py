"""Tests for the engagement model (Fig 1c) and the analysis layer."""

import numpy as np
import pytest

from repro.measurement.analysis import (
    example_query,
    figure1a,
    figure1b,
    figure1c,
    table1,
)
from repro.measurement.crawler import crawl_service
from repro.measurement.engagement import (
    EngagementDataset,
    google_play_spec,
    measure_engagement,
    youtube_spec,
)
from repro.measurement.services import all_service_specs, healthgrades_spec, yelp_spec


@pytest.fixture(scope="module")
def crawls():
    return [crawl_service(spec, seed=0) for spec in all_service_specs()]


@pytest.fixture(scope="module")
def engagements():
    return [
        measure_engagement(google_play_spec(), seed=0),
        measure_engagement(youtube_spec(), seed=0),
    ]


class TestEngagementModel:
    def test_thousand_entities_each(self, engagements):
        for dataset in engagements:
            assert dataset.n_entities == 1000

    def test_explicit_never_exceeds_implicit(self, engagements):
        """You cannot review an app you never installed."""
        for dataset in engagements:
            assert np.all(dataset.explicit <= dataset.implicit)

    def test_median_gap_exceeds_order_of_magnitude(self, engagements):
        """Figure 1(c)'s headline: the discrepancy is more than 10x."""
        for dataset in engagements:
            assert dataset.median_gap() > 10

    def test_per_entity_gaps_mostly_large(self, engagements):
        for dataset in engagements:
            gaps = dataset.per_entity_gaps()
            assert np.median(gaps) > 10

    def test_implicit_spans_decades(self, engagements):
        for dataset in engagements:
            assert dataset.implicit.max() / dataset.implicit.min() > 100

    def test_deterministic(self):
        a = measure_engagement(google_play_spec(), seed=3)
        b = measure_engagement(google_play_spec(), seed=3)
        assert np.array_equal(a.implicit, b.implicit)
        assert np.array_equal(a.explicit, b.explicit)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            EngagementDataset(
                service="x", implicit_label="a", explicit_label="b",
                implicit=np.array([1, 2]), explicit=np.array([1]),
            )


class TestTable1:
    def test_rows_in_paper_order(self, crawls):
        result = table1(crawls)
        assert [row.service for row in result.rows] == [
            "Yelp", "Angie's List", "Healthgrades",
        ]
        assert [row.n_categories for row in result.rows] == [9, 24, 4]

    def test_render_contains_all_services(self, crawls):
        art = table1(crawls).render()
        for name in ("Yelp", "Angie's List", "Healthgrades"):
            assert name in art


class TestFigure1a:
    def test_medians_ordered_like_paper(self, crawls):
        """Yelp median > Angie's median > Healthgrades median (25 > 8 > 5)."""
        fig = figure1a(crawls)
        assert fig.median("Yelp") > fig.median("Angie's List") > fig.median("Healthgrades")

    def test_fraction_with_few_reviews_large(self, crawls):
        fig = figure1a(crawls)
        assert fig.fraction_with_at_most("Healthgrades", 10) > 0.5

    def test_render(self, crawls):
        art = figure1a(crawls).render()
        assert "No. of reviews" in art


class TestFigure1b:
    def test_medians_ordered_like_paper(self, crawls):
        """Yelp 12 >> Angie's 2 >= Healthgrades 1."""
        fig = figure1b(crawls)
        assert fig.median("Yelp") > 2 * fig.median("Angie's List")
        assert fig.median("Angie's List") >= fig.median("Healthgrades")

    def test_threshold_respected(self, crawls):
        loose = figure1b(crawls, threshold=10)
        strict = figure1b(crawls, threshold=100)
        assert loose.median("Yelp") >= strict.median("Yelp")


class TestExampleQueries:
    def test_yelp_philadelphia_chinese(self):
        crawl = crawl_service(yelp_spec(), seed=0)
        stat = example_query(crawl, "19120", "chinese")
        assert stat.n_entities == 127
        # The paper found 4 of 127 with >= 50 reviews; assert the shape: a
        # small handful, a tiny fraction of the result set.
        assert 1 <= stat.n_well_reviewed <= 12
        assert stat.n_well_reviewed / stat.n_entities < 0.1

    def test_healthgrades_newyork_dentists(self):
        crawl = crawl_service(healthgrades_spec(), seed=0)
        stat = example_query(crawl, "11368", "dentist")
        assert stat.n_entities == 248
        # Paper: 13 of 248.
        assert 4 <= stat.n_well_reviewed <= 26
        assert stat.n_well_reviewed / stat.n_entities < 0.12


class TestFigure1c:
    def test_gap_statistics(self, engagements):
        fig = figure1c(engagements)
        assert fig.median_gaps["Google Play"] > 10
        assert fig.median_gaps["YouTube"] > 10

    def test_four_cdfs(self, engagements):
        fig = figure1c(engagements)
        assert len(fig.cdfs) == 4

    def test_implicit_cdf_dominates_explicit(self, engagements):
        """At any count x, more entities have <= x explicit interactions than
        <= x implicit interactions (explicit curve sits left/above)."""
        fig = figure1c(engagements)
        gp_imp = fig.cdfs["Google Play installs"]
        gp_exp = fig.cdfs["Google Play reviews + ratings"]
        for x in (10, 100, 1000, 10_000):
            assert gp_exp.evaluate(x) >= gp_imp.evaluate(x)

    def test_render(self, engagements):
        art = figure1c(engagements).render()
        assert "No. of users" in art
