"""Tests for the synthetic service models and the crawler."""

import numpy as np
import pytest

from repro.measurement.crawler import CrawlDataset, crawl_service
from repro.measurement.services import (
    ANGIES_CATEGORIES,
    HEALTHGRADES_CATEGORIES,
    YELP_CATEGORIES,
    all_service_specs,
    angies_spec,
    healthgrades_spec,
    yelp_spec,
)
from repro.measurement.zipcodes import (
    MOST_POPULOUS_ZIPCODES,
    NEW_YORK,
    PHILADELPHIA,
    zipcode_by_code,
)


class TestZipcodes:
    def test_fifty_states(self):
        assert len(MOST_POPULOUS_ZIPCODES) == 50
        assert len({z.state for z in MOST_POPULOUS_ZIPCODES}) == 50

    def test_codes_unique(self):
        codes = [z.code for z in MOST_POPULOUS_ZIPCODES]
        assert len(set(codes)) == 50

    def test_papers_named_zipcodes_present(self):
        assert PHILADELPHIA.code == "19120"
        assert NEW_YORK.code == "11368"
        assert zipcode_by_code("19120") is PHILADELPHIA
        assert zipcode_by_code("11368") is NEW_YORK

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            zipcode_by_code("00000")


class TestServiceSpecs:
    def test_category_counts_match_table1(self):
        assert len(YELP_CATEGORIES) == 9
        assert len(ANGIES_CATEGORIES) == 24
        assert len(HEALTHGRADES_CATEGORIES) == 4

    def test_query_counts(self):
        assert yelp_spec().n_queries == 450
        assert angies_spec().n_queries == 1200
        assert healthgrades_spec().n_queries == 200

    def test_query_override_exact(self):
        spec = yelp_spec()
        assert spec.query_size(0, "19120", "chinese") == 127

    def test_query_size_positive(self):
        spec = angies_spec()
        for seed in range(50):
            assert spec.query_size(seed, "60629", "plumber") >= 1

    def test_review_counts_non_negative_and_capped(self):
        spec = yelp_spec()
        counts = spec.review_counts(0, 500)
        assert counts.min() >= 0
        assert counts.max() <= spec.review_cap

    def test_review_counts_rejects_empty_query(self):
        with pytest.raises(ValueError):
            yelp_spec().review_counts(0, 0)

    def test_dilution_direction_yelp(self):
        """Bigger Yelp markets have fewer reviews per restaurant."""
        spec = yelp_spec()
        small = np.median(spec.review_counts(1, 20000)[:20000])  # n given per call
        small = np.median(
            np.concatenate([spec.review_counts(i, 20) for i in range(300)])
        )
        big = np.median(
            np.concatenate([spec.review_counts(i, 200) for i in range(30)])
        )
        assert small > big

    def test_dilution_direction_healthgrades(self):
        """Bigger Healthgrades markets have more reviews per doctor."""
        spec = healthgrades_spec()
        small = np.median(
            np.concatenate([spec.review_counts(i, 30) for i in range(200)])
        )
        big = np.median(
            np.concatenate([spec.review_counts(i, 300) for i in range(20)])
        )
        assert big > small


class TestCrawler:
    @pytest.fixture(scope="class")
    def yelp_crawl(self) -> CrawlDataset:
        return crawl_service(yelp_spec(), seed=0)

    def test_one_query_per_zip_category(self, yelp_crawl):
        assert yelp_crawl.n_queries == 450
        pairs = {(q.zipcode, q.category) for q in yelp_crawl.queries}
        assert len(pairs) == 450

    def test_total_entities_sums_queries(self, yelp_crawl):
        assert yelp_crawl.n_entities == sum(q.n_entities for q in yelp_crawl.queries)

    def test_all_review_counts_length(self, yelp_crawl):
        assert yelp_crawl.all_review_counts().size == yelp_crawl.n_entities

    def test_deterministic(self):
        a = crawl_service(angies_spec(), seed=5)
        b = crawl_service(angies_spec(), seed=5)
        assert a.n_entities == b.n_entities
        assert np.array_equal(a.all_review_counts(), b.all_review_counts())

    def test_seed_variation(self):
        a = crawl_service(angies_spec(), seed=1)
        b = crawl_service(angies_spec(), seed=2)
        assert not np.array_equal(a.all_review_counts()[:100], b.all_review_counts()[:100])

    def test_query_lookup(self, yelp_crawl):
        query = yelp_crawl.query("19120", "chinese")
        assert query.n_entities == 127
        with pytest.raises(KeyError):
            yelp_crawl.query("19120", "sushi-boats")

    def test_n_with_at_least_monotone_in_threshold(self, yelp_crawl):
        query = yelp_crawl.queries[0]
        assert query.n_with_at_least(10) >= query.n_with_at_least(50) >= query.n_with_at_least(500)

    def test_per_query_counts_vector(self, yelp_crawl):
        counts = yelp_crawl.per_query_counts_with_at_least(50)
        assert counts.size == 450
        assert counts.min() >= 0


class TestCalibration:
    """The headline numbers the generative models must reproduce.

    Tolerances are generous (these are stochastic models) but tight enough
    that a mis-calibration by 2x fails.
    """

    @pytest.fixture(scope="class")
    def crawls(self):
        return {spec.name: crawl_service(spec, seed=0) for spec in all_service_specs()}

    def test_table1_totals(self, crawls):
        targets = {"Yelp": 24_417, "Angie's List": 26_066, "Healthgrades": 24_922}
        for service, target in targets.items():
            assert abs(crawls[service].n_entities - target) < 0.2 * target

    def test_figure1a_medians(self, crawls):
        targets = {"Yelp": 25, "Angie's List": 8, "Healthgrades": 5}
        for service, target in targets.items():
            observed = np.median(crawls[service].all_review_counts())
            assert target * 0.7 <= observed <= target * 1.4, service

    def test_figure1b_medians(self, crawls):
        targets = {"Yelp": 12, "Angie's List": 2, "Healthgrades": 1}
        tolerances = {"Yelp": 4, "Angie's List": 1.5, "Healthgrades": 1}
        for service, target in targets.items():
            observed = np.median(crawls[service].per_query_counts_with_at_least(50))
            assert abs(observed - target) <= tolerances[service], service

    def test_most_entities_poorly_reviewed(self, crawls):
        """The headline qualitative claim: a large fraction of entities have
        very few reviews on every service."""
        for crawl in crawls.values():
            counts = crawl.all_review_counts()
            assert np.mean(counts < 50) > 0.6


class TestCustomCrawls:
    def test_crawl_with_zipcode_subset(self):
        """Crawls can target a subset of locations (e.g. one state)."""
        from repro.measurement.zipcodes import PHILADELPHIA, NEW_YORK

        crawl = crawl_service(yelp_spec(), seed=1, zipcodes=(PHILADELPHIA, NEW_YORK))
        assert crawl.n_queries == 2 * 9
        assert {q.zipcode for q in crawl.queries} == {"19120", "11368"}

    def test_override_applies_only_to_named_query(self):
        crawl = crawl_service(yelp_spec(), seed=2)
        other_chinese = [
            q for q in crawl.queries
            if q.category == "chinese" and q.zipcode != "19120"
        ]
        assert any(q.n_entities != 127 for q in other_chinese)

    def test_different_services_independent_given_seed(self):
        """The same seed must not couple the services' draws."""
        import numpy as np

        yelp = crawl_service(yelp_spec(), seed=9)
        angies = crawl_service(angies_spec(), seed=9)
        assert not np.array_equal(
            yelp.queries[0].review_counts[:10],
            angies.queries[0].review_counts[:10],
        )
