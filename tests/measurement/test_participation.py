"""Tests for the 1/9/90 participation analysis."""

import pytest

from repro.measurement.participation import participation_report
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def report():
    town = build_town(TownConfig(n_users=250), seed=33)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=240), seed=33
    ).run()
    return participation_report(result, n_users=250)


class TestParticipation:
    def test_reviews_are_rare_relative_to_interactions(self, report):
        """The Figure 1(c) mechanism from the inside: well under 10% of
        interactions produce a review."""
        assert report.n_interactions > 1000
        assert report.reviews_per_interaction < 0.1

    def test_silent_majority(self, report):
        """Most interacting users never post — the paper's root cause."""
        assert report.silent_majority_fraction > 0.6

    def test_contribution_concentrated(self, report):
        """The 1/9/90 shape: the top decile writes most reviews."""
        assert report.top1_share + report.next9_share > 0.4
        assert report.review_gini > 0.7

    def test_shares_partition(self, report):
        total = report.top1_share + report.next9_share + report.rest_share
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_counts_consistent(self, report):
        assert report.n_reviewing_users <= report.n_interacting_users <= report.n_users
