"""Cache coherence: a cached read can never differ from a fresh recompute.

Three layers of proof:

* unit pins on :class:`SummaryVersionCache` — fingerprints, FIFO
  eviction, the belt-and-braces staleness guard, and the stats counters;
* a hand-rolled property sweep (hypothesis is deliberately not a
  dependency): randomized intake + maintenance + query schedules, drawn
  from the ``repro.util.rng`` discipline, asserting that at *every* point
  the cached ``query()`` render equals the ``query_uncached()`` oracle;
* the claimed-entity regression — a history flip must evict cached
  results for the entity its opinion slot *claims*, which need not be
  the entity that was dirty (the ``summarize_tracked`` cascade of
  :mod:`repro.service.incremental`).
"""

import pytest

from repro.core.aggregation import OpinionUpload
from repro.fraud.detector import FraudDetector, FraudFlag, HistoryVerdict
from repro.ingest import SyntheticTraffic
from repro.privacy.history_store import InteractionUpload
from repro.serve.cache import SummaryVersionCache
from repro.serve.engine import ServeQuery
from repro.serve.loadgen import QueryWorkload, SyntheticQueries
from repro.util.rng import make_rng
from repro.world.entities import Entity, EntityKind
from repro.world.geography import Point

from tests.serve.conftest import TRAFFIC, deliver_records, make_server


class TestCacheUnit:
    def test_miss_then_hit_round_trip(self):
        cache = SummaryVersionCache()
        assert cache.get("q") is None
        cache.put("q", "response", ["a", "b"])
        entry = cache.get("q")
        assert entry is not None and entry.response == "response"
        assert entry.fingerprint == (("a", 0), ("b", 0))
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_invalidate_bumps_versions_and_drops_dependents(self):
        cache = SummaryVersionCache()
        cache.put("q1", "r1", ["a", "b"])
        cache.put("q2", "r2", ["c"])
        assert cache.invalidate(["b"]) == 1
        assert cache.version("b") == 1
        assert cache.get("q1") is None  # dropped eagerly
        assert cache.get("q2") is not None  # untouched dependency set
        assert cache.stats.invalidations == 1

    def test_invalidating_an_uncached_entity_only_bumps_its_version(self):
        cache = SummaryVersionCache()
        assert cache.invalidate(["ghost"]) == 0
        assert cache.version("ghost") == 1
        assert cache.stats.invalidations == 0

    def test_missed_eviction_degrades_to_a_miss_never_a_stale_hit(self):
        # The fingerprint guard: simulate an invalidation whose reverse
        # map lost track of the entry (versions bump, the eager drop is
        # missed) — the entry must not serve.
        cache = SummaryVersionCache()
        cache.put("q", "stale", ["a"])
        cache._dependents.clear()
        assert cache.invalidate(["a"]) == 0
        assert cache.get("q") is None
        assert cache.stats.misses == 1
        # The dead entry was reaped on the way out.
        assert len(cache) == 0

    def test_revalidation_restamps_an_untouched_entry(self):
        # An invalidation of an unrelated entity forces one fingerprint
        # scan; the entry survives it and the next hit is fast-path again.
        cache = SummaryVersionCache()
        cache.put("q", "r", ["a"])
        cache.invalidate(["other"])
        assert cache.get("q") is not None  # full scan passes
        assert cache._entries["q"].generation == cache._generation
        assert cache.get("q") is not None
        assert cache.stats.hits == 2

    def test_fifo_eviction_at_capacity(self):
        cache = SummaryVersionCache(max_entries=2)
        cache.put("q1", "r1", ["a"])
        cache.put("q2", "r2", ["b"])
        cache.put("q3", "r3", ["c"])
        assert cache.get("q1") is None  # the oldest went first
        assert cache.get("q2") is not None
        assert cache.get("q3") is not None
        assert cache.stats.evictions == 1

    def test_overwriting_a_key_does_not_evict_others(self):
        cache = SummaryVersionCache(max_entries=2)
        cache.put("q1", "r1", ["a"])
        cache.put("q1", "r1-new", ["a"])
        cache.put("q2", "r2", ["b"])
        assert cache.get("q1").response == "r1-new"
        assert cache.get("q2") is not None
        assert cache.stats.evictions == 0

    def test_clear_keeps_versions_monotone(self):
        cache = SummaryVersionCache()
        cache.put("q", "r", ["a"])
        cache.invalidate(["a"])
        cache.clear()
        assert cache.version("a") == 1
        assert len(cache) == 0

    def test_clear_counts_the_dropped_entries_as_evictions(self):
        cache = SummaryVersionCache()
        cache.put("q1", "r1", ["a"])
        cache.put("q2", "r2", ["b"])
        cache.clear()
        assert cache.stats.evictions == 2
        # An empty clear drops nothing and must not inflate the counter.
        cache.clear()
        assert cache.stats.evictions == 2

    def test_fingerprint_deduplicates_repeated_dependencies(self):
        cache = SummaryVersionCache()
        assert cache.fingerprint(["a", "a", "b"]) == cache.fingerprint(["a", "b"])
        assert cache.fingerprint(["b", "a", "b"]) == (("a", 0), ("b", 0))
        # A duplicated dependency list must not widen the stored entry's
        # fingerprint (or every revalidation scan would re-check it).
        entry = cache.put("q", "r", ["a", "b", "a"])
        assert entry.fingerprint == (("a", 0), ("b", 0))

    def test_stats_hit_rate(self):
        cache = SummaryVersionCache()
        assert cache.stats.hit_rate() == 0.0
        cache.put("q", "r", ["a"])
        cache.get("q")
        cache.get("other")
        assert cache.stats.hit_rate() == pytest.approx(1 / 2)

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            SummaryVersionCache(max_entries=0)


# ------------------------------------------------- randomized schedules


@pytest.mark.parametrize("schedule_seed", [1, 2, 3])
@pytest.mark.parametrize("n_shards", [0, 4])
def test_cached_reads_match_fresh_recompute_under_any_schedule(
    schedule_seed, n_shards
):
    """The property: for a random interleaving of intake batches,
    maintenance cycles, and queries, ``query()`` (cached) renders exactly
    what ``query_uncached()`` (fresh recompute) renders, every time."""
    gen = make_rng(schedule_seed, "test/serve-schedule")
    traffic = SyntheticTraffic(TRAFFIC)
    server = make_server(n_shards=n_shards, catalog=traffic.catalog)
    serving = server.serving
    queries = SyntheticQueries(
        traffic.catalog, QueryWorkload(n_distinct=24, seed=schedule_seed)
    )
    now = 100.0
    checked = 0
    for _ in range(30):
        action = int(gen.integers(0, 3))
        if action == 0:
            server.receive_all(
                traffic.batch(int(gen.integers(20, 200)), now), now=now
            )
            now += 600.0
        elif action == 1:
            server.run_maintenance(now=now)
            now += 60.0
        else:
            for query in queries.batch(int(gen.integers(1, 6))):
                cached = serving.query(query).render()
                fresh = serving.query_uncached(query).render()
                assert cached == fresh, query
                checked += 1
    # The schedule actually exercised the interesting interleavings.
    assert checked > 10
    assert serving.stats.hits > 0
    assert serving.stats.invalidations + serving.stats.misses > 0


def test_warm_entries_survive_maintenance_that_changes_nothing_relevant():
    """Maintenance only evicts entries whose dependencies changed: warm
    results for an untouched category keep serving from cache."""
    traffic = SyntheticTraffic(TRAFFIC)
    server = make_server(catalog=traffic.catalog)
    server.receive_all(traffic.batch(600, 100.0), now=100.0)
    server.run_maintenance(now=200.0)
    query = ServeQuery(category="thai", near=Point(2.0, 1.0), radius_km=6.0)
    first = server.query(query)
    # A no-op cycle (nothing dirty) must not disturb the cache.
    server.run_maintenance(now=300.0)
    assert server.serving.stats.hits == 0
    again = server.query(query)
    assert server.serving.stats.hits == 1
    assert again.render() == first.render()


# ---------------------------------------------- claimed-entity regression


class _FlippingDetector(FraudDetector):
    """A detector with a controlled verdict: accept everything until a
    history is *armed*, then reject exactly that one.  Driving the flip
    through the detector keeps the whole cascade (judge → flip →
    ``_claimed_by`` → notification) on the production path."""

    armed: set[str] = set()

    def judge(self, history):
        flags = (
            (FraudFlag.REGULARITY,)
            if history.history_id in self.armed
            else ()
        )
        return HistoryVerdict(
            history_id=history.history_id,
            entity_id=history.entity_id,
            n_interactions=history.n_interactions,
            flags=flags,
            judged=True,
        )


def interaction(history_id, entity_id, event_time):
    return InteractionUpload(
        history_id=history_id,
        entity_id=entity_id,
        interaction_type="visit",
        event_time=event_time,
        duration=1800.0,
        travel_km=2.0,
    )


def test_flipped_history_evicts_the_claimed_entitys_cached_results(
    monkeypatch,
):
    """Regression: the invalidation feed is ``summarize_tracked`` — dirty
    entities *plus* entities claimed by flipped histories.  A history
    owned by A whose opinion slot claims B must, when it flips, evict
    cached results that depend on B even though B was never dirtied by
    the second cycle's intake (B's summary-key presence changes with the
    claim's survival, so a cached B result is no longer trustworthy)."""
    monkeypatch.setattr(
        "repro.service.incremental.FraudDetector", _FlippingDetector
    )
    _FlippingDetector.armed = set()
    owner = Entity(
        entity_id="thai-owner",
        kind=EntityKind.RESTAURANT,
        category="thai",
        location=Point(2.0, 2.0),
        quality=3.0,
    )
    claimed = Entity(
        entity_id="sushi-claimed",
        kind=EntityKind.RESTAURANT,
        category="japanese",
        location=Point(6.0, 2.0),
        quality=3.0,
    )
    server = make_server(catalog=[owner, claimed])
    notified: list[frozenset] = []
    server._engine.subscribe(notified.append)
    deliver_records(
        server,
        [interaction("h-cross", owner.entity_id, 1000.0 * i) for i in range(4)]
        # The cross-entity claim: the slot names the *other* entity.
        + [
            OpinionUpload(
                history_id="h-cross",
                entity_id=claimed.entity_id,
                rating=5.0,
                seq=0,
            )
        ],
        now=5000.0,
    )
    server.run_maintenance(now=6000.0)
    assert claimed.entity_id in server.all_summaries()

    query = ServeQuery(
        category="japanese", near=claimed.location, radius_km=4.0
    )
    before = server.query(query)
    assert server.query(query) is before  # cached

    # Dirty only the owner, and arm the detector so its history flips.
    deliver_records(
        server,
        [interaction("h-cross", owner.entity_id, 6500.0)],
        now=7000.0,
        start_nonce=100,
    )
    _FlippingDetector.armed = {"h-cross"}
    version_before = server.serving.cache.version(claimed.entity_id)
    invalidations_before = server.serving.stats.invalidations
    server.run_maintenance(now=8000.0)

    # The cascade reached the claimed entity: it is in the notified set
    # of the second cycle despite never being dirtied by its intake, its
    # summary version advanced, and the cached entry was dropped.
    assert claimed.entity_id in notified[-1]
    assert server.serving.cache.version(claimed.entity_id) > version_before
    assert server.serving.stats.invalidations > invalidations_before
    assert claimed.entity_id not in server.all_summaries()  # key evicted

    misses_before = server.serving.stats.misses
    after = server.query(query)
    assert server.serving.stats.misses == misses_before + 1  # recomputed
    assert after.render() == server.serving.query_uncached(query).render()


def test_same_owner_flip_changes_the_served_answer(monkeypatch):
    """The visible half of the cascade: an opinion claiming its *own*
    history's entity shows up in the render, and a flip removes it from
    the next (recomputed) cached read."""
    monkeypatch.setattr(
        "repro.service.incremental.FraudDetector", _FlippingDetector
    )
    _FlippingDetector.armed = set()
    owner = Entity(
        entity_id="thai-owner",
        kind=EntityKind.RESTAURANT,
        category="thai",
        location=Point(2.0, 2.0),
        quality=3.0,
    )
    server = make_server(catalog=[owner])
    deliver_records(
        server,
        [interaction("h-own", owner.entity_id, 1000.0 * i) for i in range(4)]
        + [
            OpinionUpload(
                history_id="h-own",
                entity_id=owner.entity_id,
                rating=5.0,
                seq=0,
            )
        ],
        now=5000.0,
    )
    server.run_maintenance(now=6000.0)
    query = ServeQuery(category="thai", near=owner.location, radius_km=4.0)
    before = server.query(query)
    assert "5.0* x1 inferred" in before.render()

    deliver_records(
        server,
        [interaction("h-own", owner.entity_id, 6500.0)],
        now=7000.0,
        start_nonce=100,
    )
    _FlippingDetector.armed = {"h-own"}
    server.run_maintenance(now=8000.0)
    after = server.query(query)
    assert "5.0* x1 inferred" not in after.render()
    assert "no inferences" in after.render()
    assert after.render() == server.serving.query_uncached(query).render()
