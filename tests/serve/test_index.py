"""Coverage-exactness of the inverted index: the zone sweep only prunes.

The load-bearing property is that :meth:`SummaryIndex.candidates` equals
a brute-force full scan of the catalog under the same predicates, for
*any* catalog and query — including entities placed outside the city
bounds, which ``zone_containing`` clamps into edge zones and the sweep
must still find (the assignment-region widening).  Randomized catalogs
and query points drive the equivalence; the deterministic cases pin the
construction-time contracts (id order, duplicate rejection, postings).
"""

import pytest

from repro.ingest.loadgen import synthetic_catalog
from repro.serve.index import SummaryIndex, price_tag
from repro.util.rng import make_rng
from repro.world.entities import DEFAULT_CATEGORIES, Entity, EntityKind
from repro.world.geography import CityGrid, Point


def brute_force(catalog, category, near, radius_km, attribute=None):
    """The spec: full scan, discrete predicates plus the distance test."""
    matches = []
    for entity in sorted(catalog, key=lambda e: e.entity_id):
        if entity.category != category:
            continue
        if attribute is not None:
            tags = set(entity.attributes) | {price_tag(entity.price_level)}
            if attribute not in tags:
                continue
        distance = near.distance_to(entity.location)
        if distance <= radius_km:
            matches.append((entity.entity_id, distance))
    return matches


def random_catalog(gen, n_entities, grid):
    """Entities scattered well past the grid bounds on every side."""
    kinds = list(EntityKind)
    entities = []
    span = grid.size_km
    xs = gen.uniform(-0.5 * span, 1.5 * span, size=n_entities)
    ys = gen.uniform(-0.5 * span, 1.5 * span, size=n_entities)
    qualities = gen.uniform(0.0, 5.0, size=n_entities)
    prices = gen.integers(1, 5, size=n_entities)
    for index in range(n_entities):
        kind = kinds[index % len(kinds)]
        categories = DEFAULT_CATEGORIES[kind]
        entities.append(
            Entity(
                entity_id=f"rand-{index:04d}",
                kind=kind,
                category=categories[index % len(categories)],
                location=Point(float(xs[index]), float(ys[index])),
                quality=float(qualities[index]),
                price_level=int(prices[index]),
            )
        )
    return entities


class TestCoverageExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_candidates_equal_full_scan_on_random_catalogs(self, seed):
        gen = make_rng(seed, "test/serve-index")
        grid = CityGrid(size_km=20.0, rows=4, cols=6)
        catalog = random_catalog(gen, 80, grid)
        index = SummaryIndex(catalog, grid=grid)
        categories = sorted({entity.category for entity in catalog})
        span = grid.size_km
        for trial in range(40):
            category = categories[int(gen.integers(0, len(categories)))]
            near = Point(
                float(gen.uniform(-span, 2 * span)),
                float(gen.uniform(-span, 2 * span)),
            )
            radius = float(gen.uniform(0.5, 1.5 * span))
            attribute = (
                price_tag(int(gen.integers(1, 5)))
                if gen.random() < 0.4
                else None
            )
            got = [
                (entity.entity_id, distance)
                for entity, distance in index.candidates(
                    category, near, radius, attribute
                )
            ]
            want = brute_force(catalog, category, near, radius, attribute)
            assert got == want, (category, near, radius, attribute)

    def test_out_of_grid_entity_is_found_through_the_widened_edge_zone(self):
        grid = CityGrid(size_km=20.0, rows=5, cols=5)
        outside = Entity(
            entity_id="far-out",
            kind=EntityKind.RESTAURANT,
            category="thai",
            location=Point(-30.0, 50.0),  # clamped into the NW corner zone
            quality=3.0,
        )
        index = SummaryIndex([outside], grid=grid)
        # A query near the true (unclamped) location must reach it even
        # though the corner zone's rectangle is nowhere near the point.
        got = index.candidates("thai", Point(-30.0, 49.0), radius_km=2.0)
        assert [entity.entity_id for entity, _ in got] == ["far-out"]
        # And the distance is the true distance, not the clamped one.
        assert got[0][1] == pytest.approx(1.0)

    def test_synthetic_catalog_round_trip(self):
        catalog = synthetic_catalog(60, seed=3)
        index = SummaryIndex(catalog)
        got = index.candidates("thai", Point(3.0, 1.0), radius_km=6.0)
        assert got == [
            (entity, distance)
            for entity, distance in (
                (e, Point(3.0, 1.0).distance_to(e.location))
                for e in sorted(catalog, key=lambda e: e.entity_id)
                if e.category == "thai"
            )
            if distance <= 6.0
        ]


class TestConstruction:
    def test_empty_catalog_is_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SummaryIndex([])

    def test_duplicate_entity_id_is_rejected(self):
        catalog = synthetic_catalog(2, seed=0)
        with pytest.raises(ValueError, match="duplicate"):
            SummaryIndex(catalog + [catalog[0]])

    def test_counts_and_lookup(self):
        catalog = synthetic_catalog(24, seed=0)
        index = SummaryIndex(catalog)
        assert index.n_entities == 24
        assert index.n_postings >= 1
        assert index.entity(catalog[5].entity_id) is catalog[5]

    def test_attribute_postings_include_the_synthetic_price_tag(self):
        catalog = synthetic_catalog(8, seed=0)
        index = SummaryIndex(catalog)
        for entity in catalog:
            assert entity.entity_id in index.attribute_ids(
                price_tag(entity.price_level)
            )
        assert index.attribute_ids("no-such-tag") == frozenset()


class TestCandidateIds:
    """The cache dependency set: discrete predicates only, id order."""

    def test_sorted_and_geometry_free(self):
        catalog = synthetic_catalog(40, seed=1)
        index = SummaryIndex(catalog)
        ids = index.candidate_ids("thai")
        assert ids == sorted(ids)
        assert ids == sorted(
            e.entity_id for e in catalog if e.category == "thai"
        )

    def test_attribute_filter_applies(self):
        catalog = synthetic_catalog(40, seed=1)
        index = SummaryIndex(catalog)
        ids = index.candidate_ids("thai", price_tag(2))
        assert ids == sorted(
            e.entity_id
            for e in catalog
            if e.category == "thai" and e.price_level == 2
        )

    def test_superset_of_any_geometric_query(self):
        catalog = synthetic_catalog(40, seed=1)
        index = SummaryIndex(catalog)
        dependency = set(index.candidate_ids("thai"))
        for x in (0.0, 2.5, 5.0):
            hits = index.candidates("thai", Point(x, 1.0), radius_km=4.0)
            assert {entity.entity_id for entity, _ in hits} <= dependency
