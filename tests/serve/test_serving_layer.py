"""The ``server.serving`` facade: laziness, telemetry, and read accessors.

The facade's contracts beyond coherence (which ``test_cache.py`` and
``test_differential.py`` own):

* **laziness** — a run that never queries must never construct a serving
  layer, subscribe to maintenance, or emit an ``rsp.serve.*`` metric
  (the golden telemetry pins of query-free runs depend on it);
* **telemetry** — ``rsp.serve.queries/cache_hits/cache_misses/
  invalidations`` count in the AGGREGATE scope; the latency histogram is
  DEPLOYMENT-scoped so it can never leak wall-clock noise into an
  invariant digest;
* **canonical read accessors** — ``all_summaries`` returns entity-id
  order on both deployments (the latent dict-insertion-order divergence
  between incremental and adopted-kernel cycles).
"""

import json

import pytest

from repro.ingest import SyntheticTraffic
from repro.serve.engine import ServeQuery
from repro.serve.facade import ServingLayer
from repro.serve.loadgen import QueryWorkload, SyntheticQueries
from repro.telemetry import AGGREGATE

from tests.serve.conftest import TRAFFIC, feed, make_server


def serve_metric_names(telemetry):
    rows = json.loads(telemetry.metrics.export_json())
    return sorted(
        {row["name"] for row in rows if row["name"].startswith("rsp.serve.")}
    )


def metric_row(telemetry, name):
    rows = json.loads(telemetry.metrics.export_json())
    (row,) = [r for r in rows if r["name"] == name]
    return row


class TestLaziness:
    @pytest.mark.parametrize("n_shards", [0, 4])
    def test_query_free_runs_never_touch_the_serve_path(self, n_shards):
        traffic = SyntheticTraffic(TRAFFIC)
        server = feed(make_server(n_shards, catalog=traffic.catalog), traffic)
        assert server._serving is None
        assert server._engine._listeners == []
        assert serve_metric_names(server.telemetry) == []

    def test_first_query_constructs_and_subscribes_once(self):
        traffic = SyntheticTraffic(TRAFFIC)
        server = feed(make_server(catalog=traffic.catalog), traffic)
        layer = server.serving
        assert layer is server.serving  # one layer, not one per access
        assert len(server._engine._listeners) == 1

    def test_attach_serving_replaces_the_layer(self):
        traffic = SyntheticTraffic(TRAFFIC)
        server = feed(make_server(catalog=traffic.catalog), traffic)
        first = server.attach_serving()
        second = server.attach_serving(max_cache_entries=8)
        assert second is server.serving and second is not first
        assert second.cache.max_entries == 8

    def test_telemetry_is_read_at_call_time(self):
        # Attaching serving before telemetry still routes metrics to the
        # (later) shared sink — the facade never snapshots the sink.
        traffic = SyntheticTraffic(TRAFFIC)
        server = feed(make_server(catalog=traffic.catalog), traffic)
        layer = ServingLayer(server)
        assert layer.telemetry is server.telemetry


class TestServeTelemetry:
    def warm_queried_server(self, n_shards=0):
        traffic = SyntheticTraffic(TRAFFIC)
        server = feed(make_server(n_shards, catalog=traffic.catalog), traffic)
        queries = SyntheticQueries(
            traffic.catalog, QueryWorkload(n_distinct=16, seed=3)
        )
        for query in queries.batch(40):
            server.query(query)
        return server, traffic

    @pytest.mark.parametrize("n_shards", [0, 4])
    def test_counters_mirror_the_cache_stats(self, n_shards):
        server, _ = self.warm_queried_server(n_shards)
        telemetry = server.telemetry
        stats = server.serving.stats
        assert telemetry.total("rsp.serve.queries") == 40
        assert telemetry.total("rsp.serve.cache_hits") == stats.hits
        assert telemetry.total("rsp.serve.cache_misses") == stats.misses
        assert stats.hits + stats.misses == 40
        assert stats.hits > 0  # a 16-query pool over 40 draws must repeat

    def test_invalidations_count_dropped_entries(self):
        server, traffic = self.warm_queried_server()
        before = server.telemetry.total("rsp.serve.invalidations")
        server.receive_all(traffic.batch(400, 5000.0), now=5000.0)
        server.run_maintenance(now=5100.0)
        dropped = server.serving.stats.invalidations
        assert server.telemetry.total("rsp.serve.invalidations") == dropped
        assert dropped > before

    def test_latency_histogram_stays_out_of_the_aggregate_scope(self):
        server, _ = self.warm_queried_server()
        telemetry = server.telemetry
        assert metric_row(telemetry, "rsp.serve.latency")["scope"] == "deployment"
        aggregate_export = telemetry.metrics.export_json(scope=AGGREGATE)
        assert "rsp.serve.latency" not in aggregate_export
        # The result-size histogram *is* aggregate (deployment-invariant).
        assert metric_row(telemetry, "rsp.serve.results")["scope"] == "aggregate"
        assert '"rsp.serve.results"' in aggregate_export


class TestCanonicalReadAccessors:
    @pytest.mark.parametrize("n_shards", [0, 4])
    @pytest.mark.parametrize("incremental", [True, False])
    def test_all_summaries_is_entity_id_ordered(self, n_shards, incremental):
        traffic = SyntheticTraffic(TRAFFIC)
        server = feed(
            make_server(n_shards, catalog=traffic.catalog, incremental=incremental),
            traffic,
        )
        keys = list(server.all_summaries())
        assert keys == sorted(keys) and keys

    def test_monolith_and_sharded_orders_agree(self):
        t1, t2 = SyntheticTraffic(TRAFFIC), SyntheticTraffic(TRAFFIC)
        monolith = feed(make_server(catalog=t1.catalog), t1)
        sharded = feed(make_server(4, catalog=t2.catalog), t2)
        assert list(monolith.all_summaries()) == list(sharded.all_summaries())
        assert monolith.all_summaries() == sharded.all_summaries()


class TestQueryDelegation:
    def test_server_query_is_the_serving_layers_query(self):
        traffic = SyntheticTraffic(TRAFFIC)
        server = feed(make_server(catalog=traffic.catalog), traffic)
        query = ServeQuery(category="thai", near=traffic.catalog[0].location)
        via_server = server.query(query)
        via_layer = server.serving.query(query)
        assert via_layer is via_server  # second call served from cache
        assert server.serving.stats.hits == 1
