"""Pins for the serve-path ranking spec (docs/SERVING.md).

Three contracts, each load-bearing for the differential matrix:

* **totality** — the composite key ``(-score, distance, entity_id)`` is a
  strict total order, so any permutation of the candidates sorts to the
  identical ranking (byte-comparable renders across deployments);
* **monotonicity** — ``helpfulness_signal`` is monotone in
  ``inferred_weight`` and ``serve_score`` is monotone in the signal (and
  in its weight), so maturing histories can only help an entity;
* **golden values** — the documented defaults produce exactly the pinned
  scores for the canonical evidence shapes (empty, one review, a
  well-covered entity), so a silent spec change fails loudly.
"""

import itertools

import pytest

from repro.core.aggregation import EntityOpinionSummary
from repro.serve.engine import QueryEngine, ServeQuery, empty_summary
from repro.serve.index import SummaryIndex
from repro.serve.ranking import (
    DEFAULT_RANKING,
    RankingConfig,
    helpfulness_signal,
    rank_key,
    serve_score,
)
from repro.world.entities import Entity, EntityKind
from repro.world.geography import CityGrid, Point


def summary(
    entity_id="e",
    n_explicit=0,
    explicit_mean=None,
    n_inferred=0,
    inferred_mean=None,
    inferred_weight=0.0,
):
    return EntityOpinionSummary(
        entity_id=entity_id,
        n_explicit_reviews=n_explicit,
        explicit_mean=explicit_mean,
        explicit_histogram=[0] * 5,
        n_inferred_opinions=n_inferred,
        inferred_mean=inferred_mean,
        inferred_histogram=[0] * 5,
        n_interacting_users=n_inferred,
        effective_interactions=float(n_inferred),
        raw_interactions=n_inferred,
        inferred_weight=inferred_weight,
    )


class TestGoldenScores:
    def test_empty_summary_scores_exactly_the_prior(self):
        assert serve_score(empty_summary("e")) == pytest.approx(2.5, abs=0)

    def test_single_five_star_review(self):
        # smoothed (5*1 + 2.5*5)/6, volume 0.15*ln 2, helpfulness 1.
        got = serve_score(summary(n_explicit=1, explicit_mean=5.0))
        assert got == pytest.approx(3.520638743750659, abs=1e-12)

    def test_single_one_star_review(self):
        got = serve_score(summary(n_explicit=1, explicit_mean=1.0))
        assert got == pytest.approx(2.853972077083992, abs=1e-12)

    def test_forty_good_inferences_beat_one_perfect_review(self):
        # The docstring's smoothing claim: one 5-star review does not
        # outrank forty 4.2-star inferences from mature histories.
        one_review = serve_score(summary(n_explicit=1, explicit_mean=5.0))
        forty = serve_score(
            summary(n_inferred=40, inferred_mean=4.2, inferred_weight=40.0)
        )
        assert forty > one_review

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RankingConfig(helpfulness_weight=-0.1)
        with pytest.raises(ValueError):
            RankingConfig(volume_weight=-1.0)
        with pytest.raises(ValueError):
            RankingConfig(prior_weight=-1.0)


class TestHelpfulnessSignal:
    def test_no_opinions_is_zero(self):
        assert helpfulness_signal(empty_summary("e")) == 0.0

    def test_explicit_reviews_are_fully_helpful(self):
        assert helpfulness_signal(
            summary(n_explicit=3, explicit_mean=4.0)
        ) == pytest.approx(1.0)

    def test_monotone_in_inferred_weight(self):
        weights = [0.0, 0.5, 2.0, 5.0, 9.9, 10.0]
        signals = [
            helpfulness_signal(
                summary(n_inferred=10, inferred_mean=4.0, inferred_weight=w)
            )
            for w in weights
        ]
        assert signals == sorted(signals)
        assert signals[0] == 0.0 and signals[-1] == pytest.approx(1.0)

    def test_weight_is_clipped_at_the_opinion_count(self):
        capped = summary(n_inferred=10, inferred_mean=4.0, inferred_weight=12.0)
        full = summary(n_inferred=10, inferred_mean=4.0, inferred_weight=10.0)
        assert helpfulness_signal(capped) == helpfulness_signal(full)


class TestMonotonicity:
    def test_score_monotone_in_inferred_weight(self):
        scores = [
            serve_score(
                summary(n_inferred=10, inferred_mean=4.0, inferred_weight=w)
            )
            for w in (0.5, 2.0, 5.0, 9.0, 10.0)
        ]
        assert all(a < b for a, b in zip(scores, scores[1:]))

    def test_score_monotone_in_helpfulness_weight(self):
        evidence = summary(n_inferred=10, inferred_mean=4.0, inferred_weight=5.0)
        scores = [
            serve_score(evidence, RankingConfig(helpfulness_weight=hw))
            for hw in (0.0, 0.25, 0.5, 1.0)
        ]
        assert all(a < b for a, b in zip(scores, scores[1:]))

    def test_mature_histories_outrank_thin_ones_at_the_same_mean(self):
        # Same count, same mean — the sybil-shaped (thin) evidence loses.
        mature = summary(n_inferred=20, inferred_mean=4.0, inferred_weight=20.0)
        thin = summary(n_inferred=20, inferred_mean=4.0, inferred_weight=4.0)
        assert serve_score(mature) > serve_score(thin)


class TestTotalOrder:
    def test_equal_scores_and_distances_break_on_entity_id(self):
        keys = [rank_key(3.0, 1.0, eid) for eid in ("b", "a", "c")]
        assert sorted(keys) == [
            rank_key(3.0, 1.0, "a"),
            rank_key(3.0, 1.0, "b"),
            rank_key(3.0, 1.0, "c"),
        ]

    def test_every_permutation_sorts_identically(self):
        # Deliberate collisions on score and on (score, distance).
        rows = [
            (3.0, 1.0, "alpha"),
            (3.0, 1.0, "beta"),
            (3.0, 2.0, "gamma"),
            (2.0, 0.5, "delta"),
            (2.0, 0.5, "epsilon"),
        ]
        baseline = sorted(rows, key=lambda r: rank_key(*r))
        for perm in itertools.permutations(rows):
            assert sorted(perm, key=lambda r: rank_key(*r)) == baseline

    def test_distinct_results_never_compare_equal(self):
        a = rank_key(3.0, 1.0, "a")
        b = rank_key(3.0, 1.0, "b")
        assert a != b and (a < b) != (b < a)


class TestEngineSanity:
    """Unsummarized and single-opinion entities rank sanely in situ."""

    def make_engine(self):
        grid = CityGrid()
        catalog = [
            Entity(
                entity_id=f"thai-{i}",
                kind=EntityKind.RESTAURANT,
                category="thai",
                location=Point(1.0 + i, 1.0),
                quality=3.0,
            )
            for i in range(3)
        ]
        return QueryEngine(SummaryIndex(catalog, grid=grid))

    def test_unsummarized_entities_score_the_prior_and_sort_by_distance(self):
        engine = self.make_engine()
        query = ServeQuery(category="thai", near=Point(0.0, 1.0), radius_km=10.0)
        ranked = engine.rank(query, {})
        assert [r.entity.entity_id for r in ranked] == [
            "thai-0",
            "thai-1",
            "thai-2",
        ]
        assert all(r.score == pytest.approx(2.5) for r in ranked)

    def test_single_good_review_lifts_an_entity_over_the_empty_ones(self):
        engine = self.make_engine()
        query = ServeQuery(category="thai", near=Point(0.0, 1.0), radius_km=10.0)
        summaries = {"thai-2": summary("thai-2", n_explicit=1, explicit_mean=5.0)}
        ranked = engine.rank(query, summaries)
        # thai-2 is the farthest yet ranks first on evidence.
        assert ranked[0].entity.entity_id == "thai-2"
        assert ranked[0].score > ranked[1].score
