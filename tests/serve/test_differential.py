"""The read path's byte-identity obligation, across the deployment matrix.

The claim of :mod:`repro.serve` is that every serving knob is invisible
in the answers: monolith vs 1/4/8 shards, cold vs warm cache, before vs
after incremental maintenance, clean traffic vs chaos — the rendered
responses are byte-identical, and the run-level ``serve_digest`` (plus
the AGGREGATE telemetry export, which now carries the ``rsp.serve.*``
counters) is deployment-invariant.

Two layers, mirroring ``tests/ingest/test_differential.py``:

* the **epoch-level matrix** drives the full pipeline with
  ``serve_queries`` on, clean and under the chaos plan, across shard,
  worker, incremental, and batching configurations, asserting equal
  ``serve_digest`` and equal AGGREGATE telemetry;
* the **direct server matrix** pins the cache-temperature axis the epoch
  driver can only reach implicitly: the same query list answered cold,
  warm (from cache), and after a maintenance cycle invalidated part of
  the cache — always against the monolith's uncached recompute oracle.
"""

import pytest

from repro.faults import DropFault, DuplicateFault, FaultPlan, Window
from repro.ingest import SyntheticTraffic, WorkloadConfig
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.uploads import RetransmitPolicy
from repro.scale.server import ShardedRSPServer
from repro.serve.loadgen import QueryWorkload, SyntheticQueries
from repro.service.server import RSPServer
from repro.telemetry import AGGREGATE, Telemetry
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 28.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
MAX_USERS = 8
SERVE_QUERIES = 10

CHAOS = FaultPlan(
    seed=17,
    drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.05),),
    duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), 0.10),),
)
RETRY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)


# ------------------------------------------------------- epoch-level matrix


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def run(
    world,
    n_shards=1,
    workers=0,
    incremental=True,
    ingest_batch=False,
    plan=None,
    retransmit=None,
):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=5, retransmit=retransmit)
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
        n_shards=n_shards,
        workers=workers,
        incremental=incremental,
        ingest_batch=ingest_batch,
        serve_queries=SERVE_QUERIES,
    )


def assert_equivalent(baseline, candidate):
    assert candidate.serve_digest == baseline.serve_digest
    assert candidate.reports_digest() == baseline.reports_digest()
    assert candidate.server.all_summaries() == baseline.server.all_summaries()
    # The AGGREGATE scope now carries rsp.serve.queries/cache_hits/
    # cache_misses/invalidations and the result-size histogram, so this
    # asserts the *cache behaviour* — not just the answers — is
    # deployment-invariant (same hits, same misses, same evictions).
    assert candidate.telemetry.digest(scope=AGGREGATE) == baseline.telemetry.digest(
        scope=AGGREGATE
    )


@pytest.fixture(scope="module")
def clean_baseline(world):
    return run(world)


@pytest.fixture(scope="module")
def chaos_baseline(world):
    return run(world, plan=CHAOS, retransmit=RETRY)


class TestCleanMatrix:
    @pytest.mark.parametrize("n_shards,workers", [(1, 1), (4, 0), (8, 0)])
    def test_sharded_serving_is_indistinguishable(
        self, world, clean_baseline, n_shards, workers
    ):
        outcome = run(world, n_shards=n_shards, workers=workers)
        assert_equivalent(clean_baseline, outcome)

    def test_full_recompute_serving_is_indistinguishable(
        self, world, clean_baseline
    ):
        assert_equivalent(clean_baseline, run(world, incremental=False))

    def test_batched_intake_serving_is_indistinguishable(
        self, world, clean_baseline
    ):
        assert_equivalent(clean_baseline, run(world, ingest_batch=True))

    def test_baseline_is_not_vacuous(self, clean_baseline):
        assert clean_baseline.serve_digest is not None
        assert clean_baseline.server.n_records > 0
        telemetry = clean_baseline.telemetry
        assert telemetry.total("rsp.serve.queries") == N_EPOCHS * SERVE_QUERIES
        # The Zipf pool repeats across epochs, so the cache must warm up.
        assert telemetry.total("rsp.serve.cache_hits") > 0
        assert telemetry.total("rsp.serve.invalidations") > 0


class TestChaosMatrix:
    @pytest.mark.parametrize("n_shards,workers", [(1, 1), (4, 0), (8, 4)])
    def test_sharded_serving_under_chaos_is_indistinguishable(
        self, world, chaos_baseline, n_shards, workers
    ):
        outcome = run(
            world, n_shards=n_shards, workers=workers, plan=CHAOS, retransmit=RETRY
        )
        assert_equivalent(chaos_baseline, outcome)

    def test_chaos_actually_bites_and_still_serves(
        self, clean_baseline, chaos_baseline
    ):
        assert chaos_baseline.injector.messages_dropped > 0
        assert chaos_baseline.server.duplicates_suppressed > 0
        assert chaos_baseline.serve_digest is not None
        # Chaos changes the ingested evidence, so the served answers must
        # differ from the clean run's — equal digests here would mean the
        # serve hash is not actually folding the responses in.
        assert chaos_baseline.serve_digest != clean_baseline.serve_digest


# --------------------------------------------------- direct server matrix


WORKLOADS = {
    "clean": WorkloadConfig(
        n_users=200, n_entities=40, opinion_fraction=0.35, seed=11
    ),
    "chaos": WorkloadConfig(
        n_users=200,
        n_entities=40,
        opinion_fraction=0.35,
        duplicate_fraction=0.05,
        stale_fraction=0.2,
        invalid_fraction=0.05,
        seed=11,
    ),
}


def query_list(catalog):
    return SyntheticQueries(
        catalog, QueryWorkload(n_distinct=32, seed=13)
    ).batch(30)


def renders(answer, queries):
    return [answer(query).render() for query in queries]


@pytest.mark.parametrize("impurity", ["clean", "chaos"])
@pytest.mark.parametrize("n_shards", [1, 4, 8])
def test_cold_warm_and_post_maintenance_reads_match_the_oracle(
    impurity, n_shards
):
    config = WORKLOADS[impurity]
    t_ref, t_dut = SyntheticTraffic(config), SyntheticTraffic(config)
    reference = RSPServer(t_ref.catalog, require_tokens=False)
    dut = ShardedRSPServer(
        t_dut.catalog, n_shards=n_shards, workers=0, require_tokens=False
    )
    for server in (reference, dut):
        server.attach_telemetry(Telemetry())
    queries = query_list(t_ref.catalog)

    for tick in range(2):
        now = 100.0 + 600.0 * tick
        reference.receive_all(t_ref.batch(500, now), now=now)
        dut.receive_all(t_dut.batch(500, now), now=now)
    reference.run_maintenance(now=2000.0)
    dut.run_maintenance(now=2000.0)

    # Cold: every answer is a fresh compute on both deployments, and the
    # monolith's *uncached* recompute is the oracle for the sharded DUT.
    oracle = renders(reference.serving.query_uncached, queries)
    cold = renders(dut.query, queries)
    assert cold == oracle
    assert dut.serving.stats.hits > 0  # the Zipf draw repeats queries

    # Warm: the same list again, now served (partly) from cache.
    hits_before = dut.serving.stats.hits
    warm = renders(dut.query, queries)
    assert warm == cold
    assert dut.serving.stats.hits == hits_before + len(queries)
    # The monolith's cached read path agrees with its own oracle too.
    assert renders(reference.query, queries) == oracle

    # Post-maintenance: new evidence lands, the dirty sets invalidate,
    # and the warm caches must converge on the new truth.
    reference.receive_all(t_ref.batch(800, 3000.0), now=3000.0)
    dut.receive_all(t_dut.batch(800, 3000.0), now=3000.0)
    reference.run_maintenance(now=3100.0)
    dut.run_maintenance(now=3100.0)
    assert dut.serving.stats.invalidations > 0
    post_oracle = renders(reference.serving.query_uncached, queries)
    post = renders(dut.query, queries)
    assert post == post_oracle
    assert post != cold  # the new evidence actually changed answers


def test_aggregate_serve_counters_match_across_deployments():
    """Same workload, same queries: monolith and sharded deployments must
    report byte-identical AGGREGATE exports — hits, misses, and
    invalidations included."""
    exports = []
    for n_shards in (0, 4):
        traffic = SyntheticTraffic(WORKLOADS["chaos"])
        if n_shards:
            server = ShardedRSPServer(
                traffic.catalog, n_shards=n_shards, workers=0, require_tokens=False
            )
        else:
            server = RSPServer(traffic.catalog, require_tokens=False)
        server.attach_telemetry(Telemetry())
        queries = query_list(traffic.catalog)
        for tick in range(3):
            now = 100.0 + 600.0 * tick
            server.receive_all(traffic.batch(400, now), now=now)
            server.run_maintenance(now=now + 60.0)
            for query in queries:
                server.query(query)
        exports.append(server.telemetry.metrics.export_json(scope=AGGREGATE))
    assert exports[0] == exports[1]
