"""Shared drivers for the serve-path suites.

Every test here feeds a server through the *wire format* — tokenless
:class:`Delivery`-wrapped envelopes from :class:`SyntheticTraffic` — so
the serving layer is always exercised over state produced by the real
intake and maintenance paths, never hand-poked dictionaries.
"""

import pytest

from repro.core.protocol import Envelope
from repro.ingest import SyntheticTraffic, WorkloadConfig
from repro.privacy.anonymity import Delivery
from repro.scale.server import ShardedRSPServer
from repro.service.server import RSPServer
from repro.telemetry import Telemetry

#: Modest but impure traffic: enough opinions and duplicates to make the
#: summaries non-trivial without slowing the suite down.
TRAFFIC = WorkloadConfig(
    n_users=120,
    n_entities=48,
    opinion_fraction=0.35,
    duplicate_fraction=0.02,
    stale_fraction=0.05,
    seed=7,
)


def make_server(n_shards=0, catalog=None, incremental=True):
    """A tokenless server with real telemetry attached (0 = monolith)."""
    if catalog is None:
        catalog = SyntheticTraffic(TRAFFIC).catalog
    if n_shards:
        server = ShardedRSPServer(
            catalog,
            n_shards=n_shards,
            workers=0,
            require_tokens=False,
            incremental=incremental,
        )
    else:
        server = RSPServer(catalog, require_tokens=False, incremental=incremental)
    server.attach_telemetry(Telemetry())
    return server


def feed(server, traffic, batches=3, batch_size=400, maintain=True):
    """Drive ``batches`` traffic batches in, with a maintenance cycle each."""
    for tick in range(batches):
        now = 100.0 + 600.0 * tick
        server.receive_all(traffic.batch(batch_size, now), now=now)
        if maintain:
            server.run_maintenance(now=now + 60.0)
    return server


def deliver_records(server, records, now=100.0, start_nonce=0):
    """Wrap bare records in tokenless envelopes and receive them."""
    for offset, record in enumerate(records):
        nonce = (start_nonce + offset).to_bytes(16, "big")
        delivery = Delivery(
            payload=Envelope(record=record, token=None, nonce=nonce),
            arrival_time=now,
            channel_tag="test",
        )
        assert server.receive(delivery, now=now)


@pytest.fixture(scope="module")
def warm_monolith():
    """One fed monolith shared by read-only tests in a module."""
    traffic = SyntheticTraffic(TRAFFIC)
    return feed(make_server(catalog=traffic.catalog), traffic)
