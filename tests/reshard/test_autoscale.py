"""The autoscaling policy: thresholds, hysteresis, one op per tick."""

import pytest

from repro.reshard import AutoscalePolicy, Autoscaler, ReshardOp
from repro.telemetry import Telemetry

from tests.durability.conftest import make_server, synth_deliveries


def loaded_server(catalog, n_shards=2, n=40):
    server = make_server(catalog, n_shards)
    server.receive_all(synth_deliveries(catalog, 0, n))
    return server


class TestPolicyValidation:
    def test_split_above_must_be_positive(self):
        with pytest.raises(ValueError, match="split_above"):
            AutoscalePolicy(split_above=0, merge_below=0)

    def test_hysteresis_band_is_enforced(self):
        with pytest.raises(ValueError, match="hysteresis"):
            AutoscalePolicy(split_above=10, merge_below=11)

    def test_shard_bounds(self):
        with pytest.raises(ValueError, match="min_shards"):
            AutoscalePolicy(split_above=10, merge_below=5, min_shards=0)
        with pytest.raises(ValueError, match="max_shards"):
            AutoscalePolicy(split_above=10, merge_below=5, min_shards=4, max_shards=2)


class TestDecide:
    def test_splits_the_hottest_shard(self, catalog):
        server = loaded_server(catalog)
        loads = Autoscaler(AutoscalePolicy(1, 0)).loads(server)
        hottest = max(range(len(loads)), key=lambda i: (loads[i], -i))
        policy = AutoscalePolicy(split_above=min(loads), merge_below=0)
        op = Autoscaler(policy).decide(server)
        assert op == ReshardOp.split(hottest)

    def test_merges_the_two_coldest_shards(self, catalog):
        server = loaded_server(catalog, n_shards=4)
        loads = Autoscaler(AutoscalePolicy(1, 0)).loads(server)
        coldest = sorted(sorted(range(4), key=lambda i: (loads[i], i))[:2])
        policy = AutoscalePolicy(
            split_above=10 * sum(loads), merge_below=10 * sum(loads)
        )
        op = Autoscaler(policy).decide(server)
        assert op == ReshardOp.merge(*coldest)

    def test_balanced_deployment_is_left_alone(self, catalog):
        server = loaded_server(catalog)
        loads = Autoscaler(AutoscalePolicy(1, 0)).loads(server)
        policy = AutoscalePolicy(split_above=max(loads), merge_below=1)
        assert Autoscaler(policy).decide(server) is None

    def test_max_shards_blocks_the_split(self, catalog):
        server = loaded_server(catalog)
        policy = AutoscalePolicy(split_above=1, merge_below=0, max_shards=2)
        assert Autoscaler(policy).decide(server) is None

    def test_min_shards_blocks_the_merge(self, catalog):
        server = loaded_server(catalog)
        total = sum(Autoscaler(AutoscalePolicy(1, 0)).loads(server))
        policy = AutoscalePolicy(
            split_above=10 * total, merge_below=10 * total, min_shards=2
        )
        assert Autoscaler(policy).decide(server) is None

    def test_prefers_the_telemetry_gauges_over_the_stores(self, catalog):
        server = loaded_server(catalog)
        telemetry = Telemetry()
        server.attach_telemetry(telemetry)
        # Gauges disagree with the stores: shard 1 *reports* hot.
        telemetry.set_gauge("rsp.shard.histories", 5, shard=0)
        telemetry.set_gauge("rsp.shard.histories", 500, shard=1)
        scaler = Autoscaler(AutoscalePolicy(split_above=100, merge_below=0))
        assert scaler.loads(server) == [5, 500]
        assert scaler.decide(server) == ReshardOp.split(1)


class TestEvaluate:
    def test_applies_at_most_one_op_and_records_it(self, catalog):
        server = loaded_server(catalog)
        scaler = Autoscaler(AutoscalePolicy(split_above=1, merge_below=0))
        before = server.router.n_shards
        applied = scaler.evaluate(server)
        assert applied is not None and applied.kind == "split"
        assert server.router.n_shards == before + 1
        assert scaler.applied == [applied]
        assert server.reshard_history[-1]["op"] == "split"

    def test_noop_evaluation_records_nothing(self, catalog):
        server = loaded_server(catalog)
        loads = Autoscaler(AutoscalePolicy(1, 0)).loads(server)
        scaler = Autoscaler(
            AutoscalePolicy(split_above=max(loads), merge_below=1)
        )
        assert scaler.evaluate(server) is None
        assert scaler.applied == []
        assert server.reshard_history == []

    def test_observes_the_load_histogram(self, catalog):
        server = loaded_server(catalog)
        telemetry = Telemetry()
        server.attach_telemetry(telemetry)
        scaler = Autoscaler(AutoscalePolicy(split_above=10**6, merge_below=0))
        scaler.decide(server)
        export = telemetry.export_json()
        assert "rsp.reshard.load" in export
