"""The resharding differential matrix: any schedule ≡ static deployment.

The proof obligation of :mod:`repro.reshard`: live topology changes are
pure implementation detail.  Every cell runs the full epochs pipeline —
town, clients, mixnet, tokens, maintenance, serving — under some
resharding schedule (scripted splits, merges, mixed, or the autoscaler)
and asserts *exact* equality with a static deployment on

* the per-epoch report digest,
* every entity's opinion summary (all floats, bit for bit),
* the serve digest (every rendered response folded in),
* the AGGREGATE telemetry export (``rsp.reshard.*`` is DEPLOYMENT-scoped
  by design, so the invariant scope must not move at all).

The chaos cells repeat the comparison under drops + duplicates +
retransmission, where a key that migrated between a drop and its
retransmission must still dedupe on its new shard.
"""

import pytest

from repro.faults import DropFault, DuplicateFault, FaultPlan, Window
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.uploads import RetransmitPolicy
from repro.reshard import AutoscalePolicy, parse_schedule
from repro.telemetry import AGGREGATE, DEPLOYMENT
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 28.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
MAX_USERS = 8
SERVE_QUERIES = 10

CHAOS = FaultPlan(
    seed=17,
    drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.05),),
    duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), 0.10),),
)
RETRY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)

#: Scripted schedules, each paired with the shard count it starts from.
SCHEDULES = {
    "grow-canonical": (2, ["1:split:0", "2:split:1"]),
    "grow-noncanonical": (2, ["1:split:1", "2:split:0"]),
    "shrink": (8, ["2:merge:0:1"]),
    "mixed": (2, ["1:split:0", "2:split:2", "3:merge:1:2"]),
}


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def run(world, n_shards, schedule=None, autoscale=None, plan=None, retransmit=None):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=5, retransmit=retransmit)
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
        n_shards=n_shards,
        serve_queries=SERVE_QUERIES,
        reshard_schedule=parse_schedule(schedule) if schedule else None,
        autoscale=autoscale,
    )


def assert_equivalent(baseline, candidate):
    assert candidate.reports_digest() == baseline.reports_digest()
    assert candidate.server.all_summaries() == baseline.server.all_summaries()
    assert candidate.serve_digest == baseline.serve_digest
    assert candidate.telemetry.digest(scope=AGGREGATE) == baseline.telemetry.digest(
        scope=AGGREGATE
    )


@pytest.fixture(scope="module")
def clean_baseline(world):
    return run(world, n_shards=4)


@pytest.fixture(scope="module")
def chaos_baseline(world):
    return run(world, n_shards=4, plan=CHAOS, retransmit=RETRY)


class TestScheduledMatrix:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_scheduled_resharding_is_indistinguishable(
        self, world, clean_baseline, name
    ):
        n_shards, schedule = SCHEDULES[name]
        outcome = run(world, n_shards=n_shards, schedule=schedule)
        assert len(outcome.reshard_ops) == len(schedule)
        assert_equivalent(clean_baseline, outcome)

    @pytest.mark.parametrize("name", ["grow-canonical", "mixed"])
    def test_resharding_under_chaos_is_indistinguishable(
        self, world, chaos_baseline, name
    ):
        n_shards, schedule = SCHEDULES[name]
        outcome = run(
            world, n_shards=n_shards, schedule=schedule, plan=CHAOS, retransmit=RETRY
        )
        assert len(outcome.reshard_ops) == len(schedule)
        assert_equivalent(chaos_baseline, outcome)
        assert outcome.server.duplicates_suppressed > 0

    def test_reshard_telemetry_stays_out_of_the_aggregate_scope(self, world):
        n_shards, schedule = SCHEDULES["grow-canonical"]
        outcome = run(world, n_shards=n_shards, schedule=schedule)
        deployment = outcome.telemetry.export_json(scope=DEPLOYMENT)
        assert "rsp.reshard.splits" in deployment
        assert "rsp.reshard.moved" in deployment
        assert "rsp.reshard" not in outcome.telemetry.export_json(scope=AGGREGATE)

    def test_monolith_rejects_resharding(self, world):
        with pytest.raises(ValueError, match="shard"):
            run(world, n_shards=1, schedule=["1:split:0"])


class TestAutoscaledMatrix:
    def test_autoscaled_run_is_indistinguishable(self, world, clean_baseline):
        policy = AutoscalePolicy(split_above=8, merge_below=0, max_shards=6)
        outcome = run(world, n_shards=2, autoscale=policy)
        # The policy actually fired — growth happened mid-run.
        assert outcome.reshard_ops
        assert outcome.server.n_shards_live > 2
        assert_equivalent(clean_baseline, outcome)

    def test_autoscaled_chaos_run_is_indistinguishable(self, world, chaos_baseline):
        policy = AutoscalePolicy(split_above=8, merge_below=0, max_shards=6)
        outcome = run(world, n_shards=2, autoscale=policy, plan=CHAOS, retransmit=RETRY)
        assert outcome.reshard_ops
        assert_equivalent(chaos_baseline, outcome)

    def test_sanity_baseline_is_not_vacuous(self, clean_baseline, chaos_baseline):
        assert clean_baseline.server.n_records > 0
        assert clean_baseline.serve_digest is not None
        assert clean_baseline.serve_digest != chaos_baseline.serve_digest
