"""Shard state migration: split/merge hand off every kind of state.

Each test loads a sharded server through the direct-intake harness,
reshards it, and checks the migration invariants: totals are conserved,
placement matches the post-reshard routing table for *every* kind of
state, only the resharded shards' keys move, and a maintenance cycle on
the migrated deployment produces the same summaries as a static one.
"""

import pytest

from repro.reshard import ReshardOp, perform
from repro.telemetry import AGGREGATE, DEPLOYMENT, Telemetry

from tests.durability.conftest import make_server, synth_deliveries

N_DELIVERIES = 48
FINAL_NOW = 10**6


def loaded_server(catalog, n_shards, with_reviews=True):
    server = make_server(catalog, n_shards)
    if with_reviews:
        ids = sorted(entity.entity_id for entity in catalog)
        for k in range(4):
            server.post_review(f"reviewer-{k}", ids[k], 2 + k % 3, 40.0 * (k + 1))
    server.receive_all(synth_deliveries(catalog, 0, N_DELIVERIES))
    return server


def totals(server):
    return {
        "histories": server.n_histories,
        "opinions": sum(len(shard.opinions) for shard in server.shards),
        "reviews": sum(
            len(reviews)
            for shard in server.shards
            for reviews in shard.reviews.values()
        ),
        "nonces": sum(len(bucket) for bucket in server._nonce_buckets),
        "tokens": sum(len(bucket) for bucket in server._redeemer._spent),
        "dirty": set().union(*(shard.dirty_entities for shard in server.shards)),
        "accepted": server.accepted_envelopes,
    }


def assert_placement(server):
    """Every piece of state lives on the shard the router names."""
    router = server.router
    assert len(server.shards) == router.n_shards
    assert len(server._nonce_buckets) == router.n_shards
    assert len(server._redeemer._spent) == router.n_shards
    for position, shard in enumerate(server.shards):
        assert shard.index == position
        for history in shard.store.all_histories():
            assert router.shard_of(history.history_id) == position
        for history_id in shard.opinions:
            assert router.shard_of(history_id) == position
        for nonce in server._nonce_buckets[position]:
            assert router.shard_of_bytes(nonce) == position
        for token_id in server._redeemer._spent[position]:
            assert router.shard_of_bytes(token_id) == position


@pytest.mark.parametrize("target", [0, 1, 3])
def test_split_conserves_totals_and_places_every_key(catalog, target):
    server = loaded_server(catalog, n_shards=4)
    before = totals(server)
    source_size = server.shards[target].store.n_histories
    moved = server.split_shard(target)
    assert server.n_shards_live == 5
    assert totals(server) == before
    assert_placement(server)
    # Locality: the split moved state out of the split shard only, and
    # no more of it than the shard held.
    assert 0 <= moved["histories"] <= source_size
    assert moved["histories"] == server.shards[4].store.n_histories


def test_split_moves_only_already_dirty_marks(catalog):
    server = loaded_server(catalog, n_shards=2)
    dirty_before = set().union(*(s.dirty_entities for s in server.shards))
    server.split_shard(0)
    dirty_after = set().union(*(s.dirty_entities for s in server.shards))
    # The union is preserved exactly: migration neither loses a pending
    # mark nor invents one (which would change the engine's tracked set).
    assert dirty_after == dirty_before


@pytest.mark.parametrize("a,b", [(0, 1), (0, 3), (2, 1)])
def test_merge_conserves_totals_and_renumbers(catalog, a, b):
    server = loaded_server(catalog, n_shards=4)
    before = totals(server)
    source_size = server.shards[b].store.n_histories
    moved = server.merge_shards(a, b)
    assert server.n_shards_live == 3
    assert totals(server) == before
    assert_placement(server)
    assert moved["histories"] == source_size


def test_split_then_merge_round_trips_the_deployment(catalog):
    server = loaded_server(catalog, n_shards=3)
    reference = loaded_server(catalog, n_shards=3)
    server.split_shard(1)
    server.merge_shards(1, 3)
    assert server.router == reference.router
    assert totals(server) == totals(reference)
    for ours, theirs in zip(server.shards, reference.shards):
        assert ours.store.n_histories == theirs.store.n_histories
        assert sorted(ours.opinions) == sorted(theirs.opinions)


def test_resharded_maintenance_matches_static(catalog):
    resharded = loaded_server(catalog, n_shards=2)
    static = loaded_server(catalog, n_shards=2)
    resharded.split_shard(0)
    resharded.split_shard(1)
    resharded.merge_shards(0, 2)
    static_report = static.run_maintenance(now=FINAL_NOW)
    resharded_report = resharded.run_maintenance(now=FINAL_NOW)
    assert repr(resharded_report) == repr(static_report)
    assert resharded.all_summaries() == static.all_summaries()


def test_post_split_intake_routes_and_dedupes(catalog):
    server = loaded_server(catalog, n_shards=2)
    server.split_shard(0)
    # Re-deliver the same batch: every envelope is a duplicate and the
    # migrated nonce buckets must suppress all of them.
    accepted_before = server.accepted_envelopes
    server.receive_all(synth_deliveries(catalog, 0, N_DELIVERIES))
    assert server.accepted_envelopes == accepted_before
    assert server.duplicates_suppressed >= N_DELIVERIES
    # Fresh records land on the right shards under the new table.
    server.receive_all(synth_deliveries(catalog, N_DELIVERIES, N_DELIVERIES + 12))
    assert_placement(server)


def test_perform_records_history_and_deployment_telemetry(catalog):
    server = loaded_server(catalog, n_shards=2)
    telemetry = Telemetry()
    server.attach_telemetry(telemetry)
    aggregate_before = telemetry.digest(scope=AGGREGATE)
    moved = perform(server, ReshardOp.split(0))
    assert server.reshard_history[-1]["op"] == "split"
    assert server.reshard_history[-1]["seq"] == 0  # no journal attached
    assert server.reshard_seq == 1
    assert moved["histories"] > 0
    assert telemetry.value("rsp.reshard.shards") == 3
    assert telemetry.total("rsp.reshard.splits") == 1
    perform(server, ReshardOp.merge(0, 2))
    assert telemetry.total("rsp.reshard.merges") == 1
    # Everything reshard-related is DEPLOYMENT-scoped: the aggregate
    # digest a static deployment is compared against must not move.
    assert telemetry.digest(scope=AGGREGATE) == aggregate_before
    assert "rsp.reshard" in telemetry.export_json(scope=DEPLOYMENT)
