"""Shared fixtures for the resharding suite.

Reuses the durability suite's direct-intake harness (synthetic
deliveries, token-free servers) — a reshard is, from the durable log's
point of view, just one more journaled mutation, so the same workload
shapes exercise it.
"""

import pytest

from repro.world.population import TownConfig, build_town

FIXTURE_SEED = 7


@pytest.fixture(scope="session")
def catalog():
    return build_town(TownConfig(n_users=20), seed=FIXTURE_SEED).entities
