"""The topology ledger: atomic persistence + integrity sealing."""

import json

import pytest

from repro.reshard.topology import (
    TOPOLOGY_FILE,
    CorruptTopologyError,
    load_topology,
    save_topology,
    spec_from_json,
    spec_to_json,
)
from repro.scale.router import ShardRouter

ENTRIES = [
    {"seq": 3, "op": "split", "shard": 0, "resulting": [[[0, 1]], [[1, 1]]]},
    {"seq": 9, "op": "merge", "a": 0, "b": 1, "resulting": [[[0, 0]]]},
]


def test_round_trip(tmp_path):
    save_topology(tmp_path, ENTRIES)
    assert load_topology(tmp_path) == ENTRIES


def test_missing_ledger_is_empty(tmp_path):
    assert load_topology(tmp_path) == []


def test_rewrite_replaces_whole_ledger(tmp_path):
    save_topology(tmp_path, ENTRIES[:1])
    save_topology(tmp_path, ENTRIES)
    assert load_topology(tmp_path) == ENTRIES
    assert not (tmp_path / (TOPOLOGY_FILE + ".tmp")).exists()


def test_tampered_entries_fail_the_digest(tmp_path):
    path = save_topology(tmp_path, ENTRIES)
    payload = json.loads(path.read_text())
    payload["entries"][0]["shard"] = 1
    path.write_text(json.dumps(payload))
    with pytest.raises(CorruptTopologyError, match="integrity"):
        load_topology(tmp_path)


def test_unknown_format_is_rejected(tmp_path):
    path = save_topology(tmp_path, ENTRIES)
    payload = json.loads(path.read_text())
    payload["format"] = "rsp-topology/99"
    path.write_text(json.dumps(payload))
    with pytest.raises(CorruptTopologyError):
        load_topology(tmp_path)


def test_truncated_json_is_rejected(tmp_path):
    path = save_topology(tmp_path, ENTRIES)
    path.write_bytes(path.read_bytes()[:20])
    with pytest.raises(CorruptTopologyError, match="unreadable"):
        load_topology(tmp_path)


@pytest.mark.parametrize("n_shards", [1, 2, 5, 8])
def test_spec_json_round_trip_rebuilds_the_router(n_shards):
    spec = ShardRouter(n_shards).spec()
    restored = spec_from_json(spec_to_json(spec))
    assert restored == spec
    assert ShardRouter.from_spec(restored) == ShardRouter(n_shards)
