"""Crash safety of live resharding: the migration-step crash matrix.

The workload journals batch 1, snapshots, accepts half of batch 2,
**splits shard 0 live**, then accepts the rest.  The matrix then crashes
the deployment at *every* global WAL position around the reshard record
— every record boundary and every mid-frame byte, modelled faithfully:
segments created after the crash point are removed (the post-split lanes
did not exist yet) and the topology ledger is present only if the crash
happened after its rewrite.

Every crash point must satisfy the recovery invariant end to end:

    recover(fresh, dir) + redeliver(batch 2) ≡ never crashed

* a crash *before* the reshard record lost the operation entirely — the
  recovered deployment is the static one, and by deployment invariance
  its maintenance digest still matches the resharded baseline's;
* a crash *at or after* the record replays the migration exactly once
  into the post-split topology, wherever the migration itself died
  (journal-before-migrate: the record is durable before any state moves).
"""

import pytest

from repro.durability.journal import DurableJournal, attach_journal, list_segments
from repro.durability.recovery import recover_server
from repro.durability.replication import ReplicatedRSPServer, ReplicationChannel
from repro.durability.wal import read_wal
from repro.reshard import ReshardOp, load_topology, perform
from repro.reshard.topology import TOPOLOGY_FILE
from repro.util.clock import DAY

from tests.durability.conftest import (
    comparable_state,
    copy_durable_dir,
    final_digest,
    make_server,
    synth_deliveries,
)

N_SHARDS = 2
BATCH_1 = (0, 40)
BATCH_2A = (40, 52)
BATCH_2B = (52, 64)
FINAL_NOW = 2 * DAY


def run_workload(catalog, directory, duplicate_every=0):
    """batch 1 → snapshot → half of batch 2 → live split → the rest."""
    server = make_server(catalog, N_SHARDS)
    journal = DurableJournal(
        directory, n_lanes=N_SHARDS, lane_of=server.router.shard_of
    )
    attach_journal(server, journal)
    ids = sorted(entity.entity_id for entity in catalog)
    for k in range(3):
        server.post_review(f"reviewer-{k}", ids[k], 2 + k, 40.0 * (k + 1))
    server.receive_all(synth_deliveries(catalog, *BATCH_1, duplicate_every))
    server.run_maintenance(now=DAY)
    journal.take_snapshot(server)
    snapshot_seq = journal.next_seq - 1
    batch2 = synth_deliveries(catalog, *BATCH_2A, duplicate_every)
    server.receive_all(batch2)
    perform(server, ReshardOp.split(0))
    reshard_seq = server.reshard_history[-1]["seq"]
    tail = synth_deliveries(catalog, *BATCH_2B, duplicate_every)
    server.receive_all(tail)
    batch2.extend(tail)
    journal.close()
    return server, batch2, snapshot_seq, reshard_seq


def static_twin(catalog, batch2, duplicate_every=0):
    """The same deliveries, never journaled, never resharded."""
    server = make_server(catalog, N_SHARDS)
    ids = sorted(entity.entity_id for entity in catalog)
    for k in range(3):
        server.post_review(f"reviewer-{k}", ids[k], 2 + k, 40.0 * (k + 1))
    server.receive_all(synth_deliveries(catalog, *BATCH_1, duplicate_every))
    server.run_maintenance(now=DAY)
    server.receive_all(batch2)
    return server


def crash_clone(baseline_dir, work, cut_seq, midframe):
    """A faithful image of the durable dir had the process died at
    global WAL position ``cut_seq`` (plus a torn frame of the next
    record when ``midframe``)."""
    copy_durable_dir(baseline_dir, work)
    for _lane, segments in sorted(list_segments(work).items()):
        for start_seq, path in segments:
            if start_seq > cut_seq:
                # This segment was created (lane rotation / remap) after
                # the crash point: the file did not exist yet.
                path.unlink()
                continue
            result = read_wal(path)
            kept = sum(1 for record in result.records if record["seq"] <= cut_seq)
            if kept == len(result.records):
                continue
            boundaries = list(result.offsets) + [result.valid_bytes]
            cut = boundaries[kept]
            if midframe and result.records[kept]["seq"] == cut_seq + 1:
                cut = (boundaries[kept] + boundaries[kept + 1]) // 2
            path.write_bytes(path.read_bytes()[:cut])
    return work


def wal_seqs(directory):
    seqs = []
    for segments in list_segments(directory).values():
        for _start, path in segments:
            seqs.extend(record["seq"] for record in read_wal(path).records)
    return sorted(seqs)


@pytest.mark.parametrize("duplicate_every", [0, 7], ids=["clean", "chaos"])
def test_crash_at_every_migration_step_recovers_exactly_once(
    catalog, tmp_path, duplicate_every
):
    baseline_dir = tmp_path / "baseline"
    baseline, batch2, snapshot_seq, reshard_seq = run_workload(
        catalog, baseline_dir, duplicate_every
    )
    assert snapshot_seq < reshard_seq <= max(wal_seqs(baseline_dir))
    resharded_state = comparable_state(baseline)
    expected_digest = final_digest(baseline, now=FINAL_NOW)

    static = static_twin(catalog, batch2, duplicate_every)
    static_state = comparable_state(static)
    # Deployment invariance makes the two baselines agree on the
    # maintenance digest — which is why every crash cell, pre- or
    # post-record, is held to the same expected digest.
    assert final_digest(static, now=FINAL_NOW) == expected_digest

    max_seq = max(wal_seqs(baseline_dir))
    cells = [(seq, False) for seq in range(snapshot_seq, max_seq + 1)]
    cells += [(seq, True) for seq in range(snapshot_seq, max_seq)]
    for index, (cut_seq, midframe) in enumerate(cells):
        work = crash_clone(
            baseline_dir, tmp_path / f"crash-{index:03d}", cut_seq, midframe
        )
        if cut_seq < reshard_seq:
            # The ledger rewrite happens strictly after the record's
            # fsync; before the record, it cannot exist either.
            (work / TOPOLOGY_FILE).unlink()
        recovered = make_server(catalog, N_SHARDS)
        recover_server(recovered, work)
        survived = cut_seq >= reshard_seq
        assert (recovered.router.n_shards == N_SHARDS + 1) == survived, (
            cut_seq,
            midframe,
        )
        recovered.receive_all(batch2)
        expected_state = resharded_state if survived else static_state
        assert comparable_state(recovered) == expected_state, (cut_seq, midframe)
        assert final_digest(recovered, now=FINAL_NOW) == expected_digest, (
            cut_seq,
            midframe,
        )
        if survived:
            # Exactly-once: the replayed op is in the recovered history
            # once, and recovery re-saved the ledger even where the
            # crash window had destroyed it.
            assert [e["seq"] for e in recovered.reshard_history] == [reshard_seq]
            assert load_topology(work) == recovered.reshard_history


def test_crash_between_record_and_ledger_replays_from_the_wal(catalog, tmp_path):
    """The journal-before-migrate window: record durable, ledger not."""
    baseline_dir = tmp_path / "baseline"
    baseline, batch2, _snap, reshard_seq = run_workload(catalog, baseline_dir)
    expected_state = comparable_state(baseline)
    work = copy_durable_dir(baseline_dir, tmp_path / "window")
    (work / TOPOLOGY_FILE).unlink()

    recovered = make_server(catalog, N_SHARDS)
    recover_server(recovered, work)
    recovered.receive_all(batch2)
    assert comparable_state(recovered) == expected_state
    # Recovery closed the window: the ledger is back.
    assert [e["seq"] for e in load_topology(work)] == [reshard_seq]


def test_ledger_survives_wal_truncation_across_snapshots(catalog, tmp_path):
    """A snapshot *after* the split truncates the reshard record's
    segment; the ledger alone must rebuild the topology."""
    directory = tmp_path / "durable"
    server = make_server(catalog, N_SHARDS)
    journal = DurableJournal(
        directory, n_lanes=N_SHARDS, lane_of=server.router.shard_of
    )
    attach_journal(server, journal)
    server.receive_all(synth_deliveries(catalog, *BATCH_1))
    perform(server, ReshardOp.split(1))
    server.receive_all(synth_deliveries(catalog, *BATCH_2A))
    journal.take_snapshot(server)  # rotates + truncates covered segments
    server.receive_all(synth_deliveries(catalog, *BATCH_2B))
    journal.close()
    expected_state = comparable_state(server)
    expected_digest = final_digest(server, now=FINAL_NOW)
    # The reshard record's WAL frame is really gone.
    assert all(
        record["kind"] != "reshard"
        for lane in list_segments(directory).values()
        for _start, path in lane
        for record in read_wal(path).records
    )

    recovered = make_server(catalog, N_SHARDS)
    recover_server(recovered, directory)
    assert recovered.router.n_shards == N_SHARDS + 1
    assert comparable_state(recovered) == expected_state
    assert final_digest(recovered, now=FINAL_NOW) == expected_digest


def test_corrupt_ledger_refuses_recovery(catalog, tmp_path):
    directory = tmp_path / "durable"
    server = make_server(catalog, N_SHARDS)
    journal = DurableJournal(
        directory, n_lanes=N_SHARDS, lane_of=server.router.shard_of
    )
    attach_journal(server, journal)
    server.receive_all(synth_deliveries(catalog, *BATCH_1))
    perform(server, ReshardOp.split(0))
    journal.close()
    ledger = directory / TOPOLOGY_FILE
    ledger.write_bytes(ledger.read_bytes()[:-10])
    with pytest.raises(Exception, match="topology"):
        recover_server(make_server(catalog, N_SHARDS), directory)


class TestReplicatedResharding:
    def make_pair(self, catalog, root):
        primary = make_server(catalog, N_SHARDS)
        replica = make_server(catalog, N_SHARDS)
        journal = DurableJournal(
            root / "primary", n_lanes=N_SHARDS, lane_of=primary.router.shard_of
        )
        attach_journal(primary, journal)
        return ReplicatedRSPServer(
            primary, replica, journal, ReplicationChannel(), durable_root=root
        )

    def test_shipped_reshard_moves_the_replicas_topology(self, catalog, tmp_path):
        pair = self.make_pair(catalog, tmp_path)
        pair.primary.receive_all(synth_deliveries(catalog, *BATCH_1))
        perform(pair.primary, ReshardOp.split(0))
        pair.primary.receive_all(synth_deliveries(catalog, *BATCH_2A))
        pair.ship(now=100.0)
        assert pair.lag == 0
        assert pair.replica.router == pair.primary.router
        assert comparable_state(pair.replica) == comparable_state(pair.primary)
        assert [e["seq"] for e in pair.replica.reshard_history] == [
            e["seq"] for e in pair.primary.reshard_history
        ]

    def test_failover_after_reshard_promotes_a_recoverable_server(
        self, catalog, tmp_path
    ):
        pair = self.make_pair(catalog, tmp_path)
        pair.primary.receive_all(synth_deliveries(catalog, *BATCH_1))
        perform(pair.primary, ReshardOp.split(0))
        pair.primary.receive_all(synth_deliveries(catalog, *BATCH_2A))
        pair.ship(now=100.0)
        promoted = pair.fail_over(torn_bytes=9)
        assert promoted.router.n_shards == N_SHARDS + 1
        expected_digest = final_digest(promoted, now=FINAL_NOW)
        # The promoted directory carries ledger + baseline snapshot: a
        # later crash of the *new* primary recovers the split topology.
        recovered = make_server(catalog, N_SHARDS)
        recover_server(recovered, tmp_path / "promoted")
        assert recovered.router.n_shards == N_SHARDS + 1
        assert final_digest(recovered, now=FINAL_NOW) == expected_digest
