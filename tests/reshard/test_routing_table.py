"""Property tests for the prefix-of-hash routing table.

The invariants that make live resharding sound, checked over randomized
key populations drawn from :mod:`repro.util.rng`:

* **containment** — splitting shard *i* moves keys only *out of* shard
  *i*, and every moved key lands on the new shard;
* **locality** — a split moves roughly ``1 / n_shards`` of the keys,
  never more than the split shard held (modulo routing, by contrast,
  remaps nearly everything);
* **identity** — ``split(i)`` then ``merge(i, n)`` restores the original
  routing table exactly (the prefix sets, not merely the key → shard
  map), so any schedule of paired operations is reversible;
* **canonical growth** — a router grown by repeated canonical splits is
  byte-identical to one constructed at the final size.
"""

import pytest

from repro.scale.router import MAX_DEPTH, ShardRouter, _canonical_spec
from repro.util.rng import make_rng

N_KEYS = 2000


def sample_keys(seed):
    rng = make_rng(seed, "reshard/routing-keys")
    return [f"key-{int(v):016x}-{i}" for i, v in enumerate(rng.integers(0, 1 << 62, N_KEYS))]


def routes(router, keys):
    return {key: router.shard_of(key) for key in keys}


class TestSplitContainment:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("n_shards", [1, 2, 5, 8])
    def test_split_moves_only_the_split_shards_keys(self, seed, n_shards):
        keys = sample_keys(seed)
        base = ShardRouter(n_shards)
        before = routes(base, keys)
        for target in range(n_shards):
            split = base.split(target)
            after = routes(split, keys)
            moved = {k for k in keys if before[k] != after[k]}
            # Outside keys never move; moved keys come from the split
            # shard and land, all of them, on the appended shard.
            assert all(before[k] == target for k in moved)
            assert all(after[k] == split.n_shards - 1 for k in moved)
            held = sum(1 for k in keys if before[k] == target)
            assert len(moved) <= held
            # The split is a real bisection, not a no-op (a uniform key
            # population always straddles the extended prefix bit).
            assert 0 < len(moved) < held

    @pytest.mark.parametrize("seed", [3, 11])
    def test_split_moves_about_one_nth_of_the_catalog(self, seed):
        keys = sample_keys(seed)
        n_shards = 4
        base = ShardRouter(n_shards)
        before = routes(base, keys)
        after = routes(base.split(0), keys)
        moved = sum(1 for k in keys if before[k] != after[k])
        # Shard 0 holds ~1/4 of the keys; the split moves half of those.
        assert moved <= len(keys) / n_shards
        assert moved >= len(keys) / (4 * n_shards)


class TestMergeIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 8])
    def test_split_then_merge_is_the_identity(self, n_shards):
        base = ShardRouter(n_shards)
        for target in range(n_shards):
            split = base.split(target)
            restored = split.merge(target, split.n_shards - 1)
            assert restored == base
            assert restored.spec() == base.spec()

    @pytest.mark.parametrize("seed", [5])
    def test_any_pair_merge_preserves_coverage(self, seed):
        keys = sample_keys(seed)
        base = ShardRouter(6)
        before = routes(base, keys)
        for a in range(6):
            for b in range(6):
                if a == b:
                    continue
                merged = base.merge(a, b)
                assert merged.n_shards == 5
                after = routes(merged, keys)
                for key in keys:
                    owner = before[key]
                    if owner in (a, b):
                        # The merged shard keeps index a — shifted down
                        # once when a itself sits above the dropped b.
                        expected = a if a < b else a - 1
                    elif owner > b:
                        expected = owner - 1
                    else:
                        expected = owner
                    assert after[key] == expected, (a, b, key)

    def test_random_schedule_stays_a_valid_tiling(self):
        rng = make_rng(13, "reshard/schedule-fuzz")
        keys = sample_keys(13)
        router = ShardRouter(3)
        for _ in range(40):
            if router.n_shards == 1 or rng.random() < 0.6:
                router = router.split(int(rng.integers(0, router.n_shards)))
            else:
                a, b = rng.choice(router.n_shards, size=2, replace=False)
                router = router.merge(int(a), int(b))
            # from_spec re-validates tiling on every step; routing still
            # resolves for every key (total function over the space).
            assert ShardRouter.from_spec(router.spec()) == router
            assert all(0 <= router.shard_of(k) < router.n_shards for k in keys)


class TestCanonicalGrowth:
    @pytest.mark.parametrize("n_shards", range(1, 17))
    def test_split_grown_equals_native(self, n_shards):
        grown = ShardRouter(1)
        while grown.n_shards < n_shards:
            spec = _canonical_spec(grown.n_shards + 1)
            # The canonical recursion always splits the shallowest shard;
            # find it by comparing against the next canonical table.
            for index in range(grown.n_shards):
                if grown.split(index).spec() == spec:
                    grown = grown.split(index)
                    break
            else:  # pragma: no cover - would mean the recursion diverged
                pytest.fail(f"no single split reaches canonical({grown.n_shards + 1})")
        assert grown == ShardRouter(n_shards)

    def test_balance_over_uniform_keys(self):
        keys = sample_keys(17)
        router = ShardRouter(8)
        counts = [0] * 8
        for key in keys:
            counts[router.shard_of(key)] += 1
        assert sum(counts) == N_KEYS
        assert max(counts) < 2 * min(counts)


class TestValidation:
    def test_overlapping_prefixes_are_rejected(self):
        with pytest.raises(ValueError, match="tile"):
            ShardRouter.from_spec((((0, 1),), ((0, 1),)))

    def test_gaps_are_rejected(self):
        with pytest.raises(ValueError, match="cover|tile"):
            ShardRouter.from_spec((((0, 1),),))

    def test_empty_shard_is_rejected(self):
        with pytest.raises(ValueError, match="owns no prefixes"):
            ShardRouter.from_spec((((0, 0),), ()))

    def test_value_wider_than_depth_is_rejected(self):
        with pytest.raises(ValueError, match="too wide"):
            ShardRouter.from_spec((((2, 1),), ((1, 1),)))

    def test_zero_shards_is_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter.from_spec(())

    def test_split_out_of_range(self):
        with pytest.raises(ValueError, match="no shard"):
            ShardRouter(2).split(2)

    def test_merge_out_of_range_or_self(self):
        router = ShardRouter(2)
        with pytest.raises(ValueError, match="itself"):
            router.merge(1, 1)
        with pytest.raises(ValueError, match="no shard"):
            router.merge(0, 5)

    def test_depth_ceiling(self):
        router = ShardRouter(1)
        for _ in range(MAX_DEPTH):
            router = router.split(0)
        with pytest.raises(ValueError, match="maximum prefix depth"):
            router.split(0)
