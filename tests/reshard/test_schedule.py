"""Unit pins for the ``EPOCH:split:SHARD`` / ``EPOCH:merge:A:B`` parser."""

import pytest

from repro.reshard import ReshardOp, parse_schedule
from repro.reshard.schedule import parse_op


def test_parse_split_and_merge():
    assert parse_op("1:split:0") == (1, ReshardOp.split(0))
    assert parse_op("4:merge:2:7") == (4, ReshardOp.merge(2, 7))
    assert parse_op(" 2:split:3 ") == (2, ReshardOp.split(3))


def test_schedule_groups_by_epoch_preserving_order():
    schedule = parse_schedule(["2:split:1", "1:split:0", "2:merge:0:1"])
    assert schedule == {
        1: [ReshardOp.split(0)],
        2: [ReshardOp.split(1), ReshardOp.merge(0, 1)],
    }
    assert schedule[2][0].kind == "split"  # per-epoch order kept


@pytest.mark.parametrize(
    "bad",
    [
        "split:0",  # no epoch
        "1:split",  # no shard
        "1:grow:0",  # unknown op
        "1:merge:2",  # merge needs two shards
        "x:split:0",  # non-numeric epoch
        "1:split:x",  # non-numeric shard
        "1:merge:3:3",  # self-merge
    ],
)
def test_malformed_specs_raise(bad):
    with pytest.raises(ValueError, match="bad reshard spec|itself"):
        parse_op(bad)


def test_epochs_are_one_based():
    with pytest.raises(ValueError, match="1-based"):
        parse_schedule(["0:split:0"])


def test_op_describe_round_trips_the_spec_tail():
    assert ReshardOp.split(3).describe() == "split:3"
    assert ReshardOp.merge(1, 4).describe() == "merge:1:4"
    with pytest.raises(ValueError, match="unknown reshard op kind"):
        ReshardOp(kind="grow")
