"""Tests for the from-scratch RSA blind-signature implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.blindsig import (
    blind,
    generate_keypair,
    generate_prime,
    is_probable_prime,
    unblind,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256, seed=0)


class TestMillerRabin:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_probable_prime(p), p

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 15, 91, 561, 1105, 7917):  # includes Carmichael 561, 1105
            assert not is_probable_prime(c), c

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_large_known_composite(self):
        assert not is_probable_prime((2**127 - 1) * (2**89 - 1))

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_trial_division(self, n):
        by_trial = n > 1 and all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_probable_prime(n) == by_trial


class TestPrimeGeneration:
    def test_bit_length_exact(self):
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng_seed=1)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic(self):
        assert generate_prime(128, rng_seed=5) == generate_prime(128, rng_seed=5)

    def test_seed_varies(self):
        assert generate_prime(128, rng_seed=1) != generate_prime(128, rng_seed=2)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4, rng_seed=0)


class TestKeypair:
    def test_modulus_is_product_of_two_primes(self, keypair):
        # e*d == 1 mod phi is implied by a successful sign/verify round trip;
        # here check modulus size.
        assert keypair.public.n.bit_length() >= 511

    def test_sign_raw_range_check(self, keypair):
        with pytest.raises(ValueError):
            keypair.sign_raw(-1)
        with pytest.raises(ValueError):
            keypair.sign_raw(keypair.public.n)

    def test_direct_signature_roundtrip(self, keypair):
        message = b"hello"
        h = keypair.public.hash_to_group(message)
        signature = keypair.sign_raw(h)
        assert keypair.public.verify(message, signature)

    def test_verify_rejects_wrong_message(self, keypair):
        h = keypair.public.hash_to_group(b"a")
        signature = keypair.sign_raw(h)
        assert not keypair.public.verify(b"b", signature)

    def test_verify_rejects_out_of_range_signature(self, keypair):
        assert not keypair.public.verify(b"a", 0)
        assert not keypair.public.verify(b"a", keypair.public.n + 1)


class TestBlindSignatures:
    def test_roundtrip(self, keypair):
        message = b"token-42"
        blinding = blind(keypair.public, message, seed=7)
        blind_sig = keypair.sign_raw(blinding.blinded)
        signature = unblind(keypair.public, blinding, blind_sig)
        assert keypair.public.verify(message, signature)

    def test_signer_never_sees_message_hash(self, keypair):
        """Blindness: the value the signer exponentiates differs from H(m)."""
        message = b"token-43"
        blinding = blind(keypair.public, message, seed=8)
        assert blinding.blinded != keypair.public.hash_to_group(message)

    def test_different_blinding_seeds_give_different_blinds(self, keypair):
        """The same message blinds to unrelated values — issuance requests
        for identical tokens are unlinkable to each other too."""
        message = b"token-44"
        a = blind(keypair.public, message, seed=1)
        b = blind(keypair.public, message, seed=2)
        assert a.blinded != b.blinded

    def test_unblinded_signature_equals_direct_signature(self, keypair):
        """Correctness of the algebra: unblind(sign(blind(m))) == sign(m)."""
        message = b"token-45"
        blinding = blind(keypair.public, message, seed=3)
        via_blind = unblind(keypair.public, blinding, keypair.sign_raw(blinding.blinded))
        direct = keypair.sign_raw(keypair.public.hash_to_group(message))
        assert via_blind == direct

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, message, seed):
        keypair = generate_keypair(bits=128, seed=9)
        blinding = blind(keypair.public, message, seed=seed)
        signature = unblind(keypair.public, blinding, keypair.sign_raw(blinding.blinded))
        assert keypair.public.verify(message, signature)

    def test_hash_to_group_in_range(self, keypair):
        for message in (b"", b"x", b"y" * 1000):
            h = keypair.public.hash_to_group(message)
            assert 0 <= h < keypair.public.n
