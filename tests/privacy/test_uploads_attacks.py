"""Tests for the upload scheduler and the de-anonymization attack suite."""

import pytest

from repro.privacy.anonymity import batching_network, immediate_network
from repro.privacy.attacks import (
    corruption_attack,
    expected_guesses_for_collision,
    linkage_attack,
    timing_attack,
)
from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import UploadScheduler, hardened_config, naive_config
from repro.sensing.resolution import InteractionType, ObservedInteraction
from repro.util.clock import DAY, HOUR


def observation(entity="e1", t=1000.0, duration=1800.0, travel=2.0):
    return ObservedInteraction(
        entity_id=entity,
        interaction_type=InteractionType.VISIT,
        time=t,
        duration=duration,
        travel_km=travel,
    )


class TestUploadScheduler:
    def test_history_id_matches_identity(self):
        identity = DeviceIdentity.create("dev", seed=0)
        scheduler = UploadScheduler(identity, hardened_config())
        upload = scheduler.build_upload(observation())
        assert upload.history_id == identity.history_id("e1")

    def test_event_time_quantized(self):
        identity = DeviceIdentity.create("dev", seed=0)
        scheduler = UploadScheduler(identity, hardened_config())
        upload = scheduler.build_upload(observation(t=1.6 * DAY))
        assert upload.event_time == 1 * DAY

    def test_naive_config_preserves_precision(self):
        identity = DeviceIdentity.create("dev", seed=0)
        scheduler = UploadScheduler(identity, naive_config())
        upload = scheduler.build_upload(observation(t=12345.9))
        assert upload.event_time == 12345.0

    def test_hardened_tags_are_fresh_per_upload(self):
        identity = DeviceIdentity.create("dev", seed=0)
        scheduler = UploadScheduler(identity, hardened_config(), seed=1)
        network = batching_network(seed=0)
        scheduler.submit_all([observation(t=1.0), observation(t=2.0)], network)
        deliveries = network.deliveries_until(10 * DAY)
        tags = {d.channel_tag for d in deliveries}
        assert len(tags) == 2

    def test_naive_tag_is_stable(self):
        identity = DeviceIdentity.create("dev", seed=0)
        scheduler = UploadScheduler(identity, naive_config(), seed=1)
        network = immediate_network()
        scheduler.submit_all([observation(t=1.0), observation(t=2.0)], network)
        deliveries = network.deliveries_until(10 * DAY)
        assert len({d.channel_tag for d in deliveries}) == 1

    def test_async_submission_delayed(self):
        identity = DeviceIdentity.create("dev", seed=0)
        scheduler = UploadScheduler(identity, hardened_config(), seed=2)
        network = immediate_network()
        scheduler.submit_all([observation(t=0.0, duration=600.0)], network)
        # With up to a day of delay, nothing should be guaranteed right away...
        early = network.deliveries_until(601.0)
        late = network.deliveries_until(2 * DAY)
        assert len(early) + len(late) == 1


def _two_device_deliveries(config, network):
    """Two devices, two entities each; returns deliveries + ground truth."""
    true_owner = {}
    activity = {}
    for index, device in enumerate(("alice", "bob")):
        identity = DeviceIdentity.create(device, seed=index)
        scheduler = UploadScheduler(identity, config, seed=index)
        observations = [
            observation(entity="e1", t=1000.0 + index * 5000.0),
            observation(entity="e2", t=40_000.0 + index * 5000.0),
        ]
        scheduler.submit_all(observations, network)
        for obs in observations:
            true_owner[identity.history_id(obs.entity_id)] = device
        activity[device] = [obs.time + obs.duration for obs in observations]
    return network.deliveries_until(30 * DAY), true_owner, activity


class TestLinkageAttack:
    def test_defeats_naive_channels(self):
        deliveries, true_owner, _ = _two_device_deliveries(
            naive_config(), immediate_network()
        )
        report = linkage_attack(deliveries, true_owner)
        assert report.recall == 1.0
        assert report.precision == 1.0

    def test_blind_against_fresh_channels(self):
        deliveries, true_owner, _ = _two_device_deliveries(
            hardened_config(), batching_network(seed=3)
        )
        report = linkage_attack(deliveries, true_owner)
        assert report.recall == 0.0

    def test_counts_consistent(self):
        deliveries, true_owner, _ = _two_device_deliveries(
            naive_config(), immediate_network()
        )
        report = linkage_attack(deliveries, true_owner)
        assert report.n_histories == 4
        assert report.n_same_user_pairs == 2


class TestTimingAttack:
    def test_defeats_immediate_uploads(self):
        deliveries, true_owner, activity = _two_device_deliveries(
            naive_config(), immediate_network()
        )
        report = timing_attack(deliveries, activity, true_owner)
        assert report.accuracy == 1.0

    def test_blind_against_batched_async_uploads(self):
        deliveries, true_owner, activity = _two_device_deliveries(
            hardened_config(), batching_network(batch_interval=6 * HOUR, seed=4)
        )
        report = timing_attack(deliveries, activity, true_owner)
        assert report.accuracy < 0.5

    def test_random_baseline(self):
        deliveries, true_owner, activity = _two_device_deliveries(
            naive_config(), immediate_network()
        )
        report = timing_attack(deliveries, activity, true_owner)
        assert report.random_baseline == pytest.approx(0.5)


class TestCorruptionAttack:
    def test_guessing_never_collides(self):
        store = HistoryStore()
        identity = DeviceIdentity.create("victim", seed=9)
        store.append(
            InteractionUpload(
                history_id=identity.history_id("e1"),
                entity_id="e1",
                interaction_type="visit",
                event_time=0.0,
                duration=100.0,
                travel_km=0.0,
            ),
            arrival_time=0.0,
        )
        report = corruption_attack(store, target_entity="e1", attempts=2000, seed=1)
        assert report.collisions == 0
        assert report.analytic_success_probability < 1e-60

    def test_attack_creates_only_junk_histories(self):
        """Guessed identifiers miss; the attacker only litters new histories,
        which the fraud layer will see as tiny and uninfluential."""
        store = HistoryStore()
        before = store.n_histories
        corruption_attack(store, target_entity="e1", attempts=50, seed=2)
        assert store.n_histories == before + 50

    def test_expected_guesses_astronomical(self):
        assert expected_guesses_for_collision(10**9) > 1e60
        assert expected_guesses_for_collision(0) == float("inf")

    def test_token_budget_bounds_injection(self):
        """With a token-checking store, the attacker lands at most
        ``len(tokens)`` junk records regardless of attempts."""
        from repro.privacy.tokens import TokenIssuer, TokenRedeemer, TokenWallet

        issuer = TokenIssuer(quota_per_day=3, key_seed=11, key_bits=256)
        store = HistoryStore(redeemer=TokenRedeemer(issuer.public_key))
        wallet = TokenWallet(device_id="attacker", seed=5)
        blinded = wallet.mint(issuer.public_key, 3)
        wallet.accept_signatures(issuer.public_key, issuer.issue("attacker", blinded, now=0.0))
        tokens = [wallet.spend() for _ in range(3)]
        corruption_attack(store, target_entity="e1", attempts=100, seed=3, tokens=tokens)
        assert store.n_records == 3
        assert store.rejected_uploads == 97
