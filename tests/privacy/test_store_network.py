"""Tests for the history store and the anonymity network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.anonymity import AnonymityNetwork, batching_network, immediate_network
from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.privacy.tokens import TokenIssuer, TokenRedeemer, TokenWallet
from repro.util.clock import HOUR


def upload(history_id="h1", entity_id="e1", t=0.0, duration=600.0, travel=1.0):
    return InteractionUpload(
        history_id=history_id,
        entity_id=entity_id,
        interaction_type="visit",
        event_time=t,
        duration=duration,
        travel_km=travel,
    )


class TestHistoryStore:
    def test_append_creates_history(self):
        store = HistoryStore()
        assert store.append(upload(), arrival_time=1.0)
        assert store.n_histories == 1
        assert store.n_records == 1

    def test_records_accumulate_under_same_id(self):
        store = HistoryStore()
        store.append(upload(t=0.0), arrival_time=1.0)
        store.append(upload(t=100.0), arrival_time=2.0)
        history = store.histories_for_entity("e1")[0]
        assert history.n_interactions == 2

    def test_no_retrieval_by_id_api(self):
        """The update-only property: the store exposes no get(history_id)."""
        store = HistoryStore()
        assert not hasattr(store, "get")
        assert not hasattr(store, "history")

    def test_identifier_bound_to_entity(self):
        """A history id created for one entity cannot be reused for another
        (a corruption attempt the server can detect for free)."""
        store = HistoryStore()
        assert store.append(upload(history_id="h", entity_id="e1"), arrival_time=0.0)
        assert not store.append(upload(history_id="h", entity_id="e2"), arrival_time=1.0)
        assert store.rejected_uploads == 1

    def test_histories_partitioned_by_entity(self):
        store = HistoryStore()
        store.append(upload(history_id="h1", entity_id="e1"), arrival_time=0.0)
        store.append(upload(history_id="h2", entity_id="e2"), arrival_time=0.0)
        assert len(store.histories_for_entity("e1")) == 1
        assert len(store.histories_for_entity("e2")) == 1
        assert store.histories_for_entity("missing") == []

    def test_gap_computation(self):
        store = HistoryStore()
        for t in (0.0, 3600.0, 7200.0):
            store.append(upload(t=t), arrival_time=t)
        history = store.histories_for_entity("e1")[0]
        assert history.gaps() == [3600.0, 3600.0]

    def test_token_enforcement(self):
        issuer = TokenIssuer(quota_per_day=5, key_seed=6, key_bits=256)
        redeemer = TokenRedeemer(issuer.public_key)
        store = HistoryStore(redeemer=redeemer)
        # No token -> rejected.
        assert not store.append(upload(), arrival_time=0.0)
        # Valid token -> accepted exactly once.
        wallet = TokenWallet(device_id="d", seed=0)
        blinded = wallet.mint(issuer.public_key, 2)
        wallet.accept_signatures(issuer.public_key, issuer.issue("d", blinded, now=0.0))
        token = wallet.spend()
        assert store.append(upload(t=1.0), arrival_time=1.0, token=token)
        # Replay -> rejected.
        assert not store.append(upload(t=2.0), arrival_time=2.0, token=token)
        assert store.rejected_uploads == 2

    def test_upload_validation(self):
        with pytest.raises(ValueError):
            upload(duration=-1.0)
        with pytest.raises(ValueError):
            upload(travel=-1.0)


class TestImmediateNetwork:
    def test_preserves_order_and_timing(self):
        network = immediate_network()
        network.submit("a", submit_time=10.0, channel_tag="t1")
        network.submit("b", submit_time=20.0, channel_tag="t2")
        deliveries = network.deliveries_until(100.0)
        assert [d.payload for d in deliveries] == ["a", "b"]
        assert deliveries[0].arrival_time == pytest.approx(12.0)

    def test_not_yet_due_messages_held(self):
        network = immediate_network()
        network.submit("a", submit_time=50.0, channel_tag="t")
        assert network.deliveries_until(10.0) == []
        assert network.n_pending == 1
        assert len(network.deliveries_until(100.0)) == 1


class TestBatchingNetwork:
    def test_arrivals_quantized_to_boundaries(self):
        network = batching_network(batch_interval=6 * HOUR, seed=0)
        network.submit("a", submit_time=1.0, channel_tag="t1")
        network.submit("b", submit_time=2 * HOUR, channel_tag="t2")
        deliveries = network.deliveries_until(7 * HOUR)
        assert len(deliveries) == 2
        assert {d.arrival_time for d in deliveries} == {6 * HOUR}

    def test_messages_in_same_batch_shuffled(self):
        """Across many batches, the within-batch order must not always be
        submission order (otherwise order leaks timing)."""
        permuted = False
        for seed in range(20):
            network = batching_network(batch_interval=1 * HOUR, seed=seed)
            for index in range(6):
                network.submit(index, submit_time=float(index), channel_tag="t")
            deliveries = network.deliveries_until(2 * HOUR)
            if [d.payload for d in deliveries] != sorted(d.payload for d in deliveries):
                permuted = True
                break
        assert permuted

    def test_nothing_lost(self):
        network = batching_network(batch_interval=1 * HOUR, seed=1)
        for index in range(57):
            network.submit(index, submit_time=float(index * 600), channel_tag="t")
        deliveries = network.deliveries_until(12 * HOUR)
        assert sorted(d.payload for d in deliveries) == list(range(57))

    def test_message_never_delivered_before_submission(self):
        network = batching_network(batch_interval=1 * HOUR, seed=2)
        network.submit("late", submit_time=90 * 60.0, channel_tag="t")
        first_window = network.deliveries_until(1 * HOUR)
        assert first_window == []
        second_window = network.deliveries_until(2 * HOUR)
        assert [d.payload for d in second_window] == ["late"]

    @given(
        st.lists(st.floats(min_value=0, max_value=10 * HOUR), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_arrival_at_or_after_submission(self, submit_times, seed):
        network = batching_network(batch_interval=1 * HOUR, seed=seed)
        for index, t in enumerate(submit_times):
            network.submit(index, submit_time=t, channel_tag="t")
        deliveries = network.deliveries_until(20 * HOUR)
        assert len(deliveries) == len(submit_times)
        by_payload = {d.payload: d.arrival_time for d in deliveries}
        for index, t in enumerate(submit_times):
            assert by_payload[index] >= t

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AnonymityNetwork(batch_interval=-1)
