"""Tests for token issuance/redemption and record identifiers."""

import pytest

from repro.privacy.identifiers import DeviceIdentity, generate_user_secret
from repro.privacy.tokens import (
    QuotaExceeded,
    TokenIssuer,
    TokenRedeemer,
    TokenWallet,
    UploadToken,
)
from repro.util.clock import DAY, HOUR


@pytest.fixture(scope="module")
def issuer():
    return TokenIssuer(quota_per_day=10, key_seed=1, key_bits=256)


def acquire_tokens(issuer, wallet, count, now=0.0):
    blinded = wallet.mint(issuer.public_key, count)
    signatures = issuer.issue(wallet.device_id, blinded, now=now)
    wallet.accept_signatures(issuer.public_key, signatures)


class TestIssuanceAndRedemption:
    def test_full_cycle(self, issuer):
        wallet = TokenWallet(device_id="dev-1", seed=1)
        acquire_tokens(issuer, wallet, 3)
        redeemer = TokenRedeemer(issuer.public_key)
        for _ in range(3):
            assert redeemer.redeem(wallet.spend())
        assert redeemer.n_redeemed == 3

    def test_double_spend_rejected(self, issuer):
        wallet = TokenWallet(device_id="dev-2", seed=2)
        acquire_tokens(issuer, wallet, 1)
        token = wallet.spend()
        redeemer = TokenRedeemer(issuer.public_key)
        assert redeemer.redeem(token)
        assert not redeemer.redeem(token)

    def test_forged_token_rejected(self, issuer):
        redeemer = TokenRedeemer(issuer.public_key)
        fake = UploadToken(token_id=b"forged", signature=12345)
        assert not redeemer.redeem(fake)

    def test_token_ids_unique(self, issuer):
        wallet = TokenWallet(device_id="dev-3", seed=3)
        acquire_tokens(issuer, wallet, 5)
        ids = {wallet.spend().token_id for _ in range(5)}
        assert len(ids) == 5

    def test_empty_wallet_raises(self):
        wallet = TokenWallet(device_id="dev-4", seed=4)
        with pytest.raises(ValueError):
            wallet.spend()


class TestQuota:
    def test_quota_enforced(self):
        issuer = TokenIssuer(quota_per_day=4, key_seed=2, key_bits=256)
        wallet = TokenWallet(device_id="dev-q", seed=5)
        acquire_tokens(issuer, wallet, 4, now=0.0)
        with pytest.raises(QuotaExceeded):
            blinded = wallet.mint(issuer.public_key, 1)
            issuer.issue("dev-q", blinded, now=1 * HOUR)

    def test_quota_resets_after_a_day(self):
        issuer = TokenIssuer(quota_per_day=4, key_seed=3, key_bits=256)
        wallet = TokenWallet(device_id="dev-r", seed=6)
        acquire_tokens(issuer, wallet, 4, now=0.0)
        acquire_tokens(issuer, wallet, 4, now=1.1 * DAY)
        assert wallet.balance == 8

    def test_quota_is_per_device(self):
        issuer = TokenIssuer(quota_per_day=4, key_seed=4, key_bits=256)
        a = TokenWallet(device_id="dev-a", seed=7)
        b = TokenWallet(device_id="dev-b", seed=8)
        acquire_tokens(issuer, a, 4)
        acquire_tokens(issuer, b, 4)  # unaffected by a's usage
        assert a.balance == b.balance == 4

    def test_remaining_quota(self):
        issuer = TokenIssuer(quota_per_day=10, key_seed=5, key_bits=256)
        wallet = TokenWallet(device_id="dev-c", seed=9)
        assert issuer.remaining_quota("dev-c", now=0.0) == 10
        acquire_tokens(issuer, wallet, 3)
        assert issuer.remaining_quota("dev-c", now=1.0) == 7


class TestBlindnessAtIssuance:
    def test_issuer_cannot_match_token_to_request(self, issuer):
        """The unlinkability property rate-limiting relies on: the blinded
        values the issuer saw share nothing with the redeemed token ids."""
        wallet = TokenWallet(device_id="dev-u", seed=10)
        blinded = wallet.mint(issuer.public_key, 2)
        signatures = issuer.issue("dev-u", blinded, now=0.0)
        wallet.accept_signatures(issuer.public_key, signatures)
        token = wallet.spend()
        token_hash = issuer.public_key.hash_to_group(token.token_id)
        assert token_hash not in blinded

    def test_wallet_rejects_bad_issuer_signature(self, issuer):
        wallet = TokenWallet(device_id="dev-v", seed=11)
        wallet.mint(issuer.public_key, 1)
        with pytest.raises(ValueError):
            wallet.accept_signatures(issuer.public_key, [42])

    def test_wallet_rejects_surplus_signatures(self, issuer):
        wallet = TokenWallet(device_id="dev-w", seed=12)
        with pytest.raises(ValueError):
            wallet.accept_signatures(issuer.public_key, [1, 2, 3])


class TestDeviceIdentity:
    def test_secret_is_256_bits_of_entropy(self):
        secret = generate_user_secret(0)
        assert 0 <= secret < 2**256

    def test_secrets_differ_across_seeds(self):
        assert generate_user_secret(1) != generate_user_secret(2)

    def test_history_id_stable(self):
        identity = DeviceIdentity.create("dev-1", seed=3)
        assert identity.history_id("e1") == identity.history_id("e1")

    def test_history_ids_unlinkable_across_entities(self):
        identity = DeviceIdentity.create("dev-1", seed=3)
        a = identity.history_id("dentist-1")
        b = identity.history_id("dentist-2")
        assert a != b

    def test_history_ids_differ_across_devices(self):
        a = DeviceIdentity.create("dev-1", seed=1).history_id("e")
        b = DeviceIdentity.create("dev-2", seed=2).history_id("e")
        assert a != b

    def test_same_entity_same_secret_collides_correctly(self):
        """Two devices with the same secret address the same history —
        this is what lets a user migrate devices by copying Ru."""
        a = DeviceIdentity(device_id="old-phone", secret=777)
        b = DeviceIdentity(device_id="new-phone", secret=777)
        assert a.history_id("e") == b.history_id("e")
