"""Tests for history compaction (bounded per-history raw storage)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.util.clock import DAY


def upload(t, history_id="h1", entity_id="e1", duration=600.0, travel=1.0):
    return InteractionUpload(
        history_id=history_id,
        entity_id=entity_id,
        interaction_type="visit",
        event_time=t,
        duration=duration,
        travel_km=travel,
    )


class TestCompaction:
    def test_raw_records_bounded(self):
        store = HistoryStore(max_records_per_history=5)
        for day in range(20):
            store.append(upload(day * DAY), arrival_time=day * DAY)
        [history] = store.all_histories()
        assert history.n_raw_records == 5
        assert history.n_interactions == 20
        assert store.folded_records == 15

    def test_oldest_records_fold_first(self):
        store = HistoryStore(max_records_per_history=3)
        for day in range(10):
            store.append(upload(day * DAY), arrival_time=day * DAY)
        [history] = store.all_histories()
        raw_times = sorted(history.event_times())
        assert raw_times == [7 * DAY, 8 * DAY, 9 * DAY]
        assert history.folded.earliest_event_time == 0.0
        assert history.folded.latest_event_time == 6 * DAY

    def test_first_event_time_spans_folded_past(self):
        store = HistoryStore(max_records_per_history=2)
        for day in (3, 1, 7, 9):
            store.append(upload(day * DAY), arrival_time=day * DAY)
        [history] = store.all_histories()
        assert history.first_event_time == 1 * DAY

    def test_folded_sums_accumulate(self):
        store = HistoryStore(max_records_per_history=2)
        for day in range(4):
            store.append(upload(day * DAY, duration=100.0, travel=2.0), arrival_time=0.0)
        [history] = store.all_histories()
        assert history.folded.n == 2
        assert history.folded.duration_sum == pytest.approx(200.0)
        assert history.folded.travel_sum == pytest.approx(4.0)

    def test_unbounded_store_never_folds(self):
        store = HistoryStore()
        for day in range(50):
            store.append(upload(day * DAY), arrival_time=0.0)
        [history] = store.all_histories()
        assert history.folded is None
        assert store.folded_records == 0

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            HistoryStore(max_records_per_history=1)

    def test_influence_weight_sees_folded_count(self):
        """A mature history compacted to a 3-record window must still carry
        a full influence vote — compaction must not demote loyal customers
        to sybil weight."""
        from repro.core.aggregation import influence_weight

        store = HistoryStore(max_records_per_history=3)
        for day in range(12):
            store.append(upload(day * 30 * DAY), arrival_time=0.0)
        [history] = store.all_histories()
        assert influence_weight(history.n_interactions) == 1.0

    def test_visits_histogram_sees_folded_count(self):
        from repro.core.visualization import visits_per_user_histogram

        store = HistoryStore(max_records_per_history=2)
        for day in range(12):
            store.append(upload(day * 30 * DAY), arrival_time=0.0)
        histogram = visits_per_user_histogram("e1", store.all_histories())
        assert histogram.counts[-1] == 1  # the 11+ bucket

    @given(
        st.integers(min_value=2, max_value=10),
        st.lists(st.floats(min_value=0, max_value=365), min_size=1, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_count_conservation_property(self, bound, days):
        """Compaction never loses or invents interactions."""
        store = HistoryStore(max_records_per_history=bound)
        for day in days:
            store.append(upload(day * DAY), arrival_time=day * DAY)
        [history] = store.all_histories()
        assert history.n_interactions == len(days)
        assert history.n_raw_records <= bound
        assert history.n_raw_records + (history.folded.n if history.folded else 0) == len(days)
