"""End-to-end integration: world → sensing → client → network → server.

These tests exercise the complete Figure 2 architecture on one shared
simulation and assert the paper's qualitative claims hold through the whole
stack — not just in isolated modules.
"""

import numpy as np
import pytest

from repro.core.discovery import Query
from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline, train_classifier
from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def outcome():
    town = build_town(TownConfig(n_users=80), seed=31)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=150), seed=31
    ).run()
    config = PipelineConfig(horizon_days=150.0, seed=31)
    return town, result, run_full_pipeline(town, result, config)


class TestCoverage:
    def test_opinions_multiply(self, outcome):
        """A2 / the paper's thesis: implicit inference dramatically raises
        the number of opinions available per entity."""
        _, _, out = outcome
        assert out.coverage_gain() > 3.0

    def test_inferred_opinions_present(self, outcome):
        _, _, out = outcome
        assert out.server.n_opinions > out.server.n_explicit_reviews

    def test_most_inferences_reach_entities_with_no_reviews(self, outcome):
        """The whole point: entities nobody reviews still accumulate opinions."""
        _, _, out = outcome
        helped = [
            entity_id
            for entity_id, total in out.total_per_entity.items()
            if out.explicit_per_entity.get(entity_id, 0) == 0 and total > 0
        ]
        assert len(helped) > 10


class TestInferenceQuality:
    def test_inference_error_bounded(self, outcome):
        """Inferred ratings are noisier than explicit ones but usable —
        within ~1 star of ground truth on average."""
        _, _, out = outcome
        assert out.inference_errors, "pipeline should produce scoreable inferences"
        assert out.mean_absolute_error < 1.2

    def test_explicit_reviews_more_accurate_than_inference(self, outcome):
        """Sanity direction: implicit inference cannot beat the user's own
        stated rating."""
        _, _, out = outcome
        assert np.mean(out.review_errors) < out.mean_absolute_error

    def test_abstention_is_selective_not_total(self, outcome):
        _, _, out = outcome
        assert 0.05 < out.abstention_rate < 0.95


class TestPrivacyProperties:
    def test_server_never_sees_user_ids_in_histories(self, outcome):
        """No history identifier equals or embeds a user id."""
        town, _, out = outcome
        user_ids = {user.user_id for user in town.users}
        for history in out.server.history_store.all_histories():
            assert history.history_id not in user_ids
            assert not any(uid in history.history_id for uid in user_ids)

    def test_every_stored_record_was_token_checked(self, outcome):
        _, _, out = outcome
        assert out.server.rejected_envelopes == 0  # all clients played by the rules
        # and the number of stored records is bounded by issued tokens:
        # each record spent exactly one token.
        n_stored = out.server.history_store.n_records + out.server.n_opinions
        assert n_stored == out.server._redeemer.n_redeemed

    def test_histories_per_user_entity_pair(self, outcome):
        """Each (client, entity) pair maps to exactly one history."""
        _, _, out = outcome
        seen: set[str] = set()
        for user_id, client in out.clients.items():
            for entity_id in client.snapshot.entity_ids():
                history_id = client.identity.history_id(entity_id)
                assert history_id not in seen
                seen.add(history_id)


class TestSearchIntegration:
    def test_search_surfaces_inferred_summaries(self, outcome):
        town, _, out = outcome
        restaurants = [e for e in town.entities if e.kind.label == "restaurant"]
        center = town.grid.zones[len(town.grid.zones) // 2].center
        response = out.server.search(
            Query(category=restaurants[0].category, near=center, radius_km=15.0)
        )
        assert response.n_results > 0
        assert any(r.summary.n_inferred_opinions > 0 for r in response.results)

    def test_search_renders(self, outcome):
        town, _, out = outcome
        response = out.server.search(
            Query(category="chinese", near=town.grid.zones[0].center, radius_km=20.0)
        )
        assert "chinese" in response.render()


class TestTrainClassifierIntegration:
    def test_training_uses_posting_minority(self, outcome):
        town, result, _ = outcome
        classifier = train_classifier(town, result, 150 * DAY, seed=31)
        assert classifier.is_fitted
        weights = classifier.feature_weights()
        assert len(weights) > 10


class TestCorrectionPropagation:
    def test_user_correction_reaches_server(self, outcome):
        """Section 5: the user corrects an inference; the client re-uploads
        and the server's latest-wins opinion store reflects it."""
        from repro.privacy.anonymity import batching_network
        from repro.util.clock import DAY

        town, _, out = outcome
        server = out.server
        client = next(
            c for c in out.clients.values()
            if any(e.effective_rating is not None for e in c.transparency.audit())
        )
        entry = next(
            e for e in client.transparency.audit() if e.effective_rating is not None
        )
        history_id = client.identity.history_id(entry.entity_id)
        before = server._opinions[history_id].rating

        corrected = 1.0 if before > 2.5 else 5.0
        client.transparency.correct(entry.entity_id, corrected)
        # The client re-stages on its next observation cycle; simulate by
        # re-staging directly (interactions unchanged).
        client._stage_envelopes({})
        network = batching_network(seed=99)
        client.sync(network, server.issuer, now=200 * DAY)
        server.receive_all(network.deliveries_until(203 * DAY))

        assert server._opinions[history_id].rating == corrected
        server.run_maintenance()
        summary = server.summary(entry.entity_id)
        assert summary is not None
