"""Cross-cutting property tests on the system's core invariants.

Each property here is one the whole design leans on; hypothesis drives the
inputs so the invariants hold off the happy path too.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    OpinionUpload,
    deflate_groups,
    influence_weight,
    rating_histogram,
    summarize_entity,
)
from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.util.clock import DAY
from repro.util.hashing import record_id


ratings = st.lists(st.floats(min_value=0.0, max_value=5.0), max_size=50)

record_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # user index
        st.integers(min_value=0, max_value=3),  # entity index
        st.floats(min_value=0, max_value=365),  # event day
        st.floats(min_value=60, max_value=7200),  # duration
        st.floats(min_value=0, max_value=15),  # travel
    ),
    min_size=1,
    max_size=80,
)


def build_store(specs, max_records=None):
    store = HistoryStore(max_records_per_history=max_records)
    secrets = [1000 + i for i in range(10)]
    for user, entity, day, duration, travel in specs:
        entity_id = f"entity-{entity}"
        store.append(
            InteractionUpload(
                history_id=record_id(secrets[user], entity_id),
                entity_id=entity_id,
                interaction_type="visit",
                event_time=day * DAY,
                duration=duration,
                travel_km=travel,
            ),
            arrival_time=day * DAY,
        )
    return store


class TestHistogramInvariants:
    @given(ratings)
    @settings(max_examples=60, deadline=None)
    def test_histogram_conserves_count(self, values):
        assert sum(rating_histogram(values)) == len(values)

    @given(ratings)
    @settings(max_examples=60, deadline=None)
    def test_histogram_non_negative(self, values):
        assert all(count >= 0 for count in rating_histogram(values))


class TestStoreInvariants:
    @given(record_specs)
    @settings(max_examples=40, deadline=None)
    def test_record_conservation(self, specs):
        """Every accepted upload is stored exactly once, partitioned by
        entity, regardless of arrival order."""
        store = build_store(specs)
        assert store.n_records == len(specs)
        per_entity = sum(
            history.n_interactions
            for entity_id in store.entity_ids()
            for history in store.histories_for_entity(entity_id)
        )
        assert per_entity == len(specs)

    @given(record_specs, st.integers(min_value=2, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_compaction_preserves_logical_counts(self, specs, bound):
        bounded = build_store(specs, max_records=bound)
        unbounded = build_store(specs)
        assert bounded.n_records == unbounded.n_records
        assert bounded.n_raw_records <= bound * bounded.n_histories

    @given(record_specs)
    @settings(max_examples=40, deadline=None)
    def test_histories_unlinkable_identifiers(self, specs):
        """No two distinct (user, entity) pairs collide, and identifiers
        leak no entity or user substring."""
        store = build_store(specs)
        ids = [h.history_id for h in store.all_histories()]
        assert len(ids) == len(set(ids))
        for history in store.all_histories():
            assert "entity" not in history.history_id
            assert len(history.history_id) == 64


class TestDeflationInvariants:
    @given(record_specs)
    @settings(max_examples=40, deadline=None)
    def test_deflated_between_one_and_raw(self, specs):
        store = build_store(specs)
        for entity_id in store.entity_ids():
            histories = store.histories_for_entity(entity_id)
            effective, raw = deflate_groups(histories)
            assert raw == sum(h.n_raw_records for h in histories)
            if raw > 0:
                assert 1 <= effective <= raw


class TestInfluenceInvariants:
    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_weight_bounded_and_monotone(self, n, maturity):
        weight = influence_weight(n, maturity)
        assert 0.0 <= weight <= 1.0
        assert influence_weight(n + 1, maturity) >= weight

    @given(record_specs, ratings)
    @settings(max_examples=30, deadline=None)
    def test_summary_means_bounded(self, specs, explicit):
        store = build_store(specs)
        entity_id = store.entity_ids()[0]
        histories = store.histories_for_entity(entity_id)
        opinions = [
            OpinionUpload(history_id=h.history_id, entity_id=entity_id, rating=3.3)
            for h in histories
        ]
        summary = summarize_entity(entity_id, histories, opinions, list(explicit))
        if summary.inferred_mean is not None:
            assert 0.0 <= summary.inferred_mean <= 5.0
        if summary.combined_mean is not None:
            assert 0.0 <= summary.combined_mean <= 5.0
        assert summary.inferred_weight <= summary.n_inferred_opinions + 1e-9


class TestServerInvariants:
    @given(record_specs)
    @settings(max_examples=15, deadline=None)
    def test_maintenance_conserves_or_discards(self, specs):
        """After maintenance, every history is either in a summary's
        population or was explicitly rejected — none vanish silently."""
        from repro.fraud.detector import FraudDetector
        from repro.fraud.profiles import build_profiles

        store = build_store(specs)
        kinds = {f"entity-{i}": "restaurant" for i in range(4)}
        profiles = build_profiles(store, kinds)
        detector = FraudDetector(profiles, kinds)
        accepted, rejected = detector.filter_store(store)
        assert len(accepted) + len(rejected) == store.n_histories
