"""Failure injection: the pipeline under message loss and garbage input.

The anonymous upload channel is fire-and-forget by design (an ack would
link the upload to the device), so losses are permanent.  These tests pin
down graceful degradation: no crashes, no corrupted state, coverage that
shrinks roughly in proportion to the loss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import Envelope
from repro.privacy.anonymity import AnonymityNetwork, Delivery
from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline
from repro.service.server import RSPServer
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=40), seed=61)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=90), seed=61
    ).run()
    return town, result


class TestLossyNetwork:
    def test_drop_rate_validation(self):
        with pytest.raises(ValueError):
            AnonymityNetwork(drop_rate=1.5)

    def test_losses_counted_and_rest_delivered(self):
        network = AnonymityNetwork(batch_interval=3600.0, seed=3, drop_rate=0.5)
        for index in range(400):
            network.submit(index, submit_time=float(index), channel_tag="t")
        deliveries = network.deliveries_until(10_000.0)
        assert len(deliveries) + network.n_dropped == 400
        assert 100 < len(deliveries) < 300  # ~50% +/- noise

    def test_zero_drop_rate_loses_nothing(self):
        network = AnonymityNetwork(batch_interval=3600.0, seed=3, drop_rate=0.0)
        for index in range(50):
            network.submit(index, submit_time=float(index), channel_tag="t")
        assert len(network.deliveries_until(10_000.0)) == 50
        assert network.n_dropped == 0

    def test_pipeline_degrades_gracefully_under_loss(self, world):
        """30% message loss: the pipeline completes, stores are consistent,
        and coverage shrinks roughly proportionally."""
        town, result = world
        config = PipelineConfig(horizon_days=90.0, seed=61)

        clean = run_full_pipeline(town, result, config)

        import repro.orchestration.pipeline as pipeline_module
        original = pipeline_module.batching_network
        try:
            pipeline_module.batching_network = (
                lambda batch_interval, seed: AnonymityNetwork(
                    batch_interval=batch_interval, seed=seed, drop_rate=0.3
                )
            )
            lossy = run_full_pipeline(town, result, config)
        finally:
            pipeline_module.batching_network = original

        clean_records = clean.server.history_store.n_records
        lossy_records = lossy.server.history_store.n_records
        assert 0.5 * clean_records < lossy_records < 0.9 * clean_records
        # State stays consistent: every stored record was token-checked.
        stored = lossy.server.history_store.n_records + lossy.server.n_opinions
        assert stored == lossy.server._redeemer.n_redeemed
        # And the service still aggregates and searches.
        lossy.server.run_maintenance()


class TestGarbageIntake:
    @given(
        st.one_of(
            st.none(),
            st.integers(),
            st.text(max_size=30),
            st.binary(max_size=30),
            st.dictionaries(st.text(max_size=5), st.integers(), max_size=3),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_server_never_crashes_on_garbage_records(self, garbage):
        """Whatever arrives in an envelope, receive() returns False rather
        than raising — the intake is a hard trust boundary."""
        town = build_town(TownConfig(n_users=2), seed=62)
        server = RSPServer(
            catalog=town.entities, key_seed=62, key_bits=256, require_tokens=False
        )
        delivery = Delivery(
            payload=Envelope(record=garbage, token=None),
            arrival_time=0.0,
            channel_tag="t",
        )
        assert server.receive(delivery) is False
        assert server.rejected_envelopes >= 1

    def test_garbage_does_not_poison_maintenance(self):
        town = build_town(TownConfig(n_users=2), seed=63)
        server = RSPServer(
            catalog=town.entities, key_seed=63, key_bits=256, require_tokens=False
        )
        for garbage in (None, 42, "x", b"y", object()):
            server.receive(
                Delivery(
                    payload=Envelope(record=garbage, token=None),
                    arrival_time=0.0,
                    channel_tag="t",
                )
            )
        report = server.run_maintenance()
        assert report.n_histories == 0
