"""Integration: the full client pipeline under OS-enforced privacy.

Section 5's trust model applied to the real client code path: sensor data
enters only as tainted handles, resolution runs inside the OS sandbox, and
every envelope leaving the device passes the egress scanner.  The honest
client completes the whole flow; a malicious build is stopped at the first
exfiltration attempt.
"""

import pytest

from repro.client.app import RSPClient
from repro.client.os_broker import EgressViolation, OSPrivacyBroker
from repro.privacy.anonymity import batching_network
from repro.privacy.tokens import TokenIssuer
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.sensors import generate_trace
from repro.orchestration.pipeline import train_classifier
from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=51)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=90), seed=51
    ).run()
    horizon = 90 * DAY
    classifier = train_classifier(town, result, horizon, seed=51)
    return town, result, horizon, classifier


def busiest_user(result):
    counts = {}
    for event in result.events:
        counts[event.user_id] = counts.get(event.user_id, 0) + 1
    return max(counts, key=counts.get)


class TestOSEnforcedClient:
    def test_honest_client_full_flow_through_broker(self, world):
        """Read sensors -> sandboxed observe -> token-stamped egress, all
        under OS scanning, with zero violations."""
        town, result, horizon, classifier = world
        user_id = busiest_user(result)
        broker = OSPrivacyBroker(app_id="rsp-app")
        client = RSPClient(
            device_id=user_id, catalog=town.entities, classifier=classifier, seed=5
        )

        raw_trace = generate_trace(
            user_id, town, result, horizon, duty_cycled_policy(), seed=51
        )
        handle = broker.read_sensors(raw_trace, now=horizon)
        interactions = broker.process(
            handle,
            lambda trace: client.observe_trace(trace, now=horizon),
            now=horizon,
            label="observe_trace",
        )
        assert interactions

        issuer = TokenIssuer(quota_per_day=500, key_seed=51, key_bits=256)
        network = batching_network(seed=51)
        client.sync(network, issuer, now=horizon)
        deliveries = network.deliveries_until(horizon + 3 * DAY)
        assert deliveries
        for delivery in deliveries:
            released = broker.egress(delivery.payload, now=horizon)
            assert released is delivery.payload
        assert broker.blocked_egress_attempts == 0

    def test_malicious_build_blocked_at_egress(self, world):
        """A client build that bundles raw location into its telemetry is
        stopped by the OS, not by its own restraint."""
        town, result, horizon, _ = world
        user_id = busiest_user(result)
        broker = OSPrivacyBroker(app_id="evil-build")
        raw_trace = generate_trace(
            user_id, town, result, horizon, duty_cycled_policy(), seed=51
        )
        handle = broker.read_sensors(raw_trace, now=horizon)

        with pytest.raises(EgressViolation):
            broker.process(
                handle,
                lambda trace: {"telemetry": trace.location_samples},
                label="exfiltrating-processor",
            )
        with pytest.raises(EgressViolation):
            broker.egress({"debug-dump": raw_trace}, now=horizon)
        assert broker.blocked_egress_attempts == 1
        assert any(e.action == "egress_blocked" for e in broker.audit_log)
