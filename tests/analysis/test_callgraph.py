"""Call-graph edge cases: decorators, nesting, dispatch, import cycles."""

from repro.analysis.project import UNKNOWN

from tests.analysis.conftest import build_index


def targets_of(index, caller, line=None):
    out = set()
    for target, at_line in index.successors(caller):
        if line is None or at_line == line:
            out.add(target)
    return out


class TestDecoratedFunctions:
    def test_decorated_function_keeps_its_qualname_and_edges(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/deco.py": """
                    def cached(fn):
                        return fn

                    @cached
                    def compute(x):
                        return helper(x)

                    def helper(x):
                        return x + 1

                    def entry(x):
                        return compute(x)
                    """
            },
        )
        assert "repro.deco.compute" in index.functions
        assert index.functions["repro.deco.compute"].decorators == ("cached",)
        assert "repro.deco.compute" in targets_of(index, "repro.deco.entry")
        assert "repro.deco.helper" in targets_of(index, "repro.deco.compute")

    def test_call_inside_decorator_expression_is_an_edge(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/deco.py": """
                    def make_decorator(tag):
                        def wrap(fn):
                            return fn
                        return wrap

                    @make_decorator("hot")
                    def compute(x):
                        return x
                    """
            },
        )
        # The decorator call runs at import time: it belongs to the
        # module pseudo-function, not to ``compute``.
        assert "repro.deco.make_decorator" in targets_of(index, "repro.deco.<module>")


class TestNestedFunctionsAndLambdas:
    def test_nested_function_gets_locals_qualname(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/nest.py": """
                    def outer(xs):
                        def inner(x):
                            return x * 2
                        return [inner(x) for x in xs]
                    """
            },
        )
        assert "repro.nest.outer.<locals>.inner" in index.functions
        assert "repro.nest.outer.<locals>.inner" in targets_of(index, "repro.nest.outer")

    def test_lambda_is_indexed_and_linked_from_enclosing_scope(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/lam.py": """
                    def ranked(rows):
                        key = lambda row: row.score
                        return sorted(rows, key=key)
                    """
            },
        )
        lambdas = [q for q in index.functions if "<lambda" in q]
        assert len(lambdas) == 1
        assert lambdas[0].startswith("repro.lam.ranked.<lambda ")
        # The reference flows into sorted(key=...), so the lambda is a
        # successor of ``ranked`` even though it is never called directly.
        assert lambdas[0] in targets_of(index, "repro.lam.ranked")


class TestMethodResolution:
    SOURCE = {
        "repro/cls.py": """
            class Base:
                def helper(self):
                    return 1

            class Derived(Base):
                def run(self):
                    return self.helper()

            class Other:
                def process(self):
                    return 2

            class Peer:
                def process(self):
                    return 3

            def dispatch(obj):
                return obj.process()
            """
    }

    def test_self_call_resolves_through_the_mro(self, tmp_path):
        index = build_index(tmp_path, self.SOURCE)
        (resolved,) = index.resolved_calls("repro.cls.Derived.run")
        assert resolved.targets == ("repro.cls.Base.helper",)
        assert not resolved.unknown

    def test_dynamic_dispatch_keeps_all_candidates_plus_unknown(self, tmp_path):
        index = build_index(tmp_path, self.SOURCE)
        (resolved,) = index.resolved_calls("repro.cls.dispatch")
        assert set(resolved.targets) == {
            "repro.cls.Other.process",
            "repro.cls.Peer.process",
        }
        assert resolved.unknown
        assert UNKNOWN in targets_of(index, "repro.cls.dispatch")

    def test_fresh_local_receiver_is_not_name_matched(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/fresh.py": """
                    class Store:
                        def append(self, row):
                            self.rows += [row]

                    def collect(xs):
                        out = []
                        for x in xs:
                            out.append(x)
                        return out
                    """
            },
        )
        # ``out`` is a fresh list: its ``.append`` must not resolve to
        # ``Store.append`` just because the names coincide.
        assert "repro.fresh.Store.append" not in targets_of(index, "repro.fresh.collect")


class TestImportCycles:
    CYCLE = {
        "repro/a.py": """
            from repro import b

            def ping(n):
                if n <= 0:
                    return 0
                return b.pong(n - 1)
            """,
        "repro/b.py": """
            from repro import a

            def pong(n):
                return a.ping(n)
            """,
    }

    def test_cyclic_modules_resolve_each_other(self, tmp_path):
        index = build_index(tmp_path, self.CYCLE)
        assert "repro.b.pong" in targets_of(index, "repro.a.ping")
        assert "repro.a.ping" in targets_of(index, "repro.b.pong")

    def test_reachability_terminates_on_cycles(self, tmp_path):
        index = build_index(tmp_path, self.CYCLE)
        chains = index.reachable(["repro.a.ping"])
        assert set(chains) == {"repro.a.ping", "repro.b.pong"}
        assert chains["repro.b.pong"] == ("repro.a.ping", "repro.b.pong")

    def test_reexport_alias_chases_to_definition(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/pkg/__init__.py": "from repro.pkg.impl import work\n",
                "repro/pkg/impl.py": """
                    def work(x):
                        return x
                    """,
                "repro/use.py": """
                    from repro import pkg

                    def go(x):
                        return pkg.work(x)
                    """,
            },
        )
        assert index.canonical("repro.pkg.work") == "repro.pkg.impl.work"
        assert "repro.pkg.impl.work" in targets_of(index, "repro.use.go")


class TestWorkerEntries:
    def test_function_reference_through_module_attribute(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/par.py": """
                    def work(item):
                        return item

                    def run(pool, items):
                        return pool.map(work, items)
                    """,
                "repro/drv.py": """
                    from repro import par

                    def drive(pool, items):
                        return pool.map(par.work, items)
                    """,
            },
        )
        entries = index.worker_entries()
        assert "repro.par.work" in entries

    def test_extra_worker_entries_config(self, tmp_path):
        from dataclasses import replace

        from repro.analysis import AnalysisConfig

        config = replace(AnalysisConfig(), extra_worker_entries=("repro.solo.work",))
        index = build_index(
            tmp_path,
            {
                "repro/solo.py": """
                    def work(item):
                        return item
                    """
            },
            config=config,
        )
        assert "repro.solo.work" in index.worker_entries()

    def test_callback_passed_to_external_call_is_an_edge(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/cb.py": """
                    import functools

                    def combine(a, b):
                        return a + b

                    def total(xs):
                        return functools.reduce(combine, xs, 0)
                    """
            },
        )
        assert "repro.cb.combine" in targets_of(index, "repro.cb.total")
