"""Per-file extraction: atoms, sanitizers, destructuring, serialization."""

import hashlib

from repro.analysis import AnalysisConfig, extract
from repro.analysis.facts import ModuleFacts
from repro.lint.engine import Violation, parse_module

from tests.analysis.conftest import build_index, write_project


def extract_one(tmp_path, source, name="repro/mod.py", config=None):
    config = config or AnalysisConfig()
    root = write_project(tmp_path, {name: source})
    path = root / name
    parsed = parse_module(path)
    assert not isinstance(parsed, Violation), parsed
    return extract(parsed, config, hashlib.sha256(path.read_bytes()).hexdigest())


def sink_sources(facts, qualname):
    return [
        (sink.name, sorted(a[1] for a in sink.atoms if a[0] == "source"))
        for sink in facts.functions[qualname].sinks
    ]


class TestAtoms:
    def test_sanitizer_call_clears_taint(self, tmp_path):
        facts = extract_one(
            tmp_path,
            """
            def build(record):
                return OpinionUpload(history_id(record.user_id))
            """,
        )
        # An untaintable value position is not even recorded as a sink.
        assert sink_sources(facts, "repro.mod.build") == []

    def test_identity_attribute_is_a_source_atom(self, tmp_path):
        facts = extract_one(
            tmp_path,
            """
            def build(record):
                return OpinionUpload(record.user_id)
            """,
        )
        assert sink_sources(facts, "repro.mod.build") == [
            ("OpinionUpload", ["user_id"])
        ]

    def test_subscript_drops_the_key_taint(self, tmp_path):
        facts = extract_one(
            tmp_path,
            """
            def build(table, record):
                return OpinionUpload(table[record.user_id])
            """,
        )
        # The *key* is identity but the looked-up value is not; the only
        # remaining atom is the table param itself.
        assert sink_sources(facts, "repro.mod.build") in ([], [("OpinionUpload", [])])
        sinks = facts.functions["repro.mod.build"].sinks
        assert not any(
            atom == ("source", "user_id") for sink in sinks for atom in sink.atoms
        )

    def test_tuple_unpacking_is_positional(self, tmp_path):
        facts = extract_one(
            tmp_path,
            """
            def build(record):
                clean, dirty = "const", record.user_id
                return OpinionUpload(clean), Envelope(dirty)
            """,
        )
        sources = dict(sink_sources(facts, "repro.mod.build"))
        assert sources.get("Envelope") == ["user_id"]
        assert sources.get("OpinionUpload", []) == []

    def test_comprehension_variables_do_not_become_globals(self, tmp_path):
        facts = extract_one(
            tmp_path,
            """
            def squares(xs):
                return [x * x for x in xs]
            """,
        )
        assert not any(
            atoms
            for atoms in (
                facts.functions["repro.mod.squares"].global_reads,
            )
            if any("x" == dotted.rsplit(".", 1)[-1] for dotted, _l, _c in atoms)
        )


class TestModuleFacts:
    def test_imports_map_tracks_aliases(self, tmp_path):
        facts = extract_one(
            tmp_path,
            """
            from repro.scale import merge as m
            import repro.util.clock
            """,
        )
        assert facts.imports["m"] == "repro.scale.merge"

    def test_round_trips_through_json_dict(self, tmp_path):
        facts = extract_one(
            tmp_path,
            """
            import time

            _STATE = {}


            class Box:
                def put(self, k, v):
                    _STATE[k] = v


            def export(box):
                names = {n for n in box}
                for n in names:
                    box.put(n, time.time())
            """,
        )
        rebuilt = ModuleFacts.from_dict(facts.to_dict())
        assert rebuilt.to_dict() == facts.to_dict()
        assert set(rebuilt.functions) == set(facts.functions)

    def test_suppression_comment_is_carried(self, tmp_path):
        facts = extract_one(
            tmp_path,
            """
            def f():
                return g()  # repro: allow[interproc-privacy-taint]
            """,
        )
        assert facts.suppressed("interproc-privacy-taint", 3)
        assert not facts.suppressed("merge-purity", 3)


class TestExtractionEquivalence:
    def test_index_from_cached_facts_matches_fresh(self, tmp_path):
        files = {
            "repro/x.py": """
                _LOG = []

                def note(msg):
                    _LOG.append(msg)

                def run(items):
                    for item in items:
                        note(item)
                """
        }
        fresh = build_index(tmp_path / "a", files)
        config = AnalysisConfig()
        cached_facts = [
            ModuleFacts.from_dict(facts.to_dict()) for facts in fresh.modules.values()
        ]
        from repro.analysis import ProjectIndex

        cached = ProjectIndex.build(config, cached_facts)
        assert set(cached.functions) == set(fresh.functions)
        for qualname in fresh.functions:
            assert cached.successors(qualname) == fresh.successors(qualname)
