"""Dogfood: the analyzer over ``src/repro`` is clean against the
committed baseline — the same invariant CI enforces via ``make analyze``."""

import os
from pathlib import Path

import pytest

from repro.analysis import Baseline, WholeProgramAnalyzer

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis_baseline.json"


@pytest.fixture(scope="module")
def self_result():
    # Fingerprints embed repo-relative paths, so run from the repo root
    # exactly as CI does.
    previous = Path.cwd()
    os.chdir(REPO_ROOT)
    try:
        yield WholeProgramAnalyzer().run(
            ["src/repro"], baseline=Baseline.load(BASELINE)
        )
    finally:
        os.chdir(previous)


def test_source_tree_is_clean_against_committed_baseline(self_result):
    assert not self_result.parse_errors, self_result.parse_errors
    assert not self_result.stale_baseline, self_result.stale_baseline
    assert not self_result.findings, [f.message for f in self_result.findings]


def test_baseline_entries_all_have_real_justifications(self_result):
    baseline = Baseline.load(BASELINE)
    assert baseline.entries, "committed baseline should not be empty"
    for entry in baseline.entries.values():
        justification = entry.get("justification", "")
        assert justification and "TODO" not in justification, entry


def test_the_whole_tree_is_actually_analyzed(self_result):
    assert self_result.n_files > 100
