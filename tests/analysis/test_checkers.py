"""Each checker fires on its broken fixture and stays quiet on the clean one."""

from tests.analysis.conftest import checker_ids


class TestInterprocPrivacyTaint:
    def test_identity_crossing_call_edge_is_reported(self, analyze):
        result = analyze("client/bad_flow.py", "client/models.py")
        ids = checker_ids(result)
        assert "interproc-privacy-taint" in ids
        sinks = {
            finding.message.split("`")[3]  # `user_id` reaches … `<SinkName>`
            for finding in result.findings
            if finding.checker_id == "interproc-privacy-taint"
        }
        assert "OpinionUpload" in sinks
        assert "Envelope" in sinks

    def test_finding_carries_witness_chain(self, analyze):
        result = analyze("client/bad_flow.py", "client/models.py")
        chains = [
            finding.chain
            for finding in result.findings
            if finding.checker_id == "interproc-privacy-taint"
        ]
        assert chains and all(chain for chain in chains)
        assert any("publish" in step for chain in chains for step in chain)

    def test_sources_name_the_identity_field(self, analyze):
        result = analyze("client/bad_flow.py", "client/models.py")
        assert all(
            "`user_id`" in finding.message
            for finding in result.findings
            if finding.checker_id == "interproc-privacy-taint"
        )

    def test_sanitized_flow_is_clean(self, analyze):
        result = analyze("client/good_flow.py", "client/models.py")
        assert result.ok, [f.message for f in result.findings]


class TestPoolSharedMutation:
    def test_worker_reaching_module_global_write_is_reported(self, analyze):
        result = analyze("scale/bad_pool.py")
        findings = [
            finding
            for finding in result.findings
            if finding.checker_id == "pool-shared-mutation"
        ]
        assert findings
        assert all("repro.scale.bad_pool._CACHE" in f.message for f in findings)
        assert all(f.chain[0].endswith("work_one") for f in findings)
        # Both the direct writer and the worker entry that reaches it are
        # reported — the summary propagates up the call chain.
        functions = {f.function.rsplit(".", 1)[-1] for f in findings}
        assert functions == {"work_one", "_remember"}


class TestMergePurity:
    def test_input_mutation_and_mutable_global_read_are_reported(self, analyze):
        result = analyze("scale/merge.py")
        findings = [
            finding
            for finding in result.findings
            if finding.checker_id == "merge-purity"
        ]
        by_function = {f.function.rsplit(".", 1)[-1] for f in findings}
        assert "merge_counts" in by_function
        assert "merge_with_defaults" in by_function
        assert "merge_max" not in by_function
        details = {f.detail.split(":")[0] for f in findings}
        assert "param" in details
        assert "read" in details

    def test_fresh_local_dicts_are_not_inputs(self, analyze):
        # merge_with_defaults mutates only its own dict(...) copy: the
        # param-mutation rule must not fire on it.
        result = analyze("scale/merge.py")
        assert not any(
            finding.detail.startswith("param:")
            and finding.function.endswith("merge_with_defaults")
            for finding in result.findings
        )


class TestDeterminismReachability:
    def test_clock_and_unordered_iteration_reachable_from_digest(self, analyze):
        result = analyze("service/bad_digest.py")
        findings = [
            finding
            for finding in result.findings
            if finding.checker_id == "determinism-reachability"
        ]
        details = {finding.detail for finding in findings}
        assert "call:time.time" in details
        assert "iter:names" in details

    def test_chain_starts_at_the_report_entry(self, analyze):
        result = analyze("service/bad_digest.py")
        for finding in result.findings:
            assert finding.chain[0].endswith(".digest")

    def test_sorted_iteration_and_injected_clock_are_clean(self, analyze):
        result = analyze("service/good_digest.py")
        assert result.ok, [f.message for f in result.findings]


class TestSuppression:
    def test_inline_allow_moves_finding_to_suppressed(self, analyze):
        result = analyze("service/suppressed_digest.py")
        assert result.ok
        assert [f.checker_id for f in result.suppressed] == [
            "determinism-reachability"
        ]

    def test_all_produced_still_reports_the_suppressed_finding(self, analyze):
        result = analyze("service/suppressed_digest.py")
        assert any(
            finding.detail == "call:time.time" for finding in result.all_produced()
        )


def test_whole_fixture_tree_findings_are_deterministic(analyze):
    first = analyze("")
    second = analyze("")
    assert [f.to_dict() for f in first.findings] == [
        f.to_dict() for f in second.findings
    ]
    assert not first.parse_errors
    assert len(first.findings) >= 6
