"""Interprocedural summaries: returns, mutations, taint propagation."""

from repro.analysis import MutationSummaries, ReturnSummaries, TaintPropagator

from tests.analysis.conftest import build_index


def summaries_for(tmp_path, files):
    index = build_index(tmp_path, files)
    returns = ReturnSummaries(index)
    mutations = MutationSummaries(index, returns)
    return index, returns, mutations


class TestReturnSummaries:
    def test_identity_survives_a_helper_chain(self, tmp_path):
        index, returns, _ = summaries_for(
            tmp_path,
            {
                "repro/m.py": """
                    def a(record):
                        return record.user_id

                    def b(record):
                        return a(record)

                    def c(record):
                        return b(record)
                    """
            },
        )
        assert ("source", "user_id") in returns.summaries["repro.m.c"].atoms

    def test_recursion_terminates(self, tmp_path):
        _, returns, _ = summaries_for(
            tmp_path,
            {
                "repro/m.py": """
                    def walk(node):
                        if node.leaf:
                            return node.user_id
                        return walk(node.child)
                    """
            },
        )
        assert ("source", "user_id") in returns.summaries["repro.m.walk"].atoms


class TestMutationSummaries:
    def test_mutation_through_a_callee_is_attributed_to_the_param(self, tmp_path):
        _, _, mutations = summaries_for(
            tmp_path,
            {
                "repro/m.py": """
                    def push(bucket, row):
                        bucket.append(row)

                    def collect(out, rows):
                        for row in rows:
                            push(out, row)
                    """
            },
        )
        assert 0 in mutations.summaries["repro.m.push"].params
        assert 0 in mutations.summaries["repro.m.collect"].params

    def test_fresh_containers_do_not_count_as_param_mutation(self, tmp_path):
        _, _, mutations = summaries_for(
            tmp_path,
            {
                "repro/m.py": """
                    def collect(rows):
                        out = list(rows)
                        out.append("sentinel")
                        return out
                    """
            },
        )
        assert not mutations.summaries["repro.m.collect"].params

    def test_setdefault_chain_aliases_the_receiver(self, tmp_path):
        _, _, mutations = summaries_for(
            tmp_path,
            {
                "repro/m.py": """
                    def bucket(table, key, row):
                        table.setdefault(key, []).append(row)
                    """
            },
        )
        assert 0 in mutations.summaries["repro.m.bucket"].params

    def test_global_write_is_recorded_with_witness(self, tmp_path):
        _, _, mutations = summaries_for(
            tmp_path,
            {
                "repro/m.py": """
                    _SEEN = set()

                    def note(key):
                        _SEEN.add(key)
                    """
            },
        )
        globals_ = mutations.summaries["repro.m.note"].globals
        assert "repro.m._SEEN" in globals_
        line, _via = globals_["repro.m._SEEN"]
        assert line > 0


class TestTaintPropagator:
    def run_taint(self, tmp_path, files):
        index, returns, _ = summaries_for(tmp_path, files)
        hits = []

        def on_hit(facts, sink, sources, chain):
            hits.append((facts.qualname, sink.name, tuple(sorted(sources)), chain))

        TaintPropagator(index, returns).run(on_hit)
        return hits

    def test_taint_crosses_a_call_edge_into_a_sink(self, tmp_path):
        hits = self.run_taint(
            tmp_path,
            {
                "repro/m.py": """
                    def send(payload):
                        return Envelope(payload)

                    def sync(record):
                        return send(record.device_id)
                    """
            },
        )
        assert (
            "repro.m.send",
            "Envelope",
            ("device_id",),
            ("repro.m.sync", "repro.m.send"),
        ) in hits

    def test_sanitized_argument_does_not_propagate(self, tmp_path):
        hits = self.run_taint(
            tmp_path,
            {
                "repro/m.py": """
                    def send(payload):
                        return Envelope(payload)

                    def sync(record):
                        return send(history_id(record.device_id))
                    """
            },
        )
        assert hits == []

    def test_mutual_recursion_with_taint_terminates(self, tmp_path):
        hits = self.run_taint(
            tmp_path,
            {
                "repro/m.py": """
                    def even(x, n):
                        if n <= 0:
                            return Envelope(x)
                        return odd(x, n - 1)

                    def odd(x, n):
                        return even(x, n - 1)

                    def start(record):
                        return even(record.user_id, 5)
                    """
            },
        )
        assert any(name == "Envelope" and sources == ("user_id",) for _, name, sources, _ in hits)
