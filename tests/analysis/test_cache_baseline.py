"""Incremental cache correctness and the baseline workflow."""

import json
from dataclasses import replace

import pytest

from repro.analysis import AnalysisConfig, Baseline, WholeProgramAnalyzer
from repro.analysis.baseline import _TODO

from tests.analysis.conftest import write_project

BROKEN = """
import time


def digest(frame):
    return len(frame), time.time()
"""

FIXED = """
def digest(frame, as_of):
    return len(frame), as_of
"""


def run(root, cache=None, baseline=None, config=None):
    analyzer = WholeProgramAnalyzer(
        config=config or AnalysisConfig(), cache_path=cache
    )
    return analyzer.run([root], baseline=baseline)


class TestIncrementalCache:
    def test_warm_run_hits_every_file_and_agrees(self, tmp_path):
        root = write_project(tmp_path / "proj", {"repro/svc.py": BROKEN})
        cache = tmp_path / "cache.json"
        cold = run(root, cache=cache)
        assert cold.n_cached == 0 and cold.n_files > 0
        warm = run(root, cache=cache)
        assert warm.n_cached == warm.n_files == cold.n_files
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_editing_a_file_invalidates_only_its_entry(self, tmp_path):
        root = write_project(
            tmp_path / "proj",
            {"repro/svc.py": BROKEN, "repro/other.py": "def helper(x):\n    return x\n"},
        )
        cache = tmp_path / "cache.json"
        cold = run(root, cache=cache)
        assert cold.findings
        (root / "repro/svc.py").write_text(FIXED, encoding="utf-8")
        warm = run(root, cache=cache)
        assert warm.ok
        # other.py (and the __init__ files) came from cache; svc.py did not.
        assert warm.n_cached == warm.n_files - 1

    def test_config_change_drops_the_whole_cache(self, tmp_path):
        root = write_project(tmp_path / "proj", {"repro/svc.py": BROKEN})
        cache = tmp_path / "cache.json"
        run(root, cache=cache)
        changed = replace(AnalysisConfig(), report_entry_names=frozenset({"digest"}))
        rerun = run(root, cache=cache, config=changed)
        assert rerun.n_cached == 0

    def test_program_replay_preserves_suppressed_findings(self, tmp_path):
        suppressed = BROKEN.replace(
            "time.time()", "time.time()  # repro: allow[determinism-reachability]"
        )
        root = write_project(tmp_path / "proj", {"repro/svc.py": suppressed})
        cache = tmp_path / "cache.json"
        cold = run(root, cache=cache)
        warm = run(root, cache=cache)
        assert warm.n_cached == warm.n_files
        assert [f.to_dict() for f in warm.suppressed] == [
            f.to_dict() for f in cold.suppressed
        ]
        assert warm.ok and warm.suppressed

    def test_program_replay_applies_a_fresh_baseline(self, tmp_path):
        from repro.analysis import Baseline

        root = write_project(tmp_path / "proj", {"repro/svc.py": BROKEN})
        cache = tmp_path / "cache.json"
        cold = run(root, cache=cache)
        assert cold.findings
        baseline = Baseline(
            entries={f.fingerprint: {"fingerprint": f.fingerprint} for f in cold.findings}
        )
        warm = run(root, cache=cache, baseline=baseline)
        assert warm.n_cached == warm.n_files
        assert warm.ok and len(warm.baselined) == len(cold.findings)

    def test_checker_selection_keys_the_program_cache(self, tmp_path):
        from repro.analysis import WholeProgramAnalyzer, default_checkers

        root = write_project(tmp_path / "proj", {"repro/svc.py": BROKEN})
        cache = tmp_path / "cache.json"
        assert run(root, cache=cache).findings
        subset = [
            c for c in default_checkers() if c.checker_id != "determinism-reachability"
        ]
        filtered = WholeProgramAnalyzer(checkers=subset, cache_path=cache).run([root])
        assert filtered.ok  # must not replay the full-checker findings

    def test_corrupt_cache_is_treated_as_absent(self, tmp_path):
        root = write_project(tmp_path / "proj", {"repro/svc.py": BROKEN})
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        result = run(root, cache=cache)
        assert result.n_cached == 0 and result.findings


class TestBaseline:
    def findings_for(self, tmp_path):
        root = write_project(tmp_path / "proj", {"repro/svc.py": BROKEN})
        return root, run(root).findings

    def test_split_new_vs_baselined(self, tmp_path):
        root, findings = self.findings_for(tmp_path)
        assert findings
        baseline = Baseline(
            entries={findings[0].fingerprint: {"fingerprint": findings[0].fingerprint}}
        )
        result = run(root, baseline=baseline)
        assert len(result.baselined) == 1
        assert len(result.findings) == len(findings) - 1

    def test_stale_entry_fails_the_run(self, tmp_path):
        root, _ = self.findings_for(tmp_path)
        baseline = Baseline(entries={"deadbeefdeadbeef": {"fingerprint": "deadbeefdeadbeef"}})
        result = run(root, baseline=baseline)
        assert result.stale_baseline and not result.ok

    def test_updated_with_preserves_justifications(self, tmp_path):
        _, findings = self.findings_for(tmp_path)
        justified = "clock is part of the report contract here"
        baseline = Baseline(
            entries={
                findings[0].fingerprint: {
                    "fingerprint": findings[0].fingerprint,
                    "justification": justified,
                }
            }
        )
        document = baseline.updated_with(findings)
        by_fp = {entry["fingerprint"]: entry for entry in document["findings"]}
        assert by_fp[findings[0].fingerprint]["justification"] == justified
        for finding in findings[1:]:
            assert by_fp[finding.fingerprint]["justification"] == _TODO

    def test_fingerprint_is_line_independent(self, tmp_path):
        root = write_project(tmp_path / "proj", {"repro/svc.py": BROKEN})
        before = run(root).findings
        shifted = "# leading comment\n# another\n" + BROKEN
        (root / "repro/svc.py").write_text(shifted, encoding="utf-8")
        after = run(root).findings
        assert {f.fingerprint for f in before} == {f.fingerprint for f in after}
        assert {f.line for f in before} != {f.line for f in after}

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}), encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_load_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == {}
