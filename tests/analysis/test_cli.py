"""CLI behaviour: selection, formats, baseline flags, exit codes."""

import json

from repro.analysis.cli import main

from tests.analysis.conftest import FIXTURE_ROOT

BAD = str(FIXTURE_ROOT / "service" / "bad_digest.py")
GOOD = str(FIXTURE_ROOT / "service" / "good_digest.py")


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main([GOOD]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([BAD]) == 1
        out = capsys.readouterr().out
        assert "determinism-reachability" in out
        assert "FAIL:" in out

    def test_unknown_select_id_exits_two(self, capsys):
        assert main([BAD, "--select", "no-such-checker"]) == 2
        assert "no-such-checker" in capsys.readouterr().out

    def test_unknown_ignore_id_exits_two(self, capsys):
        assert main([BAD, "--ignore", "merge-purty"]) == 2
        assert "merge-purty" in capsys.readouterr().out

    def test_update_baseline_requires_baseline(self, capsys):
        assert main([BAD, "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().out


class TestSelection:
    def test_ignoring_the_only_firing_checker_is_clean(self, capsys):
        assert main([BAD, "--ignore", "determinism-reachability"]) == 0

    def test_selecting_a_non_firing_checker_is_clean(self, capsys):
        assert main([BAD, "--select", "merge-purity"]) == 0

    def test_list_checkers(self, capsys):
        assert main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        for checker_id in (
            "interproc-privacy-taint",
            "pool-shared-mutation",
            "merge-purity",
            "determinism-reachability",
        ):
            assert checker_id in out


class TestFormats:
    def test_json_document_shape(self, capsys):
        main([BAD, "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["finding_count"] == len(document["findings"])
        finding = document["findings"][0]
        for key in ("checker_id", "path", "line", "function", "fingerprint", "chain"):
            assert key in finding

    def test_sarif_document_shape(self, capsys):
        main([BAD, "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "determinism-reachability" in rule_ids
        for sarif_result in run["results"]:
            assert sarif_result["ruleId"] in rule_ids
            location = sarif_result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith("bad_digest.py")
            assert "reproAnalysis/v1" in sarif_result["fingerprints"]

    def test_show_chains_prints_witness(self, capsys):
        main([BAD, "--show-chains"])
        assert "->" in capsys.readouterr().out or "digest" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_update_then_clean_then_stale(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([BAD, "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        assert main([BAD, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # Against a different (clean) file every entry is stale: exit 1.
        assert main([GOOD, "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().out

    def test_show_suppressed_lists_baselined(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([BAD, "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        main([BAD, "--baseline", str(baseline), "--show-suppressed"])
        assert "baselined" in capsys.readouterr().out
