"""Shared helpers for the whole-program analysis suite."""

from __future__ import annotations

import hashlib
import textwrap
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, ProjectIndex, WholeProgramAnalyzer, extract
from repro.analysis.engine import AnalysisResult
from repro.lint.engine import Violation, parse_module

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "proj" / "repro"


@pytest.fixture
def fixture_root() -> Path:
    return FIXTURE_ROOT


@pytest.fixture
def analyze():
    """Run the full analyzer over fixture-relative paths."""

    def run(*relative: str, baseline=None, cache=None, config=None) -> AnalysisResult:
        paths = [FIXTURE_ROOT / rel for rel in relative]
        for path in paths:
            assert path.exists(), f"missing fixture {path}"
        analyzer = WholeProgramAnalyzer(
            config=config or AnalysisConfig(), cache_path=cache
        )
        return analyzer.run(paths, baseline=baseline)

    return run


def write_project(root: Path, files: dict[str, str]) -> Path:
    """Materialise ``{relpath: source}`` as an importable package tree.

    Every intermediate directory gets an ``__init__.py`` so
    ``module_name_for`` derives dotted names relative to ``root``.
    """
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        directory = path.parent
        while directory != root:
            (directory / "__init__.py").touch()
            directory = directory.parent
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def build_index(
    root: Path, files: dict[str, str], config: AnalysisConfig | None = None
) -> ProjectIndex:
    """Extract facts for an inline project and build its index."""
    config = config or AnalysisConfig()
    write_project(root, files)
    facts = []
    for path in sorted(root.rglob("*.py")):
        parsed = parse_module(path)
        assert not isinstance(parsed, Violation), parsed
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        facts.append(extract(parsed, config, digest))
    return ProjectIndex.build(config, facts)


def checker_ids(result: AnalysisResult) -> list[str]:
    return [finding.checker_id for finding in result.findings]
