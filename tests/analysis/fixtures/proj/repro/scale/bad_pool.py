"""Broken fixture: a pool worker mutates parent-owned module state.

``run`` submits ``work_one`` to a process pool; ``work_one`` reaches
``_remember``, which writes the module-level ``_CACHE``.  Under fork
that write lands in the child's copy-on-write page and is silently lost.
"""

_CACHE = {}


def _remember(key, value):
    _CACHE[key] = value


def work_one(item):
    _remember(item.key, item)
    return item.key


def run(pool, items):
    return list(pool.map(work_one, items))
