"""Broken fixture: impure functions in the commutative merge registry.

The module name matters: ``AnalysisConfig.merge_modules`` defaults to
``repro.scale.merge``, so everything here is held to the purity rules.
``merge_counts`` mutates an input, ``merge_with_defaults`` reads a
mutable module global, ``merge_max`` is pure and must stay unflagged.
"""

_DEFAULTS = {"gap": 0}


def merge_counts(left, right):
    left.update(right)
    return left


def merge_with_defaults(left, right):
    out = dict(_DEFAULTS)
    out.update(left)
    out.update(right)
    return out


def merge_max(left, right):
    return left if left >= right else right
