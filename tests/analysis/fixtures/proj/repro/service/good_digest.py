"""Clean fixture: the report entry sorts before iterating and takes the
timestamp as an argument instead of reading the clock."""


def digest(frame, as_of):
    names = {row.name for row in frame}
    total = 0
    for name in sorted(names):
        total += len(name)
    return total, as_of
