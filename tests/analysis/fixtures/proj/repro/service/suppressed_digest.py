"""Fixture: a nondeterminism finding waived with an inline suppression."""

import time


def export(frame):
    return len(frame), _now()


def _now():
    return time.time()  # repro: allow[determinism-reachability]
