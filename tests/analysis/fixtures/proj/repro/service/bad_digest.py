"""Broken fixture: a report entry point reaches wall clock and
unordered-set iteration."""

import time


def _stamp():
    return time.time()


def digest(frame):
    names = {row.name for row in frame}
    total = 0
    for name in names:
        total += len(name)
    return total, _stamp()
