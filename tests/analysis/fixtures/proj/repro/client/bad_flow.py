"""Broken fixture: identity crosses two call edges into an upload ctor.

The per-file lint rules cannot see this — the sink and the identity read
live in different functions — which is exactly what
``interproc-privacy-taint`` exists for.
"""

from repro.client.models import Envelope, OpinionUpload


def _token_for(record):
    return record.user_id


def _wrap(token):
    return Envelope(token)


def publish(record):
    token = _token_for(record)
    return OpinionUpload(token)


def publish_wrapped(record):
    return _wrap(_token_for(record))
