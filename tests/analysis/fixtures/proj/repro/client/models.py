"""Minimal upload payload types for the analysis fixtures."""


class OpinionUpload:
    def __init__(self, token):
        self.token = token


class Envelope:
    def __init__(self, payload):
        self.payload = payload
