"""Clean fixture: identity is sanitized before it crosses the call edge."""

from repro.client.models import OpinionUpload
from repro.privacy.blind import history_id


def _token_for(record):
    return history_id(record.user_id)


def publish(record):
    token = _token_for(record)
    return OpinionUpload(token)
