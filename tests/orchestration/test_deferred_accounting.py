"""Regression: deferred-epoch ingestion must not mislabel buffered mail.

A server outage that covers an epoch's ingest point defers the batch job;
the mix's already-released deliveries are held by the driver and replayed
at the catch-up cycle.  The historical bug: the catch-up `receive` checked
the outage window against each delivery's *arrival* timestamp — stamped
while the server was down — and silently dropped the whole backlog as
outage losses, in an epoch where the endpoint was demonstrably up.

These tests pin the fixed semantics: an outage that ends before the next
ingest point loses nothing, the catch-up run stores exactly what a clean
run stores, and the injector/server outage counters stay consistent.
"""

import pytest

from repro.faults import FaultPlan, ServerOutage, Window
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 60.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
EPOCH = HORIZON / N_EPOCHS
MAX_USERS = 6

#: Covers epoch 2's ingest point (2*EPOCH + 2*DAY) but ends well before
#: epoch 3's (3*EPOCH + 2*DAY) — so *every* delivery the mix released
#: during the outage is replayable at catch-up, and the correct number of
#: envelopes lost to the outage is exactly zero.
NARROW_OUTAGE = Window(2 * EPOCH - DAY, 2 * EPOCH + 2 * DAY + HOUR)


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=24), seed=31)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=31
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=31)
    return town, result, classifier


def run(world, plan):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=31)
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
    )


class TestDeferredAccounting:
    def test_narrow_outage_loses_nothing(self, world):
        """An outage over only the ingest point defers, never drops."""
        plan = FaultPlan(seed=11, server_outages=(ServerOutage(NARROW_OUTAGE),))
        outcome = run(world, plan)

        deferred = [r for r in outcome.reports if r.server_deferred]
        assert len(deferred) == 1
        assert deferred[0].epoch == 2
        assert deferred[0].maintenance is None
        assert deferred[0].new_records == 0

        # The buffered backlog was replayed at catch-up, not dropped:
        assert outcome.injector.envelopes_lost_to_outage == 0
        assert outcome.server.dropped_by_outage == 0
        assert sum(r.dropped_messages for r in outcome.reports) == 0

    def test_catchup_stores_exactly_the_clean_run_records(self, world):
        """The deferred run ends with the same stores as a faultless one."""
        plan = FaultPlan(seed=11, server_outages=(ServerOutage(NARROW_OUTAGE),))
        faulted = run(world, plan)
        clean = run(world, FaultPlan(seed=11))

        assert faulted.server.history_store.n_records == (
            clean.server.history_store.n_records
        )
        assert faulted.server.n_opinions == clean.server.n_opinions
        assert faulted.reports[-1].total_records == clean.reports[-1].total_records

    def test_catchup_epoch_absorbs_the_backlog(self, world):
        """Records deferred out of epoch 2 land in epoch 3, not nowhere."""
        plan = FaultPlan(seed=11, server_outages=(ServerOutage(NARROW_OUTAGE),))
        faulted = run(world, plan)
        clean = run(world, FaultPlan(seed=11))

        by_epoch_faulted = {r.epoch: r.new_records for r in faulted.reports}
        by_epoch_clean = {r.epoch: r.new_records for r in clean.reports}
        assert by_epoch_faulted[1] == by_epoch_clean[1]
        assert by_epoch_faulted[2] == 0
        assert by_epoch_faulted[3] == by_epoch_clean[2] + by_epoch_clean[3]

    def test_sharded_deployment_defers_identically(self, world):
        """The held-backlog replay is a driver concern; shards match."""
        town, result, classifier = world
        plan = FaultPlan(seed=11, server_outages=(ServerOutage(NARROW_OUTAGE),))
        config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=31)
        mono = run(world, plan)
        sharded = run_epochs(
            town,
            result,
            config,
            n_epochs=N_EPOCHS,
            classifier=classifier,
            max_users=MAX_USERS,
            fault_plan=plan,
            n_shards=4,
        )
        assert sharded.reports_digest() == mono.reports_digest()
        assert sharded.server.dropped_by_outage == 0
