"""Tests for the evaluation diagnostics and multi-epoch operation."""


import pytest

from repro.orchestration.epochs import run_epochs
from repro.orchestration.evaluation import (
    abstention_calibration,
    accuracy_by_kind,
    coverage_diagnostics,
)
from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def deployment():
    town = build_town(TownConfig(n_users=60), seed=17)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=150), seed=17
    ).run()
    config = PipelineConfig(horizon_days=150.0, seed=17)
    outcome = run_full_pipeline(town, result, config)
    return town, result, config, outcome


class TestAccuracyByKind:
    def test_covers_active_kinds(self, deployment):
        town, result, _, outcome = deployment
        report = accuracy_by_kind(town, result, outcome)
        assert "restaurant" in report

    def test_restaurants_infer_better_than_rare_kinds(self, deployment):
        """More interactions per pair -> better inference; restaurants have
        the densest signal."""
        town, result, _, outcome = deployment
        report = accuracy_by_kind(town, result, outcome)
        restaurant = report["restaurant"]
        assert restaurant.n_predictions > 20
        assert restaurant.mae < 1.5
        # Coverage should also be highest for the dense kind.
        for kind, accuracy in report.items():
            if kind != "restaurant" and accuracy.n_predictions + accuracy.n_abstentions > 10:
                assert restaurant.coverage >= accuracy.coverage - 0.1, kind

    def test_counts_consistent_with_outcome(self, deployment):
        town, result, _, outcome = deployment
        report = accuracy_by_kind(town, result, outcome)
        total_predictions = sum(a.n_predictions for a in report.values())
        assert total_predictions <= outcome.n_inferences


class TestCalibration:
    def test_bins_cover_predictions(self, deployment):
        _, result, _, outcome = deployment
        bins = abstention_calibration(result, outcome)
        assert bins
        assert sum(b.n for b in bins) > 50

    def test_claimed_error_tracks_realized(self, deployment):
        """Calibration: realized error within 2x of claimed in the populated
        bins (the classifier's confidence is honest to a factor, not a lie)."""
        _, result, _, outcome = deployment
        bins = abstention_calibration(result, outcome)
        for calibration_bin in bins:
            if calibration_bin.n < 20:
                continue
            assert calibration_bin.mean_realized < 2.5 * calibration_bin.mean_claimed + 0.2

    def test_bin_edges_respected(self, deployment):
        _, result, _, outcome = deployment
        bins = abstention_calibration(result, outcome)
        for calibration_bin in bins:
            assert calibration_bin.claimed_low <= calibration_bin.mean_claimed
            assert calibration_bin.mean_claimed <= calibration_bin.claimed_high


class TestCoverageDiagnostics:
    def test_rescued_entities(self, deployment):
        """Implicit inference must reach entities with zero reviews."""
        town, _, _, outcome = deployment
        diagnostics = coverage_diagnostics(town, outcome)
        assert diagnostics.n_rescued_entities > 10
        assert (
            diagnostics.n_entities_with_opinions_after
            > diagnostics.n_entities_with_opinions_before
        )

    def test_opinions_spread_more_evenly(self, deployment):
        """The opinion Gini across entities should fall: inference fills the
        long tail instead of piling onto already-reviewed entities."""
        town, _, _, outcome = deployment
        diagnostics = coverage_diagnostics(town, outcome)
        assert diagnostics.gini_after < diagnostics.gini_before


class TestEpochs:
    @pytest.fixture(scope="class")
    def epoch_world(self):
        town = build_town(TownConfig(n_users=35), seed=18)
        result = BehaviorSimulator(
            town.users, town.entities, BehaviorConfig(duration_days=100), seed=18
        ).run()
        config = PipelineConfig(horizon_days=100.0, seed=18)
        return town, result, config

    def test_records_grow_monotonically(self, epoch_world):
        town, result, config = epoch_world
        outcome = run_epochs(town, result, config, n_epochs=4)
        totals = [r.total_records for r in outcome.reports]
        assert totals == sorted(totals)
        assert all(r.new_records >= 0 for r in outcome.reports)

    def test_no_duplicate_uploads_across_epochs(self, epoch_world):
        """The decisive property: epoch operation converges to exactly the
        same store as a single-shot run over the full horizon."""
        town, result, config = epoch_world
        epochs = run_epochs(town, result, config, n_epochs=4)
        single = run_full_pipeline(town, result, config)
        assert (
            epochs.server.history_store.n_records
            == single.server.history_store.n_records
        )
        assert epochs.server.n_opinions == single.server.n_opinions

    def test_opinion_latest_wins(self, epoch_world):
        """Opinions are keyed per history: re-inference updates, never
        duplicates."""
        town, result, config = epoch_world
        outcome = run_epochs(town, result, config, n_epochs=4)
        assert outcome.server.n_opinions == len(outcome.server._opinions)

    def test_requires_positive_epochs(self, epoch_world):
        town, result, config = epoch_world
        with pytest.raises(ValueError):
            run_epochs(town, result, config, n_epochs=0)

    def test_epoch_reports_timeline(self, epoch_world):
        town, result, config = epoch_world
        outcome = run_epochs(town, result, config, n_epochs=4)
        times = [r.end_time for r in outcome.reports]
        assert times == sorted(times)
        assert outcome.n_epochs == 4


class TestWearableOptIn:
    def test_wearables_improve_pipeline_accuracy(self):
        """PipelineConfig(use_wearables=True) threads the affect channel
        through deployment and lowers inference error."""
        town = build_town(TownConfig(n_users=45), seed=19)
        result = BehaviorSimulator(
            town.users, town.entities, BehaviorConfig(duration_days=120), seed=19
        ).run()
        plain = run_full_pipeline(
            town, result, PipelineConfig(horizon_days=120.0, seed=19)
        )
        wearable = run_full_pipeline(
            town, result, PipelineConfig(horizon_days=120.0, seed=19, use_wearables=True)
        )
        assert wearable.inference_errors and plain.inference_errors
        assert wearable.mean_absolute_error < plain.mean_absolute_error
