"""Recovery idempotency: dedup state provably survives a restart.

The at-least-once channel makes every delivery a potential re-delivery;
the acceptance rules that suppress them (nonce table, per-slot opinion
``seq``, issuer quota windows) are exactly the state a restart must not
lose.  Each test crashes between the first delivery and its duplicate.
"""

import pytest

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.durability.journal import DurableJournal, attach_journal
from repro.durability.recovery import recover_server
from repro.privacy.anonymity import Delivery

from tests.durability.conftest import (
    comparable_state,
    make_server,
    synth_deliveries,
)


def durable_server(catalog, directory, n_shards=1):
    server = make_server(catalog, n_shards)
    attach_journal(server, DurableJournal(directory, n_lanes=1))
    return server


def opinion_delivery(entity_id, nonce_int, seq, rating, history_id="hist-00001"):
    """One opinion envelope with an explicit nonce and slot ``seq``."""
    record = OpinionUpload(
        history_id=history_id, entity_id=entity_id, rating=rating, seq=seq
    )
    envelope = Envelope(record=record, token=None, nonce=nonce_int.to_bytes(16, "big"))
    return Delivery(
        payload=envelope,
        arrival_time=1000.0 + nonce_int,
        channel_tag=f"ch-{nonce_int}",
    )


@pytest.mark.parametrize("torn_bytes", [0, 9])
def test_pre_crash_duplicates_stay_suppressed_after_recovery(
    catalog, tmp_path, torn_bytes
):
    directory = tmp_path / "durable"
    server = durable_server(catalog, directory)
    deliveries = synth_deliveries(catalog, 0, 20)
    server.receive_all(deliveries)
    expected = comparable_state(server)
    server.journal.crash(torn_bytes=torn_bytes)

    recovered = make_server(catalog)
    recover_server(recovered, directory)
    recovered.receive_all(deliveries)  # the channel re-sends everything
    assert recovered.duplicates_suppressed == 20
    assert comparable_state(recovered) == expected


def test_stale_opinion_seq_survives_recovery(catalog, tmp_path):
    directory = tmp_path / "durable"
    server = durable_server(catalog, directory)
    server.receive_all(synth_deliveries(catalog, 0, 8))
    entity_id = sorted(e.entity_id for e in catalog)[1]
    server.receive_all([opinion_delivery(entity_id, 900, seq=2, rating=5.0)])
    server.journal.crash()

    recovered = make_server(catalog)
    recover_server(recovered, directory)
    slot = recovered._opinions["hist-00001"]
    assert (slot.seq, slot.rating) == (2, 5.0)

    # A delayed older upload (fresh nonce, lower seq) arrives only now:
    # the restored slot seq must win, and the envelope still counts as
    # accepted — exactly the pre-crash semantics.
    stale_before = recovered.opinions_stale
    accepted_before = recovered.accepted_envelopes
    recovered.receive_all([opinion_delivery(entity_id, 901, seq=1, rating=1.0)])
    slot = recovered._opinions["hist-00001"]
    assert (slot.seq, slot.rating) == (2, 5.0)
    assert recovered.opinions_stale == stale_before + 1
    assert recovered.accepted_envelopes == accepted_before + 1


def test_replayed_stale_acceptance_reproduces_the_counter(catalog, tmp_path):
    """A stale-but-accepted upload is journaled; replay re-runs the seq
    rule and lands on the same slot and the same ``opinions_stale``."""
    directory = tmp_path / "durable"
    server = durable_server(catalog, directory)
    server.receive_all(synth_deliveries(catalog, 0, 8))
    entity_id = sorted(e.entity_id for e in catalog)[1]
    server.receive_all(
        [
            opinion_delivery(entity_id, 910, seq=3, rating=4.0),
            opinion_delivery(entity_id, 911, seq=1, rating=2.0),  # stale
        ]
    )
    assert server.opinions_stale == 1
    server.journal.crash()

    recovered = make_server(catalog)
    recover_server(recovered, directory)
    assert recovered.opinions_stale == 1
    assert comparable_state(recovered) == comparable_state(server)


def test_issuer_quota_window_survives_recovery(catalog, tmp_path):
    directory = tmp_path / "durable"
    server = durable_server(catalog, directory)
    server.issuer.issue("device-7", [3, 5, 7], now=100.0)
    server.issuer.issue("device-7", [11], now=200.0)
    remaining = server.issuer.remaining_quota("device-7", now=300.0)
    assert remaining == server.issuer.quota_per_day - 4
    server.journal.crash()

    recovered = make_server(catalog)
    recover_server(recovered, directory)
    assert recovered.issuer.remaining_quota("device-7", now=300.0) == remaining
    # The window start is restored too: the same day keeps counting, the
    # next day resets.
    assert (
        recovered.issuer.remaining_quota("device-7", now=100.0 + 86400.0)
        == recovered.issuer.quota_per_day
    )


def test_new_journal_resumes_sequence_monotonically(catalog, tmp_path):
    directory = tmp_path / "durable"
    server = durable_server(catalog, directory)
    server.receive_all(synth_deliveries(catalog, 0, 12))
    server.journal.crash(torn_bytes=5)

    recovered = make_server(catalog)
    report = recover_server(recovered, directory)
    assert report.next_seq == 13

    resumed = DurableJournal(directory)
    assert resumed.next_seq == report.next_seq
    attach_journal(recovered, resumed)
    recovered.receive_all(synth_deliveries(catalog, 12, 15))
    assert resumed.next_seq == 16
    resumed.close()

    # The whole lineage — pre-crash records plus post-recovery appends —
    # replays as one totally ordered history.
    final = make_server(catalog)
    report = recover_server(final, directory)
    assert report.n_replayed == 15
    assert comparable_state(final) == comparable_state(recovered)
