"""Log shipping, bounded lag, and exact failover.

Direct-drive tests cover the :class:`ReplicatedRSPServer` mechanics
(ship, defer, drain, promote); the pipeline-level tests pin the headline
failover property — a run whose primary is killed mid-epoch produces
byte-identical epoch reports to one that never crashed, with zero
accepted envelopes lost.
"""

import pytest

from repro.durability.journal import DurableJournal, attach_journal
from repro.durability.recovery import recover_server
from repro.durability.replication import ReplicatedRSPServer, ReplicationChannel
from repro.faults import FaultPlan, PrimaryCrash
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

from tests.durability.conftest import (
    comparable_state,
    make_server,
    synth_deliveries,
)


class ChannelDownUntil:
    """A fault hook whose replica link is down before ``up_at``."""

    def __init__(self, up_at):
        self.up_at = up_at

    def replica_down(self, now):
        return now < self.up_at


def make_pair(catalog, root, hook=None, n_shards=1):
    primary = make_server(catalog, n_shards)
    replica = make_server(catalog, n_shards)
    journal = DurableJournal(
        root / "primary",
        n_lanes=n_shards,
        lane_of=primary.router.shard_of if n_shards > 1 else None,
    )
    attach_journal(primary, journal)
    return ReplicatedRSPServer(
        primary,
        replica,
        journal,
        ReplicationChannel(fault_hook=hook),
        durable_root=root,
    )


class TestShipping:
    @pytest.mark.parametrize("n_shards", [1, 4], ids=["monolith", "sharded"])
    def test_ship_reproduces_the_primary_byte_for_byte(
        self, catalog, tmp_path, n_shards
    ):
        pair = make_pair(catalog, tmp_path, n_shards=n_shards)
        pair.primary.receive_all(synth_deliveries(catalog, 0, 30))
        assert pair.lag == 30
        assert pair.ship(now=100.0) == 30
        assert pair.lag == 0
        assert pair.acked_seq == 30
        assert comparable_state(pair.replica) == comparable_state(pair.primary)

    def test_outage_defers_whole_batches_then_drains(self, catalog, tmp_path):
        pair = make_pair(catalog, tmp_path, hook=ChannelDownUntil(up_at=500.0))
        pair.primary.receive_all(synth_deliveries(catalog, 0, 20))
        assert pair.ship(now=100.0) == 0  # channel down: defer, no partials
        assert pair.deferred_batches == 1
        assert pair.lag == 20
        pair.primary.receive_all(synth_deliveries(catalog, 20, 35))
        assert pair.ship(now=200.0) == 0
        assert pair.lag == 35
        assert pair.max_lag == 35
        # First shipment after the window drains the whole backlog:
        # staleness, never loss.
        assert pair.ship(now=600.0) == 35
        assert pair.lag == 0
        assert comparable_state(pair.replica) == comparable_state(pair.primary)


class TestFailover:
    def test_promoted_replica_is_the_shipped_prefix_plus_redelivery(
        self, catalog, tmp_path
    ):
        pair = make_pair(catalog, tmp_path)
        pair.primary.receive_all(synth_deliveries(catalog, 0, 25))
        pair.ship(now=100.0)
        shipped_state = comparable_state(pair.primary)
        unshipped = synth_deliveries(catalog, 25, 33)
        pair.primary.receive_all(unshipped)
        final_state = comparable_state(pair.primary)

        promoted = pair.fail_over(torn_bytes=7)
        assert promoted is pair.replica and pair.promoted
        assert comparable_state(promoted) == shipped_state
        # The unshipped tail was accepted but never acked to the replica:
        # the client retransmission machinery re-sends it, and the
        # replicated nonce table dedups the rest.
        promoted.receive_all(unshipped + synth_deliveries(catalog, 0, 25))
        assert comparable_state(promoted) == final_state

    def test_promoted_server_is_itself_recoverable(self, catalog, tmp_path):
        pair = make_pair(catalog, tmp_path)
        pair.primary.receive_all(synth_deliveries(catalog, 0, 25))
        pair.ship(now=100.0)
        promoted = pair.fail_over()
        promoted_dir = tmp_path / "promoted"
        assert promoted.journal.directory == promoted_dir
        assert list(promoted_dir.glob("snapshot-*.json"))  # baseline snapshot
        restored = make_server(catalog)
        recover_server(restored, promoted_dir)
        assert comparable_state(restored) == comparable_state(promoted)

    def test_dead_primary_directory_recovers_post_mortem(self, catalog, tmp_path):
        pair = make_pair(catalog, tmp_path)
        pair.primary.receive_all(synth_deliveries(catalog, 0, 25))
        final_state = comparable_state(pair.primary)
        pair.fail_over(torn_bytes=9)
        exhumed = make_server(catalog)
        report = recover_server(exhumed, tmp_path / "primary")
        assert report.torn_tail
        assert comparable_state(exhumed) == final_state

    def test_ship_after_promotion_is_a_noop(self, catalog, tmp_path):
        pair = make_pair(catalog, tmp_path)
        pair.primary.receive_all(synth_deliveries(catalog, 0, 5))
        pair.fail_over()
        assert pair.ship(now=999.0) == 0


# ------------------------------------------------------- pipeline level

HORIZON_DAYS = 60.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
EPOCH = HORIZON / N_EPOCHS
MAX_USERS = 8


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def run_replicated(world, durable_dir, plan=None):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=29)
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
        durable_dir=durable_dir,
        replicate=True,
    )


class TestPipelineFailover:
    def test_failover_run_is_byte_identical_to_unfaulted(self, world, tmp_path):
        baseline = run_replicated(world, tmp_path / "baseline")
        plan = FaultPlan(
            seed=11,
            primary_crashes=(PrimaryCrash(time=1.5 * EPOCH, torn_bytes=7),),
        )
        faulted = run_replicated(world, tmp_path / "faulted", plan=plan)

        assert faulted.replication is not None and faulted.replication.promoted
        assert faulted.server is faulted.replication.replica
        assert faulted.injector.primary_crashes_triggered == 1
        # The tentpole acceptance bar: the promoted run's reports are
        # byte-identical to a run that never lost its primary.
        assert [repr(r) for r in faulted.reports] == [
            repr(r) for r in baseline.reports
        ]
        assert (
            faulted.server.accepted_envelopes == baseline.server.accepted_envelopes
        )

    def test_failover_loses_no_accepted_envelope(self, world, tmp_path):
        plan = FaultPlan(
            seed=12,
            primary_crashes=(PrimaryCrash(time=0.5 * EPOCH, torn_bytes=3),),
        )
        outcome = run_replicated(world, tmp_path / "d", plan=plan)
        server = outcome.server
        assert outcome.replication.promoted
        # Every accepted envelope burned a fresh nonce on the serving
        # node; dedup holds across the promotion boundary.
        assert server.accepted_envelopes == server.n_unique_nonces
