"""Snapshots: canonical codec, partition independence, atomic persistence."""

import json

import pytest

from repro.durability.codec import (
    CorruptStateError,
    canonical_json_bytes,
    digest_hex,
    seal,
    unseal,
)
from repro.durability.snapshot import (
    capture_state,
    list_snapshots,
    load_latest_snapshot,
    restore_state,
    snapshot_name,
    write_snapshot,
)

from tests.durability.conftest import comparable_state, make_server, synth_deliveries


class TestCodec:
    def test_canonical_bytes_sort_keys_and_compact(self):
        assert canonical_json_bytes({"b": 1, "a": [2, 3]}) == b'{"a":[2,3],"b":1}'

    def test_seal_round_trips(self):
        state = {"x": [1, 2.5], "y": {"nested": "ü"}}
        blob = seal(state, "rsp-snapshot/1")
        assert blob["format"] == "rsp-snapshot/1"
        assert blob["digest"] == digest_hex(canonical_json_bytes(state))
        assert unseal(blob, "rsp-snapshot/1") == state

    def test_seal_survives_json_round_trip(self):
        blob = seal({"k": "v"}, "rsp-snapshot/1")
        assert unseal(json.loads(json.dumps(blob)), "rsp-snapshot/1") == {"k": "v"}

    def test_tampered_state_is_rejected(self):
        blob = seal({"count": 7}, "rsp-snapshot/1")
        blob["state"]["count"] = 8
        with pytest.raises(CorruptStateError, match="digest"):
            unseal(blob, "rsp-snapshot/1")

    def test_wrong_kind_is_rejected(self):
        blob = seal({"count": 7}, "rsp-snapshot/1")
        with pytest.raises(CorruptStateError):
            unseal(blob, "rsp-checkpoint/1")

    def test_nan_refused(self):
        with pytest.raises(ValueError):
            canonical_json_bytes({"x": float("inf")})


class TestPartitionIndependence:
    def fed(self, catalog, n_shards):
        server = make_server(catalog, n_shards)
        server.post_review("user-x", sorted(server.catalog)[0], 4, 100.0)
        server.receive_all(synth_deliveries(catalog, 0, 60, duplicate_every=9))
        return server

    def test_monolith_and_sharded_capture_identical_bytes(self, catalog):
        states = [
            canonical_json_bytes(capture_state(self.fed(catalog, shards)))
            for shards in (1, 3, 8)
        ]
        assert states[0] == states[1] == states[2]

    @pytest.mark.parametrize("src_shards,dst_shards", [(1, 4), (4, 1), (4, 2)])
    def test_restore_crosses_deployments(self, catalog, src_shards, dst_shards):
        source = self.fed(catalog, src_shards)
        state = capture_state(source)
        target = make_server(catalog, dst_shards)
        restore_state(target, state)
        assert capture_state(target) == state
        assert comparable_state(target) == comparable_state(source)

    def test_restore_refuses_a_used_store(self, catalog):
        source = self.fed(catalog, 1)
        target = self.fed(catalog, 1)
        with pytest.raises(ValueError, match="fresh"):
            restore_state(target, capture_state(source))


class TestPersistence:
    STATE = {"histories": [], "counters": {"accepted_envelopes": 3}}

    def test_write_then_load_latest(self, tmp_path):
        write_snapshot(tmp_path, 17, self.STATE)
        assert (tmp_path / snapshot_name(17)).exists()
        seq, state = load_latest_snapshot(tmp_path)
        assert seq == 17 and state == self.STATE

    def test_no_tmp_files_survive(self, tmp_path):
        write_snapshot(tmp_path, 17, self.STATE)
        assert not list(tmp_path.glob("*.tmp"))

    def test_newest_valid_snapshot_wins(self, tmp_path):
        write_snapshot(tmp_path, 5, {"v": "old"})
        write_snapshot(tmp_path, 9, {"v": "new"})
        assert load_latest_snapshot(tmp_path) == (9, {"v": "new"})
        assert [seq for seq, _ in list_snapshots(tmp_path)] == [5, 9]

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        write_snapshot(tmp_path, 5, {"v": "old"})
        path = write_snapshot(tmp_path, 9, {"v": "new"})
        blob = json.loads(path.read_text())
        blob["state"]["v"] = "mangled"
        path.write_text(json.dumps(blob))
        assert load_latest_snapshot(tmp_path) == (5, {"v": "old"})

    def test_undecodable_newest_falls_back_to_older(self, tmp_path):
        write_snapshot(tmp_path, 5, {"v": "old"})
        path = write_snapshot(tmp_path, 9, {"v": "new"})
        path.write_bytes(b"\x00garbage")
        assert load_latest_snapshot(tmp_path) == (5, {"v": "old"})

    def test_all_corrupt_means_cold_replay(self, tmp_path):
        path = write_snapshot(tmp_path, 5, {"v": "only"})
        path.write_bytes(b"{}")
        assert load_latest_snapshot(tmp_path) is None

    def test_empty_directory_means_cold_replay(self, tmp_path):
        assert load_latest_snapshot(tmp_path) is None
