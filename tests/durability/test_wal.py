"""WAL frame format: round trips, checksums, and the torn-tail policy."""

import struct

import pytest

from repro.durability.wal import (
    MAX_PAYLOAD_BYTES,
    WAL_MAGIC,
    WalCorruptionError,
    WriteAheadLog,
    read_wal,
)

PAYLOADS = [
    {"seq": 1, "kind": "interaction", "entity_id": "e-1", "duration": 300.5},
    {"seq": 2, "kind": "opinion", "rating": 4.0, "nonce": "00ff"},
    {"seq": 3, "kind": "review", "text": "unicode: café"},
]


def build_wal(path, payloads=PAYLOADS):
    wal = WriteAheadLog(path)
    for payload in payloads:
        wal.append_record(payload)
    wal.close()
    return path


class TestRoundTrip:
    def test_append_then_read_reproduces_records(self, tmp_path):
        path = build_wal(tmp_path / "wal.log")
        result = read_wal(path)
        assert result.records == PAYLOADS
        assert not result.torn
        assert result.valid_bytes == path.stat().st_size

    def test_fresh_file_starts_with_magic(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        assert (tmp_path / "wal.log").read_bytes() == WAL_MAGIC

    def test_offsets_locate_each_frame(self, tmp_path):
        path = build_wal(tmp_path / "wal.log")
        result = read_wal(path)
        assert result.offsets[0] == len(WAL_MAGIC)
        assert result.offsets == sorted(result.offsets)
        data = path.read_bytes()
        for offset, record in zip(result.offsets, PAYLOADS):
            length, _crc = struct.unpack_from(">II", data, offset)
            assert length > 0
        assert len(result.offsets) == len(PAYLOADS)

    def test_reopen_appends_without_rewriting_magic(self, tmp_path):
        path = build_wal(tmp_path / "wal.log", PAYLOADS[:1])
        wal = WriteAheadLog(path)
        wal.append_record(PAYLOADS[1])
        wal.close()
        assert read_wal(path).records == PAYLOADS[:2]

    def test_append_counts_bytes_and_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        n = wal.append_record(PAYLOADS[0])
        wal.close()
        assert wal.records_written == 1
        assert wal.bytes_written == n
        assert (tmp_path / "wal.log").stat().st_size == len(WAL_MAGIC) + n

    def test_nan_payload_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        with pytest.raises(ValueError):
            wal.append_record({"seq": 1, "value": float("nan")})
        wal.close()


class TestTornTailPolicy:
    def test_empty_file_is_an_empty_torn_segment(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        result = read_wal(path)
        assert result.records == [] and not result.torn

    def test_partial_magic_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(WAL_MAGIC[:5])
        result = read_wal(path)
        assert result.records == [] and result.torn

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL0" + b"\x00" * 32)
        with pytest.raises(WalCorruptionError, match="bad magic"):
            read_wal(path)

    def test_incomplete_header_is_torn(self, tmp_path):
        path = build_wal(tmp_path / "wal.log")
        path.write_bytes(path.read_bytes() + b"\x00\x01")
        result = read_wal(path)
        assert result.records == PAYLOADS and result.torn

    def test_frame_past_eof_is_torn(self, tmp_path):
        # The crash() simulation appends 0x7f bytes: the fake header
        # claims a length far beyond MAX_PAYLOAD_BYTES.
        path = build_wal(tmp_path / "wal.log")
        valid = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\x7f" * 11)
        result = read_wal(path)
        assert result.records == PAYLOADS and result.torn
        assert result.valid_bytes == valid
        assert struct.unpack(">I", b"\x7f" * 4)[0] > MAX_PAYLOAD_BYTES

    def test_final_frame_checksum_mismatch_is_torn(self, tmp_path):
        path = build_wal(tmp_path / "wal.log")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x40
        path.write_bytes(bytes(data))
        result = read_wal(path)
        assert result.records == PAYLOADS[:-1] and result.torn

    def test_mid_file_damage_raises_not_torn(self, tmp_path):
        path = build_wal(tmp_path / "wal.log")
        result = read_wal(path)
        data = bytearray(path.read_bytes())
        # Flip a payload byte of the *first* frame: valid bytes follow.
        data[result.offsets[0] + 8] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="not a torn tail"):
            read_wal(path)

    def test_strict_mode_raises_on_any_torn_tail(self, tmp_path):
        path = build_wal(tmp_path / "wal.log")
        path.write_bytes(path.read_bytes() + b"\x7f" * 5)
        with pytest.raises(WalCorruptionError):
            read_wal(path, tolerate_torn_tail=False)

    def test_strict_mode_accepts_clean_segments(self, tmp_path):
        path = build_wal(tmp_path / "wal.log")
        assert read_wal(path, tolerate_torn_tail=False).records == PAYLOADS
