"""Client checkpoints ride the same canonical sealer as server snapshots.

A checkpoint that rots on flash storage must be *rejected* at restore —
never silently restored as garbage — and pre-sealing flat-dict
checkpoints (from installs that predate the durability layer) must keep
restoring unchanged.
"""

import json

import pytest

from repro.client.app import CHECKPOINT_FORMAT, RSPClient
from repro.core.classifier import OpinionClassifier
from repro.durability.codec import (
    CorruptStateError,
    canonical_json_bytes,
    digest_hex,
    unseal,
)


@pytest.fixture()
def client(catalog):
    return RSPClient(
        device_id="device-seal-1",
        catalog=catalog,
        classifier=OpinionClassifier(),
        seed=3,
    )


def restore(blob, client):
    return RSPClient.restore(
        blob, catalog=list(client.catalog.values()), classifier=client.classifier
    )


class TestSealedFormat:
    def test_checkpoint_is_a_sealed_blob(self, client):
        blob = client.checkpoint()
        assert blob["format"] == CHECKPOINT_FORMAT == "rsp-checkpoint/1"
        assert blob["digest"] == digest_hex(canonical_json_bytes(blob["state"]))
        assert unseal(blob, CHECKPOINT_FORMAT) == blob["state"]

    def test_sealed_blob_survives_json_and_restores(self, client):
        blob = json.loads(json.dumps(client.checkpoint()))
        restored = restore(blob, client)
        assert restored.checkpoint() == client.checkpoint()

    def test_tampered_checkpoint_is_rejected_not_restored(self, client):
        blob = client.checkpoint()
        blob["state"]["wallet"]["minted"] = 999  # one flipped field
        with pytest.raises(CorruptStateError, match="digest"):
            restore(blob, client)

    def test_wrong_format_tag_is_rejected(self, client):
        blob = client.checkpoint()
        blob["format"] = "rsp-snapshot/1"
        with pytest.raises(CorruptStateError):
            restore(blob, client)

    def test_legacy_flat_checkpoint_still_restores(self, client):
        # Pre-sealing installs persisted the state dict directly; their
        # checkpoints carry no digest and restore unverified but intact.
        flat = json.loads(json.dumps(client._checkpoint_state()))
        restored = restore(flat, client)
        assert restored.checkpoint() == client.checkpoint()
