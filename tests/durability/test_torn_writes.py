"""Torn-write property: damage at EVERY byte offset of the final record.

The crash model: the process died while (or just after) appending the
last frame, leaving either a truncation or flipped bits at the tail.  For
every byte offset inside the final record's frame the reader must either
recover cleanly to a *prefix* of the original records (torn tail) or fail
loudly with :class:`WalCorruptionError` — it may never return a record it
did not write, and never silently pass damaged state through.
"""

import pytest

from repro.durability.journal import DurableJournal, attach_journal, list_segments
from repro.durability.recovery import recover_server
from repro.durability.wal import WalCorruptionError, WriteAheadLog, read_wal

from tests.durability.conftest import (
    comparable_state,
    make_server,
    synth_deliveries,
)

RECORDS = [
    {"seq": 1, "kind": "interaction", "entity_id": "e-01", "duration": 181.25},
    {"seq": 2, "kind": "opinion", "rating": 4.0, "nonce": "c0ffee"},
    {"seq": 3, "kind": "interaction", "entity_id": "e-02", "duration": 42.0},
]


@pytest.fixture(scope="module")
def segment(tmp_path_factory):
    path = tmp_path_factory.mktemp("torn") / "wal.log"
    wal = WriteAheadLog(path)
    for record in RECORDS:
        wal.append_record(record)
    wal.close()
    clean = read_wal(path)
    assert not clean.torn
    return path, path.read_bytes(), clean.offsets


def read_outcome(path):
    """(records, torn) on success, or the raised WalCorruptionError."""
    try:
        result = read_wal(path)
    except WalCorruptionError as error:
        return error
    return result.records, result.torn


class TestEveryTruncationOffset:
    def test_truncation_inside_final_record_recovers_previous(
        self, segment, tmp_path
    ):
        path, data, offsets = segment
        target = tmp_path / "wal.log"
        final_start = offsets[-1]
        for cut in range(final_start, len(data)):
            target.write_bytes(data[:cut])
            result = read_wal(target)
            assert result.records == RECORDS[:-1], f"cut at {cut}"
            assert result.torn == (cut != final_start), f"cut at {cut}"
            assert result.valid_bytes == final_start

    def test_truncation_at_any_earlier_offset_yields_a_prefix(
        self, segment, tmp_path
    ):
        path, data, offsets = segment
        target = tmp_path / "wal.log"
        for cut in range(len(data)):
            target.write_bytes(data[:cut])
            records, torn = read_outcome(target)
            n = len(records)
            assert records == RECORDS[:n], f"cut at {cut}"
            assert torn or cut in (*offsets, len(data), 0), f"cut at {cut}"


class TestEveryBitFlipOffset:
    def test_flip_in_final_record_is_torn_or_loud_never_silent(
        self, segment, tmp_path
    ):
        path, data, offsets = segment
        target = tmp_path / "wal.log"
        final_start = offsets[-1]
        for position in range(final_start, len(data)):
            for bit in (0x01, 0x80):
                damaged = bytearray(data)
                damaged[position] ^= bit
                target.write_bytes(bytes(damaged))
                outcome = read_outcome(target)
                if isinstance(outcome, WalCorruptionError):
                    continue  # loud is acceptable
                records, torn = outcome
                assert torn, f"silent acceptance of flip at {position}"
                assert records == RECORDS[:-1], f"flip at {position}"

    def test_flip_in_earlier_records_never_fabricates_state(
        self, segment, tmp_path
    ):
        path, data, offsets = segment
        target = tmp_path / "wal.log"
        for position in range(offsets[0], offsets[-1]):
            damaged = bytearray(data)
            damaged[position] ^= 0x10
            target.write_bytes(bytes(damaged))
            outcome = read_outcome(target)
            if isinstance(outcome, WalCorruptionError):
                continue  # mid-file damage correctly refuses to replay
            records, _torn = outcome
            # A flip in a length header can only shorten the readable
            # prefix; every surviving record must be an original.
            assert records == RECORDS[: len(records)], f"flip at {position}"


class TestJournalLevelTornTail:
    """The same property one level up: a journal crash with a torn tail
    recovers to exactly the pre-crash acceptance state."""

    @pytest.mark.parametrize("torn_bytes", [1, 5, 11, 64])
    def test_crash_with_garbage_tail_recovers_cleanly(
        self, catalog, tmp_path, torn_bytes
    ):
        directory = tmp_path / "durable"
        server = make_server(catalog)
        journal = DurableJournal(directory)
        attach_journal(server, journal)
        server.receive_all(synth_deliveries(catalog, 0, 30))
        expected = comparable_state(server)
        journal.crash(torn_bytes=torn_bytes)

        recovered = make_server(catalog)
        report = recover_server(recovered, directory)
        assert report.torn_tail
        assert report.n_replayed == 30
        assert comparable_state(recovered) == expected

    def test_truncated_final_frame_loses_only_the_last_accept(
        self, catalog, tmp_path
    ):
        directory = tmp_path / "durable"
        server = make_server(catalog)
        attach_journal(server, DurableJournal(directory))
        server.receive_all(synth_deliveries(catalog, 0, 30))
        server.journal.close()
        [(_start, path)] = list_segments(directory)[0]
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 3])

        recovered = make_server(catalog)
        report = recover_server(recovered, directory)
        assert report.torn_tail
        assert report.n_replayed == 29
        baseline = make_server(catalog)
        baseline.receive_all(synth_deliveries(catalog, 0, 29))
        assert comparable_state(recovered) == comparable_state(baseline)
