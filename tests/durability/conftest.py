"""Shared harness for the durability suite.

Direct-intake workloads (no anonymity network, no tokens) keep the
crash-matrix iterations cheap: deliveries are synthesized deterministically
from an index, so any subset — and any re-delivery — is reproducible.
"""

from pathlib import Path

import pytest

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.durability.snapshot import capture_state
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.scale.server import ShardedRSPServer
from repro.service.server import RSPServer
from repro.world.population import TownConfig, build_town

FIXTURE_SEED = 7


@pytest.fixture(scope="session")
def catalog():
    return build_town(TownConfig(n_users=20), seed=FIXTURE_SEED).entities


def make_server(catalog, n_shards=1):
    """A token-free server (monolith or sharded) for direct intake."""
    if n_shards == 1:
        return RSPServer(catalog=catalog, require_tokens=False, key_bits=256)
    return ShardedRSPServer(
        catalog=catalog, require_tokens=False, key_bits=256, n_shards=n_shards
    )


def synth_deliveries(catalog, lo, hi, duplicate_every=0):
    """Deterministic deliveries ``[lo, hi)``: interactions, opinions, dups.

    Every fourth index is an opinion upload (with a cycling per-slot
    ``seq``); ``duplicate_every`` re-delivers every Nth envelope verbatim
    — the at-least-once channel the nonce table exists for.
    """
    ids = sorted(entity.entity_id for entity in catalog)
    out = []
    for i in range(lo, hi):
        entity_id = ids[i % len(ids)]
        if i % 4 == 3:
            record = OpinionUpload(
                history_id=f"hist-{i % 20:05d}",
                entity_id=ids[(i % 20) % len(ids)],
                rating=float(1 + i % 5),
                seq=i // 20,
            )
        else:
            record = InteractionUpload(
                history_id=f"hist-{i:05d}",
                entity_id=entity_id,
                interaction_type="visit" if i % 2 else "call",
                event_time=600.0 * i,
                duration=300.0 + i,
                travel_km=0.5 * (i % 7),
            )
        envelope = Envelope(record=record, token=None, nonce=i.to_bytes(16, "big"))
        out.append(
            Delivery(
                payload=envelope,
                arrival_time=600.0 * i + 120.0,
                channel_tag=f"ch-{i}",
            )
        )
        if duplicate_every and i % duplicate_every == 0:
            out.append(
                Delivery(
                    payload=envelope,
                    arrival_time=600.0 * i + 180.0,
                    channel_tag=f"ch-{i}-dup",
                )
            )
    return out


def comparable_state(server):
    """Everything recovery must reproduce byte-for-byte.

    The rejection-side counters (``duplicates_suppressed``,
    ``rejected_envelopes``) are deliberately not journaled — only accepted
    mutations are — so they are excluded; ``accepted_envelopes`` and
    ``opinions_stale`` *are* reproduced (stale-accepted opinions are
    journaled and replay re-runs the ``seq`` rule).
    """
    state = {
        key: value
        for key, value in capture_state(server).items()
        if key not in ("wal_seq", "counters")
    }
    return state, server.accepted_envelopes, server.opinions_stale


def final_digest(server, now):
    """Maintenance report + summaries, the byte-identity comparison unit."""
    report = server.run_maintenance(now=now)
    summaries = repr(sorted(server._summaries.items()))
    return repr(report), summaries


def copy_durable_dir(source: Path, destination: Path) -> Path:
    """Copy a durable directory (flat: segments + snapshots)."""
    destination.mkdir(parents=True, exist_ok=True)
    for path in Path(source).iterdir():
        (destination / path.name).write_bytes(path.read_bytes())
    return destination
