"""The headline crash matrix: kill the RSP at every WAL frame boundary.

For both deployments (monolith, 4-shard) and both channel modes (clean,
chaotic with re-deliveries), the workload runs reviews → batch 1 →
maintenance → snapshot → batch 2, then the durable directory is cloned
and the post-snapshot segment truncated at every frame boundary *and*
every mid-frame byte — the full space of prefixes a crash can leave.

Each crash point must satisfy the recovery invariant end to end:

    recover(fresh, dir) + redeliver(batch 2) ≡ never crashed

compared on both the logical store state (``comparable_state``) and the
byte-identity unit (maintenance report + summaries).  Re-delivering the
*entire* second batch is the point: mutations the truncation lost were
never acknowledged, so the channel re-sends them and they are accepted
anew; mutations that survived are suppressed by the recovered nonce
table.  Either way the end state is the same.
"""

import pytest

from repro.durability.journal import DurableJournal, attach_journal, list_segments
from repro.durability.recovery import recover_server
from repro.durability.wal import read_wal
from repro.util.clock import DAY

from tests.durability.conftest import (
    comparable_state,
    copy_durable_dir,
    final_digest,
    make_server,
    synth_deliveries,
)

BATCH_1 = (0, 40)
BATCH_2 = (40, 64)
FINAL_NOW = 2 * DAY


def run_workload(catalog, directory, n_shards, duplicate_every):
    """The canonical crash-matrix workload; returns (server, batch2)."""
    server = make_server(catalog, n_shards)
    journal = DurableJournal(
        directory,
        n_lanes=n_shards,
        lane_of=server.router.shard_of if n_shards > 1 else None,
    )
    attach_journal(server, journal)
    # Reviews go only *before* the snapshot: a review carries no nonce, so
    # re-delivering one would double it — the matrix keeps every review
    # inside the snapshot's coverage and crashes only the batch-2 tail.
    ids = sorted(entity.entity_id for entity in catalog)
    for k in range(3):
        server.post_review(f"reviewer-{k}", ids[k], 2 + k, 40.0 * (k + 1))
    server.receive_all(synth_deliveries(catalog, *BATCH_1, duplicate_every))
    server.run_maintenance(now=DAY)
    journal.take_snapshot(server)
    batch2 = synth_deliveries(catalog, *BATCH_2, duplicate_every)
    server.receive_all(batch2)
    journal.close()
    return server, batch2


def crash_points(directory):
    """Every interesting cut of each lane's post-snapshot segment.

    Frame boundaries (``offsets`` + the clean end) model a crash between
    appends; mid-frame bytes model a torn append.  Together they cover
    losing 0..all of the batch-2 records in every possible way a
    truncation can.
    """
    points = []
    for _lane, segments in sorted(list_segments(directory).items()):
        _start, path = segments[-1]
        result = read_wal(path)
        assert not result.torn
        boundaries = list(result.offsets) + [result.valid_bytes]
        points.extend((path.name, cut) for cut in boundaries)
        points.extend(
            (path.name, (a + b) // 2) for a, b in zip(boundaries, boundaries[1:])
        )
    return points


@pytest.mark.parametrize("duplicate_every", [0, 7], ids=["clean", "chaos"])
@pytest.mark.parametrize("n_shards", [1, 4], ids=["monolith", "sharded"])
def test_crash_at_every_frame_boundary_recovers_identically(
    catalog, tmp_path, n_shards, duplicate_every
):
    baseline_dir = tmp_path / "baseline"
    baseline, batch2 = run_workload(catalog, baseline_dir, n_shards, duplicate_every)
    expected_state = comparable_state(baseline)
    expected_digest = final_digest(baseline, now=FINAL_NOW)

    points = crash_points(baseline_dir)
    n_accepted_batch2 = BATCH_2[1] - BATCH_2[0]
    # Every accepted batch-2 record contributes one boundary and one
    # mid-frame point; duplicates are suppressed pre-WAL so chaos mode
    # changes the delivery stream, never the journaled frame count.
    assert len(points) == 2 * n_accepted_batch2 + n_shards

    for index, (lane_name, cut) in enumerate(points):
        work = copy_durable_dir(baseline_dir, tmp_path / f"crash-{index:03d}")
        lane_path = work / lane_name
        lane_path.write_bytes(lane_path.read_bytes()[:cut])

        recovered = make_server(catalog, n_shards)
        report = recover_server(recovered, work)
        assert report.snapshot_seq > 0, (lane_name, cut)
        recovered.receive_all(batch2)
        assert comparable_state(recovered) == expected_state, (lane_name, cut)
        assert final_digest(recovered, now=FINAL_NOW) == expected_digest, (
            lane_name,
            cut,
        )


@pytest.mark.parametrize("n_shards", [1, 4], ids=["monolith", "sharded"])
def test_cold_replay_without_any_snapshot(catalog, tmp_path, n_shards):
    """A crash before the first snapshot recovers from the WAL alone."""
    directory = tmp_path / "durable"
    server = make_server(catalog, n_shards)
    journal = DurableJournal(
        directory,
        n_lanes=n_shards,
        lane_of=server.router.shard_of if n_shards > 1 else None,
    )
    attach_journal(server, journal)
    server.receive_all(synth_deliveries(catalog, *BATCH_1))
    server.receive_all(synth_deliveries(catalog, *BATCH_2))
    journal.close()
    expected_state = comparable_state(server)

    recovered = make_server(catalog, n_shards)
    report = recover_server(recovered, directory)
    assert report.snapshot_seq == 0
    assert report.n_replayed == BATCH_2[1]
    assert not report.torn_tail
    assert comparable_state(recovered) == expected_state
