"""Every ``RSPServer.receive`` rejection path, counted exactly once.

The epoch dashboards (and the chaos acceptance criteria) rely on
``rejected_envelopes`` / ``duplicates_suppressed`` / ``dropped_by_outage``
being disjoint, per-envelope-exact counters; these tests pin each intake
outcome to exactly one counter increment.
"""

import pytest

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.faults import FaultInjector, Window, outage_plan
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.tokens import TokenWallet, UploadToken
from repro.service.server import RSPServer
from repro.world.population import TownConfig, build_town


@pytest.fixture()
def server_and_town():
    town = build_town(TownConfig(n_users=5), seed=31)
    server = RSPServer(catalog=town.entities, key_seed=31, key_bits=256)
    return server, town


def tokens_for(server, count=1, device="dev", seed=0):
    wallet = TokenWallet(device_id=device, seed=seed)
    blinded = wallet.mint(server.issuer.public_key, count)
    wallet.accept_signatures(
        server.issuer.public_key, server.issuer.issue(device, blinded, now=0.0)
    )
    return [wallet.spend() for _ in range(count)]


def delivery_of(record, token, arrival=1.0, nonce=None, tag="c"):
    return Delivery(
        payload=Envelope(record=record, token=token, nonce=nonce),
        arrival_time=arrival,
        channel_tag=tag,
    )


def interaction_record(identity, entity_id, t=0.0):
    return InteractionUpload(
        history_id=identity.history_id(entity_id),
        entity_id=entity_id,
        interaction_type="visit",
        event_time=t,
        duration=1800.0,
        travel_km=2.0,
    )


def counters(server):
    return (
        server.rejected_envelopes,
        server.duplicates_suppressed,
        server.dropped_by_outage,
        server.accepted_envelopes,
    )


class TestRejectionPathsCountOnce:
    def test_missing_token(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        record = interaction_record(identity, town.entities[0].entity_id)
        assert not server.receive(delivery_of(record, None, nonce=b"n1"))
        assert counters(server) == (1, 0, 0, 0)

    def test_forged_token(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        record = interaction_record(identity, town.entities[0].entity_id)
        forged = UploadToken(token_id=b"fake", signature=99)
        assert not server.receive(delivery_of(record, forged, nonce=b"n1"))
        assert counters(server) == (1, 0, 0, 0)

    def test_double_spent_token(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        [token] = tokens_for(server)
        assert server.receive(
            delivery_of(interaction_record(identity, entity_id), token, nonce=b"n1")
        )
        assert not server.receive(
            delivery_of(
                interaction_record(identity, entity_id, t=9.0), token, nonce=b"n2"
            )
        )
        assert counters(server) == (1, 0, 0, 1)

    def test_unknown_entity_interaction(self, server_and_town):
        server, _ = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        [token] = tokens_for(server)
        record = interaction_record(identity, "no-such-entity")
        assert not server.receive(delivery_of(record, token, nonce=b"n1"))
        assert counters(server) == (1, 0, 0, 0)

    def test_unknown_entity_opinion(self, server_and_town):
        server, _ = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        [token] = tokens_for(server)
        record = OpinionUpload(
            history_id=identity.history_id("no-such-entity"),
            entity_id="no-such-entity",
            rating=4.0,
        )
        assert not server.receive(delivery_of(record, token, nonce=b"n1"))
        assert counters(server) == (1, 0, 0, 0)

    def test_unknown_record_type(self, server_and_town):
        server, _ = server_and_town
        [token] = tokens_for(server)
        assert not server.receive(delivery_of("not-a-record", token, nonce=b"n1"))
        assert counters(server) == (1, 0, 0, 0)

    def test_history_entity_mismatch(self, server_and_town):
        """An identifier bound to one entity cannot be reused for another
        (the store's corruption defence); the bounce is a rejection."""
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        first, second = town.entities[0].entity_id, town.entities[1].entity_id
        token_a, token_b = tokens_for(server, count=2)
        assert server.receive(
            delivery_of(interaction_record(identity, first), token_a, nonce=b"n1")
        )
        mismatched = InteractionUpload(
            history_id=identity.history_id(first),  # bound to ``first``...
            entity_id=second,  # ...but claiming ``second``
            interaction_type="visit",
            event_time=5.0,
            duration=600.0,
            travel_km=1.0,
        )
        assert not server.receive(delivery_of(mismatched, token_b, nonce=b"n2"))
        assert counters(server) == (1, 0, 0, 1)


class TestNonRejectionOutcomes:
    def test_duplicate_nonce_is_suppression_not_rejection(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        token_a, token_b = tokens_for(server, count=2)
        record = interaction_record(identity, entity_id)
        assert server.receive(delivery_of(record, token_a, nonce=b"n1"))
        assert not server.receive(delivery_of(record, token_b, nonce=b"n1"))
        assert counters(server) == (0, 1, 0, 1)
        assert server.history_store.n_records == 1
        assert server.n_unique_nonces == 1

    def test_outage_drop_is_not_a_rejection(self, server_and_town):
        server, town = server_and_town
        server.fault_hook = FaultInjector(
            outage_plan(server_window=Window(0.0, 10.0))
        )
        identity = DeviceIdentity.create("u", seed=1)
        [token] = tokens_for(server)
        record = interaction_record(identity, town.entities[0].entity_id)
        assert not server.receive(delivery_of(record, token, arrival=5.0, nonce=b"n1"))
        assert counters(server) == (0, 0, 1, 0)

    def test_outage_consumes_neither_token_nor_nonce(self, server_and_town):
        """A retransmitted copy of an envelope lost to an outage must still
        land: the down endpoint processed nothing."""
        server, town = server_and_town
        server.fault_hook = FaultInjector(
            outage_plan(server_window=Window(0.0, 10.0))
        )
        identity = DeviceIdentity.create("u", seed=1)
        [token] = tokens_for(server)
        record = interaction_record(identity, town.entities[0].entity_id)
        assert not server.receive(delivery_of(record, token, arrival=5.0, nonce=b"n1"))
        # Same token, same nonce, after the outage: accepted.
        assert server.receive(delivery_of(record, token, arrival=15.0, nonce=b"n1"))
        assert counters(server) == (0, 0, 1, 1)

    def test_rejected_nonce_can_be_repaired_and_resent(self, server_and_town):
        """A nonce is marked seen only on acceptance, so a record bounced
        for a fixable reason can be retransmitted under the same nonce."""
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        token_a, token_b = tokens_for(server, count=2)
        bad = interaction_record(identity, "no-such-entity")
        assert not server.receive(delivery_of(bad, token_a, nonce=b"n1"))
        good = interaction_record(identity, town.entities[0].entity_id)
        assert server.receive(delivery_of(good, token_b, nonce=b"n1"))
        assert counters(server) == (1, 0, 0, 1)

    def test_unauthenticated_sender_cannot_squat_a_nonce(self, server_and_town):
        """Token checking precedes dedup: a tokenless envelope must not
        reserve a nonce and suppress someone's later legitimate record."""
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        record = interaction_record(identity, town.entities[0].entity_id)
        assert not server.receive(delivery_of(record, None, nonce=b"n1"))
        [token] = tokens_for(server)
        assert server.receive(delivery_of(record, token, nonce=b"n1"))
        assert counters(server) == (1, 0, 0, 1)

    def test_nonce_free_envelopes_still_accepted(self, server_and_town):
        """Legacy envelopes without a nonce flow through untouched — dedup
        is opt-in per envelope."""
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        [token] = tokens_for(server)
        record = interaction_record(identity, town.entities[0].entity_id)
        assert server.receive(delivery_of(record, token))
        assert counters(server) == (0, 0, 0, 1)
        assert server.n_unique_nonces == 0
