"""Regression: failed token issuance must roll blinded candidates back.

``TokenWallet.accept_signatures`` pairs signatures with pending blindings
strictly FIFO.  Before the rollback fix, an issuance that failed *after*
``wallet.mint`` left its blindings orphaned at the head of the queue, so
the next successful issuance paired fresh signatures with stale blindings
and every token it produced failed verification — a silent, permanent
wedge of the upload pipeline.
"""

import pytest

from repro.client.app import RSPClient
from repro.faults import FaultInjector, Window, outage_plan
from repro.privacy.tokens import (
    IssuerUnavailable,
    TokenIssuer,
    TokenRedeemer,
    TokenWallet,
)
from repro.util.clock import DAY, HOUR
from repro.world.entities import Entity
from repro.world.geography import Point


class StaleQuotaIssuer(TokenIssuer):
    """An issuer whose advertised quota over-promises — the skew a client
    with a stale cached quota view experiences."""

    def remaining_quota(self, device_id: str, now: float) -> int:
        return super().remaining_quota(device_id, now) + 2


def minimal_client(seed=5):
    from repro.core.classifier import OpinionClassifier, synthetic_training_pairs
    from repro.world.entities import EntityKind

    entity = Entity(
        entity_id="e1",
        kind=EntityKind.RESTAURANT,
        category="thai",
        location=Point(0.0, 0.0),
        quality=4.0,
    )
    classifier = OpinionClassifier()
    classifier.fit(*synthetic_training_pairs(40, seed=seed))
    return RSPClient(
        device_id="dev", catalog=[entity], classifier=classifier, seed=seed
    )


class TestWalletDiscardPending:
    def test_discard_removes_only_named_blindings(self):
        issuer = TokenIssuer(quota_per_day=10, key_seed=1, key_bits=256)
        wallet = TokenWallet(device_id="dev", seed=1)
        first = wallet.mint(issuer.public_key, 2)
        second = wallet.mint(issuer.public_key, 1)
        assert wallet.n_pending_blindings == 3
        assert wallet.discard_pending(first) == 2
        assert wallet.n_pending_blindings == 1
        # The surviving blinding still pairs with its signature.
        wallet.accept_signatures(
            issuer.public_key, issuer.issue("dev", second, now=0.0)
        )
        assert wallet.balance == 1

    def test_quota_exceeded_rolls_back_and_next_day_tokens_verify(self):
        issuer = StaleQuotaIssuer(quota_per_day=2, key_seed=2, key_bits=256)
        client = minimal_client(seed=2)
        # The over-promised quota makes the client mint 4 blindings; the
        # issuer signs none (the request exceeds the true quota of 2) and
        # raises QuotaExceeded after the mint.
        got = client.acquire_tokens(issuer, 4, now=0.0)
        assert got == 0
        assert client.wallet.n_pending_blindings == 0  # the regression
        assert client.wallet.balance == 0
        # Next day the quota renews; issuance must produce *valid* tokens.
        got = client.acquire_tokens(issuer, 2, now=1.5 * DAY)
        assert got == 2
        redeemer = TokenRedeemer(issuer.public_key)
        assert redeemer.redeem(client.wallet.spend())
        assert redeemer.redeem(client.wallet.spend())


class TestIssuerOutageBackoff:
    def outage_issuer(self, window: Window):
        issuer = TokenIssuer(quota_per_day=10, key_seed=3, key_bits=256)
        issuer.fault_hook = FaultInjector(outage_plan(issuer_window=window))
        return issuer

    def test_issue_raises_issuer_unavailable_during_outage(self):
        issuer = self.outage_issuer(Window(0.0, 100.0))
        with pytest.raises(IssuerUnavailable):
            issuer.issue("dev", [1], now=50.0)
        assert issuer.refused_while_down == 1

    def test_outage_consumes_no_quota(self):
        issuer = self.outage_issuer(Window(0.0, 100.0))
        before = issuer.remaining_quota("dev", 50.0)
        with pytest.raises(IssuerUnavailable):
            issuer.issue("dev", [1], now=50.0)
        assert issuer.remaining_quota("dev", 50.0) == before

    def test_backoff_rides_out_a_short_outage(self):
        # Down for the first two attempts (0s, +300s); back before +1800s.
        client = minimal_client(seed=4)
        issuer = self.outage_issuer(Window(0.0, 1000.0))
        got = client.acquire_tokens(issuer, 3, now=0.0)
        assert got == 3
        assert client.wallet.balance == 3
        assert client.stats.issuer_retries == 2
        assert client.stats.issuer_failures == 0
        redeemer = TokenRedeemer(issuer.public_key)
        assert redeemer.redeem(client.wallet.spend())

    def test_exhausted_backoff_rolls_back_and_recovers_later(self):
        # Down past the whole backoff schedule (0 + 300 + 1800 + 7200 s).
        client = minimal_client(seed=6)
        issuer = self.outage_issuer(Window(0.0, 10_000.0))
        got = client.acquire_tokens(issuer, 3, now=0.0)
        assert got == 0
        assert client.stats.issuer_failures == 1
        assert client.wallet.n_pending_blindings == 0  # rolled back
        # Hours later the issuer is back; a fresh acquisition must yield
        # tokens that verify (no FIFO desync from the failed round).
        got = client.acquire_tokens(issuer, 2, now=10_000.0 + HOUR)
        assert got == 2
        redeemer = TokenRedeemer(issuer.public_key)
        assert redeemer.redeem(client.wallet.spend())
        assert redeemer.redeem(client.wallet.spend())
