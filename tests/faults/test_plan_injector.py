"""Unit tests for fault plans and the injector's deterministic decisions."""

import pytest

from repro.faults import (
    ClientCrash,
    ClockSkew,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultInjector,
    FaultPlan,
    Window,
    lossy_plan,
    outage_plan,
)


class TestPlanValidation:
    def test_window_is_half_open(self):
        window = Window(10.0, 20.0)
        assert window.contains(10.0)
        assert window.contains(19.999)
        assert not window.contains(20.0)
        assert window.duration == 10.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            Window(5.0, 5.0)
        with pytest.raises(ValueError):
            Window(5.0, 1.0)

    def test_drop_rate_bounds(self):
        with pytest.raises(ValueError):
            DropFault(Window(0.0, 1.0), rate=1.5)
        with pytest.raises(ValueError):
            DropFault(Window(0.0, 1.0), rate=-0.1)

    def test_delay_must_be_non_negative(self):
        with pytest.raises(ValueError):
            DelayFault(Window(0.0, 1.0), max_extra=-1.0)

    def test_duplicate_rate_and_offset_bounds(self):
        with pytest.raises(ValueError):
            DuplicateFault(Window(0.0, 1.0), rate=2.0)
        with pytest.raises(ValueError):
            DuplicateFault(Window(0.0, 1.0), rate=0.5, max_offset=-1.0)

    def test_crash_targeting(self):
        everyone = ClientCrash(time=100.0)
        assert everyone.affects("any-device")
        targeted = ClientCrash(time=100.0, device_ids=frozenset({"a"}))
        assert targeted.affects("a")
        assert not targeted.affects("b")

    def test_skew_targeting(self):
        fleet_wide = ClockSkew(offset=30.0)
        assert fleet_wide.applies_to("x")
        single = ClockSkew(offset=-10.0, device_id="x")
        assert single.applies_to("x")
        assert not single.applies_to("y")

    def test_is_empty_and_describe(self):
        assert FaultPlan().is_empty
        plan = lossy_plan(0.2, horizon=100.0, seed=7)
        assert not plan.is_empty
        assert "seed=7" in plan.describe()
        assert "drop window" in plan.describe()

    def test_outage_plan_constructor(self):
        plan = outage_plan(
            server_window=Window(0.0, 10.0), issuer_window=Window(5.0, 15.0)
        )
        assert len(plan.server_outages) == 1
        assert len(plan.issuer_outages) == 1
        assert outage_plan().is_empty


class TestInjectorNetwork:
    def test_certain_drop_loses_everything(self):
        injector = FaultInjector(lossy_plan(1.0, horizon=100.0))
        for t in (0.0, 50.0, 99.9):
            assert injector.network_fates(t) == []
        assert injector.messages_dropped == 3

    def test_no_faults_passes_through_unchanged(self):
        injector = FaultInjector(FaultPlan())
        assert injector.network_fates(42.0) == [42.0]
        assert injector.messages_dropped == 0

    def test_drop_outside_window_never_fires(self):
        injector = FaultInjector(lossy_plan(1.0, horizon=100.0))
        assert injector.network_fates(100.0) == [100.0]

    def test_partial_drop_rate_is_roughly_respected(self):
        injector = FaultInjector(lossy_plan(0.3, horizon=10_000.0, seed=3))
        fates = [injector.network_fates(float(t)) for t in range(1000)]
        lost = sum(1 for f in fates if not f)
        assert 200 < lost < 400

    def test_delay_adds_bounded_extra(self):
        plan = FaultPlan(delays=(DelayFault(Window(0.0, 100.0), max_extra=60.0),))
        injector = FaultInjector(plan)
        [fate] = injector.network_fates(10.0)
        assert 10.0 <= fate <= 70.0
        assert injector.messages_delayed in (0, 1)

    def test_certain_duplication_yields_two_fates(self):
        plan = FaultPlan(
            duplicates=(DuplicateFault(Window(0.0, 100.0), rate=1.0, max_offset=30.0),)
        )
        injector = FaultInjector(plan)
        fates = injector.network_fates(10.0)
        assert len(fates) == 2
        assert fates[0] == 10.0
        assert 10.0 <= fates[1] <= 40.0
        assert injector.messages_duplicated == 1

    def test_same_seed_same_decisions(self):
        plan = lossy_plan(0.5, horizon=1000.0, seed=11)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        sequence_a = [a.network_fates(float(t)) for t in range(200)]
        sequence_b = [b.network_fates(float(t)) for t in range(200)]
        assert sequence_a == sequence_b

    def test_different_seed_different_decisions(self):
        a = FaultInjector(lossy_plan(0.5, horizon=1000.0, seed=1))
        b = FaultInjector(lossy_plan(0.5, horizon=1000.0, seed=2))
        sequence_a = [bool(a.network_fates(float(t))) for t in range(200)]
        sequence_b = [bool(b.network_fates(float(t))) for t in range(200)]
        assert sequence_a != sequence_b


class TestInjectorOutagesCrashesSkew:
    def test_server_down_counts_each_loss(self):
        injector = FaultInjector(outage_plan(server_window=Window(10.0, 20.0)))
        assert injector.server_down(15.0)
        assert injector.server_down(16.0)
        assert not injector.server_down(25.0)
        assert injector.envelopes_lost_to_outage == 2

    def test_server_down_at_probe_is_side_effect_free(self):
        injector = FaultInjector(outage_plan(server_window=Window(10.0, 20.0)))
        assert injector.server_down_at(15.0)
        assert not injector.server_down_at(20.0)
        assert injector.envelopes_lost_to_outage == 0

    def test_issuer_down_counts_refusals(self):
        injector = FaultInjector(outage_plan(issuer_window=Window(0.0, 5.0)))
        assert injector.issuer_down(1.0)
        assert not injector.issuer_down(6.0)
        assert injector.issuance_refusals == 1

    def test_crashes_in_half_open_interval(self):
        plan = FaultPlan(crashes=(ClientCrash(10.0), ClientCrash(20.0)))
        injector = FaultInjector(plan)
        assert [c.time for c in injector.crashes_in(0.0, 20.0)] == [10.0]
        assert [c.time for c in injector.crashes_in(20.0, 30.0)] == [20.0]

    def test_skew_sums_applicable_offsets(self):
        plan = FaultPlan(
            skews=(ClockSkew(offset=30.0), ClockSkew(offset=-10.0, device_id="a"))
        )
        injector = FaultInjector(plan)
        assert injector.skew_for("a") == 20.0
        assert injector.skew_for("b") == 30.0

    def test_report_mirrors_counters(self):
        injector = FaultInjector(outage_plan(server_window=Window(0.0, 10.0)))
        injector.server_down(5.0)
        injector.note_crash()
        report = injector.report()
        assert report.envelopes_lost_to_outage == 1
        assert report.crashes_triggered == 1
        assert report.messages_dropped == 0
