"""The fault matrix: the epochs pipeline under scripted chaos.

Exercises `run_epochs` across a grid of drop / outage / crash / skew /
duplication plans and pins the acceptance criteria of the robustness
work: faulted runs complete without exceptions, the nonce-dedup table
suppresses every duplicate, bounded retransmission strictly improves
delivery under loss, and the whole thing is byte-for-byte deterministic
per fault-plan seed.  `make chaos` runs this module (with the rest of
``tests/faults``) as the CI chaos job.
"""

import pytest

from repro.faults import (
    ClientCrash,
    ClockSkew,
    DropFault,
    DuplicateFault,
    FaultPlan,
    IssuerOutage,
    ServerOutage,
    Window,
    lossy_plan,
)
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.uploads import RetransmitPolicy
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 60.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
EPOCH = HORIZON / N_EPOCHS
MAX_USERS = 8


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def run(world, plan, retransmit=None, seed=29):
    town, result, classifier = world
    config = PipelineConfig(
        horizon_days=HORIZON_DAYS, seed=seed, retransmit=retransmit
    )
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
    )


def total(outcome, field):
    return sum(getattr(report, field) for report in outcome.reports)


MATRIX = [
    pytest.param(lossy_plan(0.2, HORIZON + 30 * DAY, seed=1), id="drop-20"),
    pytest.param(lossy_plan(0.5, HORIZON + 30 * DAY, seed=2), id="drop-50"),
    pytest.param(
        FaultPlan(seed=3, server_outages=(ServerOutage(Window(EPOCH, 2 * EPOCH + 3 * DAY)),)),
        id="server-outage",
    ),
    pytest.param(
        FaultPlan(seed=4, issuer_outages=(IssuerOutage(Window(EPOCH, 2.5 * EPOCH)),)),
        id="issuer-outage",
    ),
    pytest.param(
        FaultPlan(seed=5, crashes=(ClientCrash(1.5 * EPOCH),)), id="crash-all"
    ),
    pytest.param(
        FaultPlan(
            seed=6,
            duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), rate=1.0),),
        ),
        id="duplicate-all",
    ),
    pytest.param(
        FaultPlan(seed=7, skews=(ClockSkew(offset=2 * HOUR),)), id="skew-2h"
    ),
    pytest.param(
        FaultPlan(
            seed=8,
            drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.2),),
            server_outages=(ServerOutage(Window(EPOCH, 2 * EPOCH)),),
            crashes=(ClientCrash(1.5 * EPOCH),),
            skews=(ClockSkew(offset=-HOUR, device_id="user-0001"),),
        ),
        id="combined",
    ),
]


class TestFaultMatrix:
    @pytest.mark.parametrize("plan", MATRIX)
    def test_run_completes_with_consistent_counters(self, world, plan):
        outcome = run(world, plan, retransmit=RetransmitPolicy(max_attempts=2))
        server, injector = outcome.server, outcome.injector
        assert outcome.n_epochs == N_EPOCHS
        # The dedup invariant: every accepted envelope has a fresh nonce,
        # so duplicates can never inflate the stores.
        assert server.accepted_envelopes == server.n_unique_nonces
        # Per-epoch deltas re-sum to the server/network totals.
        assert total(outcome, "rejected_envelopes") == server.rejected_envelopes
        assert total(outcome, "duplicates_suppressed") == server.duplicates_suppressed
        assert server.dropped_by_outage == injector.envelopes_lost_to_outage

    def test_network_duplicates_all_suppressed(self, world):
        """Rate-1.0 network duplication: every submission is delivered
        twice, and the server accepts exactly one copy of each."""
        plan = FaultPlan(
            seed=6,
            duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), rate=1.0),),
        )
        outcome = run(world, plan)
        server = outcome.server
        assert server.duplicates_suppressed > 0
        assert server.duplicates_suppressed == outcome.injector.messages_duplicated
        assert server.accepted_envelopes == server.n_unique_nonces

    def test_server_outage_defers_maintenance(self, world):
        plan = FaultPlan(
            seed=3,
            server_outages=(ServerOutage(Window(EPOCH, 2 * EPOCH + 3 * DAY)),),
        )
        outcome = run(world, plan)
        deferred = [r for r in outcome.reports if r.server_deferred]
        assert deferred
        for report in deferred:
            assert report.maintenance is None
            assert report.new_records == 0
        # The final epoch ingests the backlog the mix kept buffering.
        assert not outcome.reports[-1].server_deferred
        assert outcome.reports[-1].total_records > 0

    def test_issuer_outage_defers_envelopes_without_losing_them(self, world):
        plan = FaultPlan(
            seed=4, issuer_outages=(IssuerOutage(Window(0.0, HORIZON + 30 * DAY)),)
        )
        outcome = run(world, plan)
        # With the issuer down for the whole run (beyond every backoff),
        # nothing is ever submitted — but nothing is dropped either: all
        # records stay queued on-device awaiting tokens.
        assert outcome.server.history_store.n_records == 0
        assert sum(c.stats.issuer_failures for c in outcome.clients.values()) > 0
        assert sum(c.n_pending for c in outcome.clients.values()) > 0

    def test_crash_restore_happens_and_run_completes(self, world):
        plan = FaultPlan(seed=5, crashes=(ClientCrash(1.5 * EPOCH),))
        outcome = run(world, plan)
        assert outcome.injector.crashes_triggered == MAX_USERS
        assert total(outcome, "crash_restores") == MAX_USERS
        assert outcome.server.history_store.n_records > 0


class TestAcceptanceScenario:
    """ISSUE acceptance: 20% drop + one full-epoch server outage + one
    mid-horizon client crash–restore, with retransmission enabled."""

    PLAN = FaultPlan(
        seed=42,
        drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.2),),
        server_outages=(ServerOutage(Window(EPOCH, 2 * EPOCH)),),
        crashes=(ClientCrash(1.5 * EPOCH),),
    )
    POLICY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)

    def test_completes_and_suppresses_all_duplicates(self, world):
        outcome = run(world, self.PLAN, retransmit=self.POLICY)
        server = outcome.server
        assert outcome.n_epochs == N_EPOCHS
        assert total(outcome, "crash_restores") == MAX_USERS
        assert total(outcome, "retransmissions") > 0
        # No retransmitted copy ever lands twice:
        assert server.accepted_envelopes == server.n_unique_nonces
        assert server.history_store.n_records > 0

    def test_retransmission_strictly_improves_delivery(self, world):
        with_retry = run(world, self.PLAN, retransmit=self.POLICY)
        without = run(world, self.PLAN, retransmit=None)
        records_with = with_retry.server.history_store.n_records
        records_without = without.server.history_store.n_records
        assert records_with > records_without


class TestDeterminismGuard:
    def test_same_plan_seed_byte_identical_reports(self, world):
        plan = FaultPlan(
            seed=13,
            drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.3),),
            server_outages=(ServerOutage(Window(EPOCH, 1.2 * EPOCH)),),
            crashes=(ClientCrash(2.5 * EPOCH),),
            skews=(ClockSkew(offset=HOUR),),
        )
        policy = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)
        first = run(world, plan, retransmit=policy)
        second = run(world, plan, retransmit=policy)
        assert first.reports_digest() == second.reports_digest()
        assert first.server.history_store.n_records == (
            second.server.history_store.n_records
        )

    def test_different_plan_seed_diverges_under_partial_loss(self, world):
        first = run(world, lossy_plan(0.5, HORIZON + 30 * DAY, seed=100))
        second = run(world, lossy_plan(0.5, HORIZON + 30 * DAY, seed=101))
        assert first.injector.messages_dropped != second.injector.messages_dropped or (
            first.reports_digest() != second.reports_digest()
        )
