"""Replica outages in the chaos matrix: bounded staleness, never loss.

Extends the fault matrix with the replication-specific plans from the
durability work: a downed log-shipping channel (lag grows, then drains),
a simultaneous server + replica outage (retransmission covers both), and
a primary crash landing inside a maintenance-deferral window.  The
replication contract under all of them: deferral costs staleness only —
no accepted envelope is ever lost, and a replica-only outage leaves the
epoch reports byte-identical to an unfaulted run.
"""

import pytest

from repro.faults import (
    FaultPlan,
    PrimaryCrash,
    ReplicaOutage,
    ServerOutage,
    Window,
)
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.uploads import RetransmitPolicy
from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 60.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
EPOCH = HORIZON / N_EPOCHS
MAX_USERS = 8


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def run(world, durable_dir, plan=None, retransmit=None):
    town, result, classifier = world
    config = PipelineConfig(
        horizon_days=HORIZON_DAYS, seed=29, retransmit=retransmit
    )
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
        durable_dir=durable_dir,
        replicate=True,
    )


#: Covers the first two epochs' ingest points (``end + 2 days``); the
#: third epoch's shipment lands outside and drains the backlog.
TWO_EPOCH_OUTAGE = Window(EPOCH, 2 * EPOCH + 3 * DAY)


class TestReplicaOutage:
    def test_lag_grows_through_the_outage_and_drains_after(self, world, tmp_path):
        plan = FaultPlan(seed=21, replica_outages=(ReplicaOutage(TWO_EPOCH_OUTAGE),))
        outcome = run(world, tmp_path / "d", plan=plan)
        pair = outcome.replication
        assert not pair.promoted
        assert pair.deferred_batches == 2  # epochs 1 and 2 deferred whole
        assert outcome.injector.shipments_deferred == 2
        assert pair.max_lag > 0  # staleness was real...
        assert pair.lag == 0  # ...and the post-outage shipment drained it
        # The drained replica is the primary again, byte for byte.
        assert (
            pair.replica.accepted_envelopes == outcome.server.accepted_envelopes
        )

    def test_replica_outage_changes_no_report_field(self, world, tmp_path):
        """The shipping channel is invisible to the service path: a run
        whose replica link was down is byte-identical, report for report,
        to one whose link never flickered."""
        baseline = run(world, tmp_path / "baseline")
        plan = FaultPlan(seed=22, replica_outages=(ReplicaOutage(TWO_EPOCH_OUTAGE),))
        faulted = run(world, tmp_path / "faulted", plan=plan)
        assert [repr(r) for r in faulted.reports] == [
            repr(r) for r in baseline.reports
        ]
        assert faulted.server.accepted_envelopes == baseline.server.accepted_envelopes


class TestCompoundOutages:
    BOTH_DOWN = FaultPlan(
        seed=23,
        server_outages=(ServerOutage(Window(EPOCH, 2 * EPOCH + 3 * DAY)),),
        replica_outages=(ReplicaOutage(Window(EPOCH, 2 * EPOCH + 3 * DAY)),),
    )

    def test_server_and_replica_down_together_still_converges(self, world, tmp_path):
        outcome = run(
            world,
            tmp_path / "d",
            plan=self.BOTH_DOWN,
            retransmit=RetransmitPolicy(max_attempts=2),
        )
        server, pair = outcome.server, outcome.replication
        assert outcome.n_epochs == N_EPOCHS
        # Retransmission + dedup hold through the compound outage.
        assert server.accepted_envelopes == server.n_unique_nonces
        # The catch-up cycle shipped everything the outage deferred.
        assert pair.lag == 0
        assert pair.replica.accepted_envelopes == server.accepted_envelopes

    def test_compound_outage_is_deterministic(self, world, tmp_path):
        first = run(
            world,
            tmp_path / "a",
            plan=self.BOTH_DOWN,
            retransmit=RetransmitPolicy(max_attempts=2),
        )
        second = run(
            world,
            tmp_path / "b",
            plan=self.BOTH_DOWN,
            retransmit=RetransmitPolicy(max_attempts=2),
        )
        assert [repr(r) for r in first.reports] == [repr(r) for r in second.reports]
        assert first.server.accepted_envelopes == second.server.accepted_envelopes


class TestPromoteIntoDeferral:
    def test_failover_landing_inside_a_maintenance_deferral(self, world, tmp_path):
        """The primary dies in epoch 2 while a server outage is deferring
        that epoch's maintenance: promotion happens at the epoch-2
        boundary, the held backlog replays onto the *promoted* server at
        the catch-up cycle, and the dedup invariant survives the
        promotion boundary."""
        plan = FaultPlan(
            seed=24,
            primary_crashes=(PrimaryCrash(time=1.5 * EPOCH, torn_bytes=5),),
            server_outages=(ServerOutage(Window(2 * EPOCH, 2 * EPOCH + 3 * DAY)),),
        )
        outcome = run(
            world,
            tmp_path / "d",
            plan=plan,
            retransmit=RetransmitPolicy(max_attempts=2),
        )
        server, pair = outcome.server, outcome.replication
        assert pair.promoted
        assert server is pair.replica
        assert outcome.injector.primary_crashes_triggered == 1
        assert outcome.n_epochs == N_EPOCHS
        assert server.accepted_envelopes == server.n_unique_nonces
        # Epoch 3 ran a real maintenance cycle after the catch-up replay.
        assert outcome.reports[-1].maintenance is not None
