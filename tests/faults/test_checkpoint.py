"""Durable client checkpoints: JSON roundtrip and exact crash–restore.

The checkpoint is what survives a device crash, so it must (a) be plain
JSON — real apps persist it to disk — and (b) restore a client whose
observable behaviour is *identical* to the uncrashed one: same pending
queue, same nonces, same wallet, and the same channel-tag/delay stream
(an RNG discontinuity after restore would be a fingerprintable event).
"""

import json

import pytest

from repro.client.app import RSPClient
from repro.orchestration.pipeline import train_classifier
from repro.privacy.anonymity import batching_network
from repro.privacy.tokens import TokenIssuer
from repro.privacy.uploads import RetransmitPolicy
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def setting():
    town = build_town(TownConfig(n_users=40), seed=23)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=90), seed=23
    ).run()
    horizon = 90 * DAY
    classifier = train_classifier(town, result, horizon, seed=23)
    return town, result, horizon, classifier


def busiest_user(result):
    counts = {}
    for event in result.events:
        counts[event.user_id] = counts.get(event.user_id, 0) + 1
    return max(counts, key=counts.get)


def observed_client(setting, seed=7, retransmit=None):
    town, result, horizon, classifier = setting
    user_id = busiest_user(result)
    client = RSPClient(
        device_id=user_id,
        catalog=town.entities,
        classifier=classifier,
        seed=seed,
        retransmit=retransmit,
    )
    trace = generate_trace(
        user_id, town, result, horizon, duty_cycled_policy(), seed=23
    )
    client.observe_trace(trace, now=horizon)
    return client, horizon


def roundtrip(client):
    """checkpoint → JSON text → restore: what a real crash path does."""
    state = json.loads(json.dumps(client.checkpoint()))
    return RSPClient.restore(
        state,
        catalog=list(client.catalog.values()),
        classifier=client.classifier,
        retransmit=client.retransmit,
    )


class TestJsonRoundtrip:
    def test_checkpoint_is_json_stable(self, setting):
        """checkpoint → JSON → restore → checkpoint is a fixpoint."""
        client, _ = observed_client(setting)
        text = json.dumps(client.checkpoint(), sort_keys=True)
        restored = roundtrip(client)
        assert json.dumps(restored.checkpoint(), sort_keys=True) == text

    def test_pending_queue_survives(self, setting):
        client, _ = observed_client(setting)
        restored = roundtrip(client)
        assert len(restored._pending) == len(client._pending)
        for ours, theirs in zip(client._pending, restored._pending):
            assert ours.record == theirs.record
            assert ours.nonce == theirs.nonce
            assert ours.base_time == theirs.base_time
            assert ours.attempts == theirs.attempts

    def test_identity_and_staged_sets_survive(self, setting):
        client, _ = observed_client(setting)
        restored = roundtrip(client)
        assert restored.identity.device_id == client.identity.device_id
        assert restored.identity.secret == client.identity.secret
        assert restored._staged_interactions == client._staged_interactions
        assert restored._staged_opinions == client._staged_opinions
        assert restored.stats == client.stats

    def test_wallet_tokens_survive_and_spend(self, setting):
        client, horizon = observed_client(setting)
        issuer = TokenIssuer(quota_per_day=5, key_seed=7, key_bits=256)
        client.acquire_tokens(issuer, 3, now=horizon)
        assert client.wallet.balance == 3
        restored = roundtrip(client)
        assert restored.wallet.balance == 3
        from repro.privacy.tokens import TokenRedeemer

        redeemer = TokenRedeemer(issuer.public_key)
        assert redeemer.redeem(restored.wallet.spend())

    def test_suppression_override_survives(self, setting):
        client, _ = observed_client(setting)
        entries = client.transparency.audit()
        if not entries:
            pytest.skip("user formed no inferences in this world")
        target = entries[0].entity_id
        client.transparency.suppress(target)
        restored = roundtrip(client)
        from repro.client.transparency import InferenceStatus

        assert restored.transparency._entries[target].status is (
            InferenceStatus.SUPPRESSED
        )


class TestRestoredBehaviourIsIdentical:
    def test_same_channel_tags_delays_and_nonces(self, setting):
        """Run the original and its restored twin through identical
        environments: the emitted deliveries must match exactly."""
        policy = RetransmitPolicy(max_attempts=2, min_interval=6 * 3600.0)
        original, horizon = observed_client(setting, retransmit=policy)
        restored = roundtrip(original)

        outcomes = []
        for client in (original, restored):
            issuer = TokenIssuer(quota_per_day=500, key_seed=9, key_bits=256)
            network = batching_network(seed=9)
            client.sync(network, issuer, now=horizon)
            deliveries = network.deliveries_until(horizon + 30 * DAY)
            outcomes.append(
                [
                    (d.channel_tag, d.arrival_time, d.payload.nonce)
                    for d in deliveries
                ]
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0]  # the scenario actually submitted something

    def test_restored_client_does_not_restage_uploaded_work(self, setting):
        """After a restore, re-observing the same trace must not re-upload
        records the pre-crash client already staged (the staged sets are
        part of the checkpoint)."""
        town, result, horizon, _ = setting
        client, _ = observed_client(setting)
        staged_before = len(client._pending)
        restored = roundtrip(client)
        trace = generate_trace(
            client.identity.device_id,
            town,
            result,
            horizon,
            duty_cycled_policy(),
            seed=23,
        )
        restored.observe_trace(trace, now=horizon)
        assert len(restored._pending) == staged_before
