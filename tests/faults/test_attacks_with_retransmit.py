"""Retransmission must not weaken unlinkability.

Every retransmission attempt reuses the record's nonce (the server-side
idempotency key) but freshens everything an adversary can see: new token,
new random channel tag, delay re-randomized from the retry sync.  These
tests run the paper's linkage and timing attacks against a delivery
stream *with* retransmitted copies and pin the seed's hardened-config
outcomes: linkage stays blind, timing stays at chance.
"""

import pytest

from repro.client.app import RSPClient
from repro.orchestration.pipeline import train_classifier
from repro.privacy.anonymity import Delivery, batching_network
from repro.privacy.attacks import linkage_attack, timing_attack
from repro.privacy.tokens import TokenIssuer
from repro.privacy.uploads import RetransmitPolicy
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON = 60 * DAY


@pytest.fixture(scope="module")
def retransmitted_deliveries():
    town = build_town(TownConfig(n_users=30), seed=37)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=60), seed=37
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=37)

    counts: dict[str, int] = {}
    for event in result.events:
        counts[event.user_id] = counts.get(event.user_id, 0) + 1
    user_ids = sorted(counts, key=counts.get, reverse=True)[:2]

    policy = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)
    issuer = TokenIssuer(quota_per_day=500, key_seed=37, key_bits=256)
    network = batching_network(seed=37)

    true_owner: dict[str, str] = {}
    activity: dict[str, list[float]] = {}
    clients = []
    for index, user_id in enumerate(user_ids):
        client = RSPClient(
            device_id=user_id,
            catalog=town.entities,
            classifier=classifier,
            seed=index,
            retransmit=policy,
        )
        trace = generate_trace(
            user_id, town, result, HORIZON, duty_cycled_policy(), seed=37
        )
        client.observe_trace(trace, now=HORIZON)
        for pending in client._pending:
            true_owner[pending.record.history_id] = user_id
        activity[user_id] = [
            i.time + i.duration for i in client._interactions
        ]
        clients.append(client)

    for client in clients:
        client.sync(network, issuer, now=HORIZON)
    # A later sync past min_interval: every sent record goes out again.
    for client in clients:
        client.sync(network, issuer, now=HORIZON + 12 * HOUR)

    retransmissions = sum(c.stats.retransmissions for c in clients)
    raw = network.deliveries_until(HORIZON + 40 * DAY)
    # The attacks read history_id/arrival/tag off the wire; unwrap the
    # envelopes into record-level deliveries for them.
    deliveries = [
        Delivery(
            payload=d.payload.record,
            arrival_time=d.arrival_time,
            channel_tag=d.channel_tag,
        )
        for d in raw
    ]
    return deliveries, raw, true_owner, activity, retransmissions


class TestUnlinkabilityUnderRetransmission:
    def test_scenario_actually_retransmits(self, retransmitted_deliveries):
        deliveries, _, _, _, retransmissions = retransmitted_deliveries
        assert retransmissions > 0
        assert len(deliveries) > retransmissions  # originals + copies

    def test_linkage_attack_stays_blind(self, retransmitted_deliveries):
        """Seed hardened-config bar: recall 0 — retransmitted copies use
        fresh channel tags, so they link nothing."""
        deliveries, _, true_owner, _, _ = retransmitted_deliveries
        report = linkage_attack(deliveries, true_owner)
        assert report.n_same_user_pairs > 0
        assert report.recall == 0.0

    def test_timing_attack_stays_at_chance(self, retransmitted_deliveries):
        """Seed hardened-config bar: accuracy below 0.5 — retry timing
        correlates with the retry sync, not the original interaction."""
        deliveries, _, true_owner, activity, _ = retransmitted_deliveries
        report = timing_attack(deliveries, activity, true_owner)
        assert report.accuracy < 0.5

    def test_copies_share_nonce_but_nothing_else(self, retransmitted_deliveries):
        """Across a record's attempts, the nonce is the *only* repeated
        wire-visible value: tags never repeat, and every copy carries a
        distinct (fresh) token."""
        _, raw, _, _, retransmissions = retransmitted_deliveries
        by_nonce: dict[bytes, list] = {}
        for delivery in raw:
            by_nonce.setdefault(delivery.payload.nonce, []).append(delivery)
        multi = [group for group in by_nonce.values() if len(group) > 1]
        assert len(multi) == retransmissions
        for group in multi:
            tags = [d.channel_tag for d in group]
            assert len(tags) == len(set(tags))
            token_ids = [d.payload.token.token_id for d in group]
            assert len(token_ids) == len(set(token_ids))
        # Fresh tag per attempt holds globally, too.
        all_tags = [d.channel_tag for d in raw]
        assert len(all_tags) == len(set(all_tags))
