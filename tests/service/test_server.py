"""Tests for the RSP server: intake, maintenance, search."""

import pytest

from repro.core.aggregation import OpinionUpload
from repro.core.discovery import Query
from repro.core.protocol import Envelope
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.tokens import TokenWallet, UploadToken
from repro.service.server import RSPServer
from repro.util.clock import DAY
from repro.world.population import TownConfig, build_town


@pytest.fixture()
def server_and_town():
    town = build_town(TownConfig(n_users=5), seed=20)
    server = RSPServer(catalog=town.entities, key_seed=20, key_bits=256)
    return server, town


def token_for(server, device="dev", seed=0, count=1):
    wallet = TokenWallet(device_id=device, seed=seed)
    blinded = wallet.mint(server.issuer.public_key, count)
    wallet.accept_signatures(
        server.issuer.public_key, server.issuer.issue(device, blinded, now=0.0)
    )
    return [wallet.spend() for _ in range(count)]


def delivery_of(record, token, arrival=1.0):
    return Delivery(payload=Envelope(record=record, token=token), arrival_time=arrival, channel_tag="c")


def interaction_record(identity, entity_id, t=0.0, duration=1800.0, travel=2.0):
    return InteractionUpload(
        history_id=identity.history_id(entity_id),
        entity_id=entity_id,
        interaction_type="visit",
        event_time=t,
        duration=duration,
        travel_km=travel,
    )


class TestIntake:
    def test_valid_envelope_stored(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        [token] = token_for(server)
        assert server.receive(delivery_of(interaction_record(identity, entity_id), token))
        assert server.history_store.n_records == 1

    def test_missing_token_rejected(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        assert not server.receive(delivery_of(interaction_record(identity, entity_id), None))
        assert server.rejected_envelopes == 1

    def test_forged_token_rejected(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        forged = UploadToken(token_id=b"fake", signature=99)
        assert not server.receive(delivery_of(interaction_record(identity, entity_id), forged))

    def test_replayed_token_rejected(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        [token] = token_for(server)
        record = interaction_record(identity, entity_id)
        assert server.receive(delivery_of(record, token))
        assert not server.receive(delivery_of(record, token))

    def test_unknown_entity_rejected(self, server_and_town):
        server, _ = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        [token] = token_for(server)
        record = interaction_record(identity, "no-such-entity")
        assert not server.receive(delivery_of(record, token))

    def test_opinion_uploads_accepted(self, server_and_town):
        server, town = server_and_town
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        [token] = token_for(server)
        opinion = OpinionUpload(
            history_id=identity.history_id(entity_id), entity_id=entity_id, rating=4.0
        )
        assert server.receive(delivery_of(opinion, token))
        assert server.n_opinions == 1

    def test_tokens_optional_when_disabled(self):
        town = build_town(TownConfig(n_users=3), seed=21)
        server = RSPServer(catalog=town.entities, key_seed=21, key_bits=256, require_tokens=False)
        identity = DeviceIdentity.create("u", seed=1)
        record = interaction_record(identity, town.entities[0].entity_id)
        assert server.receive(delivery_of(record, None))

    def test_post_review_validates_entity(self, server_and_town):
        server, town = server_and_town
        server.post_review("alice", town.entities[0].entity_id, 4, time=0.0)
        assert server.n_explicit_reviews == 1
        with pytest.raises(KeyError):
            server.post_review("alice", "ghost", 4, time=0.0)


class TestMaintenanceAndSearch:
    def fill(self, server, town, n_users=12):
        target = town.entities[0]
        tokens = token_for(server, count=n_users * 3, device="filler")
        token_iter = iter(tokens)
        for index in range(n_users):
            identity = DeviceIdentity.create(f"user-{index}", seed=index)
            for visit_index in range(2):
                record = interaction_record(
                    identity,
                    target.entity_id,
                    t=(10 + index + visit_index * 45) * DAY,
                    travel=1.0 + index * 0.3,
                )
                assert server.receive(delivery_of(record, next(token_iter)))
            opinion = OpinionUpload(
                history_id=identity.history_id(target.entity_id),
                entity_id=target.entity_id,
                rating=4.0,
            )
            server.receive(delivery_of(opinion, next(token_iter)))
        return target

    def test_maintenance_builds_summaries(self, server_and_town):
        server, town = server_and_town
        target = self.fill(server, town)
        server.post_review("alice", target.entity_id, 5, time=0.0)
        report = server.run_maintenance()
        assert report.n_histories == 12
        summary = server.summary(target.entity_id)
        assert summary is not None
        assert summary.n_explicit_reviews == 1
        assert summary.n_inferred_opinions == 12
        assert summary.total_opinions == 13

    def test_search_returns_ranked_results_with_viz(self, server_and_town):
        server, town = server_and_town
        target = self.fill(server, town)
        server.run_maintenance()
        query = Query(category=target.category, near=target.location, radius_km=30.0)
        response = server.search(query)
        assert response.n_results >= 1
        assert response.results[0].entity.entity_id == target.entity_id
        assert response.visualization is not None
        assert target.entity_id in response.visualization.histograms

    def test_quota_defaults_reasonable(self, server_and_town):
        server, _ = server_and_town
        assert server.issuer.quota_per_day >= 1


class TestAttestationGatedIssuance:
    def make(self):
        from repro.fraud.attestation import (
            AttestationVerifier,
            PlatformVendor,
            client_build_hash,
            forge_quote_without_key,
        )

        town = build_town(TownConfig(n_users=3), seed=22)
        vendor = PlatformVendor()
        genuine = client_build_hash("official client v1")
        server = RSPServer(
            catalog=town.entities, key_seed=22, key_bits=256,
            attestation=AttestationVerifier(vendor, genuine_builds={genuine}),
        )
        return server, vendor, genuine, forge_quote_without_key

    def test_attested_device_gets_tokens(self):
        server, vendor, genuine, _ = self.make()
        wallet = TokenWallet(device_id="dev-good", seed=1)
        blinded = wallet.mint(server.issuer.public_key, 2)
        quote = vendor.make_quote("dev-good", genuine, nonce=b"q1")
        signatures = server.issue_tokens("dev-good", blinded, now=0.0, quote=quote)
        wallet.accept_signatures(server.issuer.public_key, signatures)
        assert wallet.balance == 2

    def test_modified_client_refused(self):
        from repro.fraud.attestation import client_build_hash

        server, vendor, _, _ = self.make()
        wallet = TokenWallet(device_id="dev-evil", seed=2)
        blinded = wallet.mint(server.issuer.public_key, 1)
        quote = vendor.make_quote("dev-evil", client_build_hash("patched"), nonce=b"q2")
        with pytest.raises(PermissionError):
            server.issue_tokens("dev-evil", blinded, now=0.0, quote=quote)
        assert server.rejected_attestations == 1

    def test_missing_or_forged_quote_refused(self):
        server, _, genuine, forge = self.make()
        wallet = TokenWallet(device_id="dev-forge", seed=3)
        blinded = wallet.mint(server.issuer.public_key, 1)
        with pytest.raises(PermissionError):
            server.issue_tokens("dev-forge", blinded, now=0.0, quote=None)
        with pytest.raises(PermissionError):
            server.issue_tokens(
                "dev-forge", blinded, now=0.0,
                quote=forge("dev-forge", genuine, nonce=b"q3"),
            )

    def test_no_verifier_means_open_issuance(self):
        town = build_town(TownConfig(n_users=3), seed=23)
        server = RSPServer(catalog=town.entities, key_seed=23, key_bits=256)
        wallet = TokenWallet(device_id="dev", seed=4)
        blinded = wallet.mint(server.issuer.public_key, 1)
        signatures = server.issue_tokens("dev", blinded, now=0.0)
        wallet.accept_signatures(server.issuer.public_key, signatures)
        assert wallet.balance == 1


class _PoisonedHistoryKey(str):
    """A history key whose first hash — inside the store — explodes."""

    def __hash__(self):
        raise RuntimeError("poisoned record")


class TestTransactionalIntake:
    """Regression: accept bookkeeping must be transactional with store
    dispatch.  A record that fails *inside* the store must neither count
    as accepted nor burn its nonce — the client's retransmission of a
    repaired record under the same nonce must still land."""

    def test_poisoned_record_neither_counts_nor_burns_nonce(self):
        town = build_town(TownConfig(n_users=3), seed=24)
        server = RSPServer(catalog=town.entities, key_seed=24, require_tokens=False)
        identity = DeviceIdentity.create("u", seed=1)
        entity_id = town.entities[0].entity_id
        good = interaction_record(identity, entity_id)
        poisoned = InteractionUpload(
            history_id=_PoisonedHistoryKey(good.history_id),
            entity_id=entity_id,
            interaction_type="visit",
            event_time=0.0,
            duration=1800.0,
            travel_km=2.0,
        )
        envelope = Envelope(record=poisoned, token=None, nonce=b"keep-me")
        assert not server.receive(
            Delivery(payload=envelope, arrival_time=1.0, channel_tag="c")
        )
        assert server.rejected_envelopes == 1
        assert server.accepted_envelopes == 0
        assert server.n_unique_nonces == 0
        assert server.history_store.n_records == 0
        # Retransmission of the repaired record, same nonce: accepted.
        retry = Envelope(record=good, token=None, nonce=b"keep-me")
        assert server.receive(
            Delivery(payload=retry, arrival_time=2.0, channel_tag="c")
        )
        assert server.accepted_envelopes == 1
        assert server.history_store.n_records == 1

    def test_poisoned_record_does_not_block_the_batch(self):
        town = build_town(TownConfig(n_users=3), seed=24)
        server = RSPServer(catalog=town.entities, key_seed=24, require_tokens=False)
        identity = DeviceIdentity.create("u", seed=2)
        entity_id = town.entities[0].entity_id
        good = interaction_record(identity, entity_id)
        poisoned = InteractionUpload(
            history_id=_PoisonedHistoryKey(good.history_id),
            entity_id=entity_id,
            interaction_type="visit",
            event_time=0.0,
            duration=1800.0,
            travel_km=2.0,
        )
        batch = [
            Delivery(
                payload=Envelope(record=poisoned, token=None, nonce=b"n1"),
                arrival_time=1.0,
                channel_tag="c",
            ),
            Delivery(
                payload=Envelope(record=good, token=None, nonce=b"n2"),
                arrival_time=2.0,
                channel_tag="c",
            ),
        ]
        assert server.receive_all(batch) == 1
        assert server.accepted_envelopes == 1
        assert server.rejected_envelopes == 1
