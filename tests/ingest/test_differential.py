"""Batched intake vs per-record intake: the byte-identity obligation.

The claim of :mod:`repro.ingest.columnar` is that ``ingest_all`` is a
pure performance knob: for any delivery stream, against either server
deployment, with or without fault chaos and durability, it produces

* the same accept/reject/duplicate classification for every envelope,
* the same epoch report digests, opinion summaries, and fraud verdicts,
* the same telemetry export (the counter three-way consistency holds on
  both paths because the *export* is equal, not just the totals),
* the same WAL, byte for byte, under the same global sequence numbers.

This suite is the proof.  The epoch-level matrix drives the full
pipeline across shard/worker configurations, clean and under the chaos
plan; the direct server-level tests pin each classification branch
(duplicate, stale seq, token bounce on a seen nonce, malformed and
poisoned records) where the epoch pipeline would reach them only by
luck.
"""

import pytest

from repro.core.protocol import Envelope
from repro.durability.journal import DurableJournal, attach_journal
from repro.faults import DropFault, DuplicateFault, FaultPlan, Window
from repro.ingest import SyntheticTraffic, WorkloadConfig, ingest_all
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.privacy.anonymity import Delivery
from repro.privacy.tokens import TokenWallet
from repro.privacy.uploads import RetransmitPolicy
from repro.scale.server import ShardedRSPServer
from repro.service.server import RSPServer
from repro.telemetry import AGGREGATE, Telemetry
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

HORIZON_DAYS = 28.0
HORIZON = HORIZON_DAYS * DAY
N_EPOCHS = 3
MAX_USERS = 8

CHAOS = FaultPlan(
    seed=17,
    drops=(DropFault(Window(0.0, HORIZON + 30 * DAY), 0.05),),
    duplicates=(DuplicateFault(Window(0.0, HORIZON + 30 * DAY), 0.10),),
)
RETRY = RetransmitPolicy(max_attempts=2, min_interval=6 * HOUR)

#: A workload whose impurities exercise every classification branch.
IMPURE = WorkloadConfig(
    n_users=250,
    n_entities=40,
    opinion_fraction=0.35,
    duplicate_fraction=0.05,
    stale_fraction=0.2,
    invalid_fraction=0.05,
    seed=11,
)

COUNTERS = (
    "accepted_envelopes",
    "rejected_envelopes",
    "duplicates_suppressed",
    "opinions_stale",
    "dropped_by_outage",
    "history_mismatches",
    "n_records",
    "n_opinions",
)


# ------------------------------------------------------- epoch-level matrix


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=30), seed=29)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=HORIZON_DAYS), seed=29
    ).run()
    classifier = train_classifier(town, result, HORIZON, seed=29)
    return town, result, classifier


def run(world, ingest_batch, n_shards=1, workers=0, plan=None, retransmit=None):
    town, result, classifier = world
    config = PipelineConfig(horizon_days=HORIZON_DAYS, seed=5, retransmit=retransmit)
    return run_epochs(
        town,
        result,
        config,
        n_epochs=N_EPOCHS,
        classifier=classifier,
        max_users=MAX_USERS,
        fault_plan=plan,
        n_shards=n_shards,
        workers=workers,
        ingest_batch=ingest_batch,
    )


def verdict_set(outcome):
    return {
        (v.history_id, v.entity_id, v.flags)
        for report in outcome.reports
        if report.maintenance is not None
        for v in report.maintenance.rejected
    }


def assert_equivalent(baseline, candidate):
    assert candidate.reports_digest() == baseline.reports_digest()
    assert candidate.server.all_summaries() == baseline.server.all_summaries()
    assert verdict_set(candidate) == verdict_set(baseline)
    # The AGGREGATE telemetry scope is deployment-invariant by contract
    # (tests/telemetry/test_golden_snapshot.py), so the batched cell must
    # reproduce the per-record monolith's export exactly.
    assert candidate.telemetry.digest(scope=AGGREGATE) == baseline.telemetry.digest(
        scope=AGGREGATE
    )


@pytest.fixture(scope="module")
def clean_baseline(world):
    return run(world, ingest_batch=False)


@pytest.fixture(scope="module")
def chaos_baseline(world):
    return run(world, ingest_batch=False, plan=CHAOS, retransmit=RETRY)


class TestCleanMatrix:
    @pytest.mark.parametrize("n_shards", [1, 4, 8])
    @pytest.mark.parametrize("workers", [0, 1, 4])
    def test_batched_intake_is_indistinguishable(
        self, world, clean_baseline, n_shards, workers
    ):
        outcome = run(world, ingest_batch=True, n_shards=n_shards, workers=workers)
        assert_equivalent(clean_baseline, outcome)

    def test_baseline_is_not_vacuous(self, clean_baseline):
        assert clean_baseline.server.n_records > 0
        assert clean_baseline.server.accepted_envelopes > 0


class TestChaosMatrix:
    @pytest.mark.parametrize("n_shards,workers", [(1, 0), (4, 1), (8, 4)])
    def test_batched_chaos_is_indistinguishable(
        self, world, chaos_baseline, n_shards, workers
    ):
        outcome = run(
            world,
            ingest_batch=True,
            n_shards=n_shards,
            workers=workers,
            plan=CHAOS,
            retransmit=RETRY,
        )
        assert_equivalent(chaos_baseline, outcome)
        assert (
            outcome.server.duplicates_suppressed
            == chaos_baseline.server.duplicates_suppressed
        )

    def test_chaos_actually_bites(self, chaos_baseline):
        assert chaos_baseline.injector.messages_dropped > 0
        assert chaos_baseline.server.duplicates_suppressed > 0


# --------------------------------------------------- direct server parity


def paired_servers(n_shards=0, require_tokens=False):
    """Two identical servers (with real telemetry) plus twin traffic."""
    t1, t2 = SyntheticTraffic(IMPURE), SyntheticTraffic(IMPURE)
    servers = []
    for catalog in (t1.catalog, t2.catalog):
        telemetry = Telemetry()
        if n_shards:
            server = ShardedRSPServer(
                catalog, n_shards=n_shards, workers=0, require_tokens=require_tokens
            )
        else:
            server = RSPServer(catalog, require_tokens=require_tokens)
        server.attach_telemetry(telemetry)
        servers.append((server, telemetry))
    return servers[0], servers[1], t1, t2


def assert_same_story(pair_a, pair_b):
    (server_a, tele_a), (server_b, tele_b) = pair_a, pair_b
    for attr in COUNTERS:
        assert getattr(server_a, attr) == getattr(server_b, attr), attr
    # Full export, both scopes: per-record and batched intake are export-
    # identical, not merely total-identical.
    assert tele_a.metrics.export_json() == tele_b.metrics.export_json()


@pytest.mark.parametrize("n_shards", [0, 4])
def test_impure_stream_parity(n_shards):
    pair_a, pair_b, t1, t2 = paired_servers(n_shards=n_shards)
    for tick in range(5):
        now = 100.0 * tick
        pair_a[0].receive_all(t1.batch(400, now), now=now)
        ingest_all(pair_b[0], t2.batch(400, now), now=now)
    assert_same_story(pair_a, pair_b)
    # The impurities actually exercised the interesting branches.
    assert pair_a[0].duplicates_suppressed > 0
    assert pair_a[0].rejected_envelopes > 0
    assert pair_a[0].opinions_stale > 0


@pytest.mark.parametrize("n_shards", [0, 4])
def test_maintenance_after_batched_intake_matches(n_shards):
    pair_a, pair_b, t1, t2 = paired_servers(n_shards=n_shards)
    pair_a[0].receive_all(t1.batch(1200, 100.0), now=100.0)
    ingest_all(pair_b[0], t2.batch(1200, 100.0), now=100.0)
    report_a = pair_a[0].run_maintenance(now=200.0)
    report_b = pair_b[0].run_maintenance(now=200.0)
    assert pair_a[0].all_summaries() == pair_b[0].all_summaries()
    assert report_a.n_opinions_kept == report_b.n_opinions_kept
    assert_same_story(pair_a, pair_b)


def entity_record(catalog):
    from repro.core.aggregation import OpinionUpload

    return OpinionUpload(
        history_id="h-parity", entity_id=catalog[0].entity_id, rating=4.0, seq=1
    )


class TestTokenNuances:
    """The token-failure-on-seen-nonce branch, on both intake paths."""

    def make_pair(self):
        pair_a, pair_b, t1, _ = paired_servers(require_tokens=True)
        return pair_a, pair_b, t1.catalog

    def tokens_for(self, server, count):
        wallet = TokenWallet(device_id="parity-device")
        blinded = wallet.mint(server.issuer.public_key, count)
        signatures = server.issuer.issue("parity-device", blinded, now=100.0)
        wallet.accept_signatures(server.issuer.public_key, signatures)
        return [wallet.spend() for _ in range(count)]

    def deliver(self, server, telemetry, batched, deliveries):
        if batched:
            return ingest_all(server, deliveries, now=100.0)
        return server.receive_all(deliveries, now=100.0)

    def test_spent_token_on_seen_nonce_is_a_duplicate(self):
        pair_a, pair_b, catalog = self.make_pair()
        record = entity_record(catalog)
        results = []
        for (server, telemetry), batched in ((pair_a, False), (pair_b, True)):
            (token,) = self.tokens_for(server, 1)
            envelope = Envelope(record=record, token=token, nonce=b"n-1" * 6)
            first = Delivery(payload=envelope, arrival_time=100.0, channel_tag="t")
            redelivery = Delivery(payload=envelope, arrival_time=101.0, channel_tag="t")
            self.deliver(server, telemetry, batched, [first])
            self.deliver(server, telemetry, batched, [redelivery])
            results.append((server, telemetry))
        for server, _ in results:
            assert server.accepted_envelopes == 1
            assert server.duplicates_suppressed == 1
            assert server.rejected_envelopes == 0
        assert_same_story(*results)

    def test_missing_token_on_fresh_nonce_is_a_token_bounce(self):
        pair_a, pair_b, catalog = self.make_pair()
        record = entity_record(catalog)
        envelope = Envelope(record=record, token=None, nonce=b"n-2" * 6)
        delivery = Delivery(payload=envelope, arrival_time=100.0, channel_tag="t")
        pair_a[0].receive_all([delivery], now=100.0)
        ingest_all(pair_b[0], [delivery], now=100.0)
        for server, _ in (pair_a, pair_b):
            assert server.rejected_envelopes == 1
            assert server.accepted_envelopes == 0
        assert_same_story(pair_a, pair_b)


class _Exploding:
    """A record whose store dispatch blows up (but routes like a real one)."""

    history_id = "h-poison"

    @property
    def entity_id(self):
        raise RuntimeError("poisoned record")


class TestPoisonedRecords:
    @pytest.mark.parametrize("n_shards", [0, 4])
    def test_malformed_record_parity(self, n_shards):
        pair_a, pair_b, t1, t2 = paired_servers(n_shards=n_shards)
        bad = Delivery(
            payload=Envelope(record="not a record", token=None, nonce=b"n-3" * 6),
            arrival_time=100.0,
            channel_tag="t",
        )
        pair_a[0].receive_all([bad] + t1.batch(50, 100.0), now=100.0)
        ingest_all(pair_b[0], [bad] + t2.batch(50, 100.0), now=100.0)
        assert pair_a[0].rejected_envelopes >= 1
        assert_same_story(pair_a, pair_b)

    def test_exploding_record_is_a_store_error_on_both_paths(self):
        # Monolith-only: the sharded *baseline* groups by history_id before
        # dispatch, so a record must at least route; an attribute that
        # raises mid-dispatch is the monolith's store-error case.
        pair_a, pair_b, t1, t2 = paired_servers()
        poison = Delivery(
            payload=Envelope(record=_Exploding(), token=None, nonce=b"n-4" * 6),
            arrival_time=100.0,
            channel_tag="t",
        )
        pair_a[0].receive_all([poison] + t1.batch(50, 100.0), now=100.0)
        ingest_all(pair_b[0], [poison] + t2.batch(50, 100.0), now=100.0)
        assert pair_a[0].rejected_envelopes >= 1
        assert_same_story(pair_a, pair_b)


class TestNonceFreeEnvelopes:
    def test_no_nonce_means_no_dedup_on_either_path(self):
        pair_a, pair_b, t1, _ = paired_servers()
        record = entity_record(t1.catalog)
        bare = Envelope(record=record, token=None, nonce=None)
        deliveries = [
            Delivery(payload=bare, arrival_time=100.0, channel_tag="t")
            for _ in range(3)
        ]
        pair_a[0].receive_all(deliveries, now=100.0)
        ingest_all(pair_b[0], deliveries, now=100.0)
        for server, _ in (pair_a, pair_b):
            assert server.duplicates_suppressed == 0
            assert server.accepted_envelopes == 3
        assert_same_story(pair_a, pair_b)


# ------------------------------------------------------- WAL byte identity


@pytest.mark.parametrize("n_shards", [0, 4])
def test_wal_bytes_identical(tmp_path, n_shards):
    """Same deliveries, same WAL — to the byte, with the same global seqs."""
    roots = {}
    for label, batched in (("per-record", False), ("batched", True)):
        traffic = SyntheticTraffic(IMPURE)
        telemetry = Telemetry()
        if n_shards:
            server = ShardedRSPServer(
                traffic.catalog, n_shards=n_shards, workers=0, require_tokens=False
            )
            journal = DurableJournal(
                tmp_path / label / "primary",
                n_lanes=n_shards,
                lane_of=server.router.shard_of,
                telemetry=telemetry,
            )
        else:
            server = RSPServer(traffic.catalog, require_tokens=False)
            journal = DurableJournal(tmp_path / label / "primary", telemetry=telemetry)
        server.attach_telemetry(telemetry)
        attach_journal(server, journal)
        for tick in range(4):
            now = 100.0 * tick
            batch = traffic.batch(300, now)
            if batched:
                ingest_all(server, batch, now=now)
            else:
                server.receive_all(batch, now=now)
        roots[label] = tmp_path / label / "primary"
    names_a = sorted(p.name for p in roots["per-record"].glob("wal-*"))
    names_b = sorted(p.name for p in roots["batched"].glob("wal-*"))
    assert names_a == names_b and names_a
    for name in names_a:
        assert (roots["per-record"] / name).read_bytes() == (
            roots["batched"] / name
        ).read_bytes(), name
