"""Backpressure invariants: every envelope acked-and-journaled XOR shed.

The bounded intake queue's contract (:mod:`repro.ingest.queue`) is that
under any overload, each offered envelope meets exactly one of two
fates, and both are accounted:

* **admitted** — drained to the server, classified, and (if accepted)
  journaled before its acceptance commit;
* **shed** — dropped at the full queue, counted under
  ``rsp.ingest.shed{reason=capacity}``, and *never* journaled.

No orphan WAL frames (a journaled record that was never acked), no
silent drops (an envelope missing from both ledgers), and a crash while
shedding is in progress recovers to exactly the state an uninterrupted
run reaches over the admitted prefix.
"""

import pytest

from repro.durability.journal import DurableJournal, attach_journal
from repro.durability.recovery import read_mutations, recover_server
from repro.ingest import BoundedIntakeQueue, SyntheticTraffic, WorkloadConfig, ingest_all
from repro.service.server import RSPServer
from repro.telemetry import Telemetry

WORKLOAD = WorkloadConfig(
    n_users=500,
    n_entities=30,
    opinion_fraction=0.3,
    duplicate_fraction=0.05,
    stale_fraction=0.1,
    invalid_fraction=0.05,
    seed=23,
)


# ------------------------------------------------------------- queue unit


class TestQueueUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedIntakeQueue(0)

    def test_admission_is_prefix_greedy(self):
        queue = BoundedIntakeQueue(3)
        assert queue.offer_all(["a", "b", "c", "d", "e"]) == 3
        assert queue.admitted == 3
        assert queue.shed == 2
        assert queue.drain() == ["a", "b", "c"]

    def test_fifo_across_offer_bursts(self):
        queue = BoundedIntakeQueue(10)
        queue.offer_all(["a", "b"])
        queue.offer_all(["c"])
        assert queue.drain(2) == ["a", "b"]
        queue.offer("d")
        assert queue.drain() == ["c", "d"]

    def test_drain_limit_and_depth(self):
        queue = BoundedIntakeQueue(5)
        queue.offer_all(list("abcde"))
        assert queue.depth == 5
        assert queue.high_watermark == 5
        assert queue.drain(2) == ["a", "b"]
        assert queue.depth == 3
        # Freed room readmits.
        assert queue.offer_all(["f", "g", "h"]) == 2
        assert queue.shed == 1

    def test_shedding_is_deterministic(self):
        fates = []
        for _ in range(2):
            queue = BoundedIntakeQueue(4)
            kept = []
            for burst in (list("abcdef"), list("ghi")):
                queue.offer_all(burst)
                kept.extend(queue.drain(3))
            fates.append((kept, queue.admitted, queue.shed))
        assert fates[0] == fates[1]

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        queue = BoundedIntakeQueue(2, telemetry=telemetry)
        queue.offer_all(["a", "b", "c"])
        queue.drain()
        assert telemetry.total("rsp.ingest.admitted") == 2
        assert telemetry.total("rsp.ingest.shed") == 1
        assert "rsp.ingest.drain" in telemetry.metrics.export_json()

    def test_empty_drain_creates_no_instrument(self):
        telemetry = Telemetry()
        BoundedIntakeQueue(2, telemetry=telemetry).drain()
        assert "rsp.ingest.drain" not in telemetry.metrics.export_json()

    def test_empty_drains_leave_the_export_byte_identical(self):
        # An idle deployment drains its (empty) queue every tick; those
        # ticks must not touch the queue_depth gauge (its write version
        # is part of the export, so idle churn would make two otherwise
        # identical soak runs export different telemetry).
        telemetry = Telemetry()
        queue = BoundedIntakeQueue(4, telemetry=telemetry)
        queue.offer_all(["a", "b"])
        queue.drain()
        exported = telemetry.export_json()
        assert "rsp.ingest.queue_depth" in exported
        for _ in range(3):
            queue.drain()
        assert telemetry.export_json() == exported


# --------------------------------------------------------- end-to-end XOR


def overloaded_run(root, ticks=6, crash_after=None):
    """Drive bursts through queue → ingest → WAL; optionally crash."""
    traffic = SyntheticTraffic(WORKLOAD)
    telemetry = Telemetry()
    server = RSPServer(traffic.catalog, require_tokens=False)
    server.attach_telemetry(telemetry)
    journal = DurableJournal(root / "primary", telemetry=telemetry)
    attach_journal(server, journal)
    queue = BoundedIntakeQueue(150, telemetry=telemetry)
    offered_nonces = []
    shed_count_before = 0
    shed_nonces = []
    for tick in range(ticks):
        now = 100.0 * tick
        burst = traffic.batch(250, now)
        offered_nonces.extend(d.payload.nonce for d in burst)
        admitted = queue.offer_all(burst)
        # offer_all admits the prefix, so the shed suffix is identifiable.
        shed_nonces.extend(d.payload.nonce for d in burst[admitted:])
        ingest_all(server, queue.drain(), now=now)
        if crash_after is not None and tick == crash_after:
            journal.crash(torn_bytes=7)
            return server, queue, traffic, shed_nonces, tick + 1
    return server, queue, traffic, shed_nonces, ticks


class TestExactlyOneFate:
    def test_no_orphans_and_no_silent_drops(self, tmp_path):
        server, queue, traffic, shed_nonces, _ = overloaded_run(tmp_path)
        assert queue.shed > 0, "overload never engaged — test is vacuous"
        # Ledger 1: offered == admitted + shed.
        assert traffic.generated == queue.admitted + queue.shed
        # Ledger 2: everything drained was classified, exactly once.
        drained = queue.admitted - queue.depth
        assert drained == (
            server.accepted_envelopes
            + server.rejected_envelopes
            + server.duplicates_suppressed
            + server.dropped_by_outage
        )
        # Ledger 3: the WAL holds one frame per acked envelope — no
        # orphan frames for shed or rejected envelopes.
        mutations, torn = read_mutations(tmp_path / "primary", after_seq=0)
        assert not torn
        assert len(mutations) == server.accepted_envelopes
        # And no shed envelope's nonce ever reached the journal.
        journaled_nonces = {m.get("nonce") for m in mutations}
        for nonce in shed_nonces:
            assert nonce.hex() not in journaled_nonces

    def test_shed_is_before_journal_even_under_burst(self, tmp_path):
        server, queue, *_ = overloaded_run(tmp_path)
        telemetry = server.telemetry
        assert telemetry.total("rsp.ingest.admitted") == queue.admitted
        assert telemetry.total("rsp.ingest.shed") == queue.shed
        # Counter three-way consistency on the intake side.
        assert telemetry.total("rsp.envelopes.accepted") == server.accepted_envelopes
        assert telemetry.total("rsp.envelopes.rejected") == server.rejected_envelopes
        assert telemetry.total("rsp.envelopes.duplicate") == server.duplicates_suppressed


class TestCrashDuringShed:
    def test_recovery_matches_uninterrupted_run(self, tmp_path):
        crashed_root = tmp_path / "crashed"
        twin_root = tmp_path / "twin"
        # Crash mid-overload, right after an overloaded tick.
        server_a, queue_a, traffic_a, _, ticks_done = overloaded_run(
            crashed_root, crash_after=2
        )
        assert queue_a.shed > 0
        # The twin runs the same prefix, uninterrupted.
        server_b, queue_b, *_ = overloaded_run(twin_root, ticks=ticks_done)
        assert queue_a.admitted == queue_b.admitted
        assert queue_a.shed == queue_b.shed
        # Recover a fresh server from the torn journal.
        recovered = RSPServer(traffic_a.catalog, require_tokens=False)
        report = recover_server(recovered, crashed_root / "primary")
        assert report.n_replayed > 0
        assert recovered.n_records == server_b.n_records
        assert recovered.n_opinions == server_b.n_opinions
        recovered.run_maintenance(now=10_000.0)
        server_b.run_maintenance(now=10_000.0)
        assert recovered.all_summaries() == server_b.all_summaries()

    def test_redelivery_after_recovery_is_idempotent(self, tmp_path):
        server_a, queue_a, traffic_a, _, _ = overloaded_run(
            tmp_path, crash_after=1
        )
        recovered = RSPServer(traffic_a.catalog, require_tokens=False)
        recover_server(recovered, tmp_path / "primary")
        # Replay the same traffic prefix the crashed run processed: every
        # envelope the WAL saw must now dedup (burned nonces were
        # recovered), so acceptance does not double-count.
        accepted_before = recovered.n_records + recovered.n_opinions
        replay = SyntheticTraffic(WORKLOAD)
        queue = BoundedIntakeQueue(150)
        for tick in range(2):
            queue.offer_all(replay.batch(250, 100.0 * tick))
            ingest_all(recovered, queue.drain(), now=100.0 * tick)
        assert recovered.n_records + recovered.n_opinions == accepted_before
        assert recovered.duplicates_suppressed > 0
