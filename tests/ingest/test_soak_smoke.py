"""Soak harness smoke: small-N runs that keep the load generator green.

CI runs these on every push (`make ingest`), so the full-size soak in
``benchmarks/test_bench_ingest.py`` can't rot silently: the same code
path — traffic → bounded queue → batched ingest → report — is exercised
here at a few thousand envelopes, including an overload window that must
engage the shedder.
"""

import pytest

from repro.faults import FaultInjector, Window, overload_plan
from repro.ingest import SoakConfig, run_soak
from repro.telemetry import Telemetry

SMALL = SoakConfig(
    n_users=20_000,
    n_entities=40,
    ticks=8,
    warmup_ticks=2,
    arrivals_per_tick=300,
    drain_limit=350,
    queue_depth=500,
    seed=3,
)


class TestConfigValidation:
    def test_warmup_must_precede_end(self):
        with pytest.raises(ValueError):
            SoakConfig(ticks=5, warmup_ticks=5)

    def test_positive_sizing(self):
        with pytest.raises(ValueError):
            SoakConfig(queue_depth=0)
        with pytest.raises(ValueError):
            SoakConfig(tick_seconds=0.0)


class TestSteadyState:
    def test_clean_soak_accounts_for_everything(self):
        report = run_soak(SMALL)
        assert report.offered == report.admitted + report.shed
        assert report.drained == report.admitted  # final drain empties the queue
        assert report.drained == (
            report.accepted + report.rejected + report.duplicates
        )
        assert report.accepted > 0
        assert report.steady_events_per_sec > 0
        assert report.p99_latency_ms >= 0
        # Under-provisioned drain never sheds in the clean scenario.
        assert not report.shed_engaged

    def test_counts_are_reproducible(self):
        a, b = run_soak(SMALL), run_soak(SMALL)
        for field in (
            "offered",
            "admitted",
            "shed",
            "drained",
            "accepted",
            "rejected",
            "duplicates",
            "stale",
            "max_queue_depth",
        ):
            assert getattr(a, field) == getattr(b, field), field

    def test_as_dict_round_trips_the_counts(self):
        report = run_soak(SMALL)
        payload = report.as_dict()
        assert payload["offered"] == report.offered
        assert payload["shed_engaged"] == report.shed_engaged


class TestOverload:
    def hook(self):
        return FaultInjector(overload_plan(Window(120.0, 300.0), multiplier=4.0))

    def test_surge_engages_the_shedder(self):
        hook = self.hook()
        report = run_soak(SMALL, fault_hook=hook)
        assert hook.surges_applied > 0
        assert report.shed_engaged
        assert report.shed > 0
        assert report.max_queue_depth == SMALL.queue_depth
        # The XOR invariant holds under overload too.
        assert report.offered == report.admitted + report.shed
        assert report.drained == (
            report.accepted + report.rejected + report.duplicates
        )

    def test_surge_report_reaches_the_fault_report(self):
        hook = self.hook()
        run_soak(SMALL, fault_hook=hook)
        assert hook.report().surges_applied == hook.surges_applied

    def test_shed_telemetry_lands_in_shared_sink(self):
        telemetry = Telemetry()
        report = run_soak(SMALL, telemetry=telemetry, fault_hook=self.hook())
        assert telemetry.total("rsp.ingest.admitted") == report.admitted
        assert telemetry.total("rsp.ingest.shed") == report.shed
        assert telemetry.total("rsp.envelopes.accepted") == report.accepted
