"""The synthetic traffic stream: deterministic, Zipf-shaped, well-formed."""

import numpy as np
import pytest

from repro.core.aggregation import OpinionUpload
from repro.ingest import SyntheticTraffic, WorkloadConfig, synthetic_catalog
from repro.privacy.history_store import InteractionUpload
from repro.world.entities import EntityKind


class TestCatalog:
    def test_deterministic_per_seed(self):
        a = synthetic_catalog(50, seed=4)
        b = synthetic_catalog(50, seed=4)
        assert a == b
        assert synthetic_catalog(50, seed=5) != a

    def test_covers_every_entity_kind(self):
        kinds = {entity.kind for entity in synthetic_catalog(len(EntityKind))}
        assert kinds == set(EntityKind)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthetic_catalog(0)


class TestConfigValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            WorkloadConfig(opinion_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(duplicate_fraction=-0.1)

    def test_population_bounds(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_users=0)


class TestTrafficStream:
    CFG = WorkloadConfig(
        n_users=10_000,
        n_entities=50,
        opinion_fraction=0.4,
        duplicate_fraction=0.05,
        seed=9,
    )

    def test_same_seed_same_stream(self):
        a = SyntheticTraffic(self.CFG).batch(500, now=100.0)
        b = SyntheticTraffic(self.CFG).batch(500, now=100.0)
        assert [d.payload.nonce for d in a] == [d.payload.nonce for d in b]
        assert [repr(d.payload.record) for d in a] == [
            repr(d.payload.record) for d in b
        ]

    def test_batch_splitting_preserves_the_stream(self):
        whole = SyntheticTraffic(self.CFG)
        split = SyntheticTraffic(self.CFG)
        a = whole.batch(400, now=100.0)
        b = split.batch(400, now=100.0)
        assert [d.payload.nonce for d in a] == [d.payload.nonce for d in b]

    def test_nonces_unique_except_deliberate_duplicates(self):
        traffic = SyntheticTraffic(self.CFG)
        deliveries = traffic.batch(2000, now=100.0)
        nonces = [d.payload.nonce for d in deliveries]
        n_duplicates = len(nonces) - len(set(nonces))
        assert 0 < n_duplicates < len(nonces) * 0.15

    def test_zipf_popularity_is_heavy_tailed(self):
        cfg = WorkloadConfig(n_users=50_000, n_entities=100, zipf_exponent=1.1, seed=3)
        deliveries = SyntheticTraffic(cfg).batch(5000, now=100.0)
        counts: dict[str, int] = {}
        for d in deliveries:
            counts[d.payload.record.entity_id] = (
                counts.get(d.payload.record.entity_id, 0) + 1
            )
        ranked = sorted(counts.values(), reverse=True)
        top_decile = sum(ranked[: max(1, len(ranked) // 10)])
        assert top_decile > 0.3 * len(deliveries)

    def test_opinion_seq_advances_per_slot(self):
        cfg = WorkloadConfig(
            n_users=5, n_entities=3, opinion_fraction=1.0, seed=2
        )
        traffic = SyntheticTraffic(cfg)
        deliveries = traffic.batch(300, now=100.0)
        per_slot: dict[str, list[int]] = {}
        for d in deliveries:
            record = d.payload.record
            assert isinstance(record, OpinionUpload)
            per_slot.setdefault(record.history_id, []).append(record.seq)
        assert any(len(seqs) > 1 for seqs in per_slot.values())
        for seqs in per_slot.values():
            assert seqs == sorted(seqs)
            assert seqs[0] == 0

    def test_stale_fraction_reuses_current_seq(self):
        cfg = WorkloadConfig(
            n_users=3, n_entities=2, opinion_fraction=1.0, stale_fraction=0.5, seed=6
        )
        deliveries = SyntheticTraffic(cfg).batch(400, now=100.0)
        stale = 0
        highest: dict[str, int] = {}
        for d in deliveries:
            record = d.payload.record
            last = highest.get(record.history_id)
            if last is not None and record.seq <= last:
                stale += 1
            highest[record.history_id] = max(last or 0, record.seq)
        assert stale > 0

    def test_records_are_wire_valid(self):
        deliveries = SyntheticTraffic(self.CFG).batch(500, now=7200.0)
        assert deliveries
        for d in deliveries:
            record = d.payload.record
            assert isinstance(record, (InteractionUpload, OpinionUpload))
            if isinstance(record, InteractionUpload):
                assert 0.0 <= record.event_time <= 7200.0
                assert record.duration > 0
            assert d.arrival_time == 7200.0

    def test_invalid_fraction_names_unknown_entities(self):
        cfg = WorkloadConfig(n_users=100, n_entities=10, invalid_fraction=0.3, seed=1)
        traffic = SyntheticTraffic(cfg)
        known = {entity.entity_id for entity in traffic.catalog}
        deliveries = traffic.batch(500, now=100.0)
        unknown = sum(1 for d in deliveries if d.payload.record.entity_id not in known)
        assert 0 < unknown < len(deliveries)

    def test_nonce_leading_bytes_are_spread(self):
        deliveries = SyntheticTraffic(self.CFG).batch(1000, now=100.0)
        leads = {d.payload.nonce[:8] for d in deliveries}
        # The multiplicative mix must not collapse shard nonce buckets.
        assert len(leads) > 900

    def test_generated_counts_every_envelope(self):
        traffic = SyntheticTraffic(self.CFG)
        total = len(traffic.batch(300, 0.0)) + len(traffic.batch(200, 50.0))
        assert traffic.generated == total == 500

    def test_empty_batch(self):
        assert SyntheticTraffic(self.CFG).batch(0, now=0.0) == []
