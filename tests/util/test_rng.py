"""Tests for repro.util.rng: determinism and stream independence."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import children, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_label_changes_seed(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_seed_changes_seed(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=50))
    def test_always_in_range(self, seed, label):
        derived = derive_seed(seed, label)
        assert 0 <= derived < 2**63

    def test_no_collision_over_many_labels(self):
        seeds = {derive_seed(7, f"label-{i}") for i in range(10_000)}
        assert len(seeds) == 10_000


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(123).random(10)
        b = make_rng(123).random(10)
        assert np.array_equal(a, b)

    def test_label_derives_child_stream(self):
        plain = make_rng(123).random(5)
        labelled = make_rng(123, "child").random(5)
        assert not np.array_equal(plain, labelled)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen

    def test_generator_with_label_splits(self):
        gen = np.random.default_rng(5)
        child = make_rng(gen, "split")
        assert child is not gen

    def test_streams_are_independent(self):
        """Adding a consumer of one labelled stream must not shift another."""
        first = make_rng(9, "a").random(3)
        _ = make_rng(9, "b").random(1000)
        again = make_rng(9, "a").random(3)
        assert np.array_equal(first, again)


class TestChildren:
    def test_yields_requested_count(self):
        assert len(list(children(1, "workers", 7))) == 7

    def test_children_are_distinct_streams(self):
        gens = list(children(1, "workers", 3))
        draws = [gen.random() for gen in gens]
        assert len(set(draws)) == 3

    def test_children_reproducible(self):
        first = [gen.random() for gen in children(2, "x", 4)]
        second = [gen.random() for gen in children(2, "x", 4)]
        assert first == second
