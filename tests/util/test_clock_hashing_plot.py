"""Tests for repro.util.clock, repro.util.hashing, and repro.util.ascii_plot."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.ascii_plot import log2_grid, render_cdfs, render_histogram, render_table
from repro.util.clock import DAY, HOUR, MINUTE, SimClock, WEEK, YEAR, format_time
from repro.util.hashing import record_id, stable_digest, stable_u64
from repro.util.stats import EmpiricalCDF


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15

    def test_cannot_go_backwards(self):
        clock = SimClock()
        clock.advance(10)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(5)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now == 100.0

    def test_constants_consistent(self):
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY
        assert YEAR == 365 * DAY

    def test_format_time(self):
        assert format_time(0) == "0d 00:00"
        assert format_time(1 * DAY + 2 * HOUR + 3 * MINUTE) == "1d 02:03"


class TestStableHashing:
    def test_digest_deterministic(self):
        assert stable_digest("a", 1) == stable_digest("a", 1)

    def test_digest_order_sensitive(self):
        assert stable_digest("a", "b") != stable_digest("b", "a")

    def test_digest_boundary_unambiguous(self):
        """('ab','c') and ('a','bc') must hash differently (length-prefixing)."""
        assert stable_digest("ab", "c") != stable_digest("a", "bc")

    def test_u64_in_range(self):
        assert 0 <= stable_u64("x") < 2**64

    @given(st.integers(min_value=0, max_value=2**64), st.text(min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_record_id_deterministic_and_hex(self, secret, entity):
        rid = record_id(secret, entity)
        assert rid == record_id(secret, entity)
        int(rid, 16)  # valid hex
        assert len(rid) == 64

    def test_record_id_unlinkable_across_entities(self):
        """Same user, different entities → unrelated identifiers.

        This is the core privacy property of Section 4.2: the server cannot
        tell that two histories belong to the same user.
        """
        a = record_id(12345, "dentist-1")
        b = record_id(12345, "dentist-2")
        assert a != b
        # No shared prefix beyond chance.
        common = sum(1 for x, y in zip(a, b) if x == y)
        assert common < 20

    def test_record_id_distinct_users(self):
        assert record_id(1, "e") != record_id(2, "e")


class TestAsciiPlot:
    def test_log2_grid_spans_range(self):
        grid = log2_grid(100)
        assert grid[0] == 1
        assert grid[-1] >= 100

    def test_render_cdfs_contains_legend(self):
        cdf = EmpiricalCDF.from_values([1, 2, 4, 8, 16])
        art = render_cdfs({"yelp": cdf}, x_label="reviews")
        assert "yelp" in art
        assert "reviews" in art

    def test_render_cdfs_multiple_series(self):
        a = EmpiricalCDF.from_values([1, 2, 3])
        b = EmpiricalCDF.from_values([10, 20, 30])
        art = render_cdfs({"a": a, "b": b}, x_label="n")
        assert "a" in art and "b" in art

    def test_render_cdfs_rejects_empty(self):
        with pytest.raises(ValueError):
            render_cdfs({}, x_label="n")

    def test_render_histogram(self):
        art = render_histogram(["one", "two"], [1, 2], title="visits")
        assert "visits" in art and "one" in art
        assert art.count("#") >= 3

    def test_render_histogram_all_zero(self):
        art = render_histogram(["a"], [0], title="t")
        assert "a" in art

    def test_render_histogram_mismatch(self):
        with pytest.raises(ValueError):
            render_histogram(["a"], [1, 2], title="t")

    def test_render_table_aligns(self):
        table = render_table(["svc", "n"], [["yelp", 24417], ["angies", 26066]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "yelp" in table and "24417" in table
