"""Tests for repro.util.distributions: calibration and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.distributions import (
    DiscreteLogNormal,
    ParetoCount,
    bounded_zipf,
    sample_categorical,
    zipf_weights,
)


class TestDiscreteLogNormal:
    def test_median_calibration(self):
        """The sample median lands near the configured median — this is the
        property the Figure 1(a) calibration depends on."""
        dist = DiscreteLogNormal(median=8.0, sigma=1.2)
        sample = dist.sample(0, 20_000)
        assert 6 <= np.median(sample) <= 10

    def test_minimum_clamp(self):
        dist = DiscreteLogNormal(median=1.0, sigma=2.0, minimum=1)
        sample = dist.sample(1, 5_000)
        assert sample.min() >= 1

    def test_maximum_clamp(self):
        dist = DiscreteLogNormal(median=100.0, sigma=2.0, maximum=1024)
        sample = dist.sample(2, 5_000)
        assert sample.max() <= 1024

    def test_heavier_sigma_heavier_tail(self):
        light = DiscreteLogNormal(median=10.0, sigma=0.5).sample(3, 20_000)
        heavy = DiscreteLogNormal(median=10.0, sigma=1.8).sample(3, 20_000)
        assert np.percentile(heavy, 99) > np.percentile(light, 99)

    def test_deterministic_given_seed(self):
        dist = DiscreteLogNormal(median=5.0, sigma=1.0)
        assert np.array_equal(dist.sample(7, 100), dist.sample(7, 100))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DiscreteLogNormal(median=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            DiscreteLogNormal(median=1.0, sigma=0.0)
        with pytest.raises(ValueError):
            DiscreteLogNormal(median=1.0, sigma=1.0, minimum=5, maximum=4)

    @given(st.floats(min_value=0.5, max_value=200.0), st.floats(min_value=0.1, max_value=2.5))
    @settings(max_examples=25, deadline=None)
    def test_samples_are_integers(self, median, sigma):
        sample = DiscreteLogNormal(median=median, sigma=sigma).sample(0, 50)
        assert sample.dtype == np.int64


class TestParetoCount:
    def test_minimum_respected(self):
        sample = ParetoCount(minimum=100, alpha=1.2).sample(0, 5_000)
        assert sample.min() >= 100

    def test_spans_orders_of_magnitude(self):
        """Low alpha should produce the multi-decade spread of Figure 1(c)."""
        sample = ParetoCount(minimum=1000, alpha=0.8).sample(1, 20_000)
        assert sample.max() / sample.min() > 1_000

    def test_maximum_clamp(self):
        sample = ParetoCount(minimum=10, alpha=0.5, maximum=10**6).sample(2, 10_000)
        assert sample.max() <= 10**6

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParetoCount(minimum=0, alpha=1.0)
        with pytest.raises(ValueError):
            ParetoCount(minimum=1, alpha=-1.0)


class TestBoundedZipf:
    def test_indices_in_range(self):
        sample = bounded_zipf(0, exponent=1.0, n_items=10, size=1_000)
        assert sample.min() >= 0 and sample.max() < 10

    def test_rank_zero_most_popular(self):
        sample = bounded_zipf(1, exponent=1.2, n_items=20, size=50_000)
        counts = np.bincount(sample, minlength=20)
        assert counts[0] == counts.max()
        assert counts[0] > 3 * counts[19]

    def test_zero_exponent_is_uniform(self):
        sample = bounded_zipf(2, exponent=0.0, n_items=5, size=50_000)
        counts = np.bincount(sample, minlength=5)
        assert counts.min() > 0.8 * counts.max()

    def test_weights_normalized(self):
        weights = zipf_weights(1.5, 30)
        assert abs(weights.sum() - 1.0) < 1e-12
        assert np.all(np.diff(weights) <= 0)


class TestSampleCategorical:
    def test_unweighted_uniform(self):
        items = ["a", "b", "c"]
        draws = [sample_categorical(np.random.default_rng(i), items) for i in range(300)]
        assert set(draws) == {"a", "b", "c"}

    def test_weighted_prefers_heavy_item(self):
        items = ["rare", "common"]
        draws = [
            sample_categorical(np.random.default_rng(i), items, weights=[1, 99])
            for i in range(500)
        ]
        assert draws.count("common") > 400

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sample_categorical(0, [])

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            sample_categorical(0, ["a"], weights=[1, 2])

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            sample_categorical(0, ["a", "b"], weights=[0, 0])
