"""Tests for repro.util.stats, including CDF property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    EmpiricalCDF,
    gini,
    histogram_counts,
    median,
    pearson,
    percentile,
    spearman,
)

finite_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestEmpiricalCDF:
    def test_known_values(self):
        cdf = EmpiricalCDF.from_values([1, 2, 3, 4])
        assert cdf.evaluate(0) == 0.0
        assert cdf.evaluate(2) == 0.5
        assert cdf.evaluate(4) == 1.0
        assert cdf.evaluate(100) == 1.0

    def test_median_matches_numpy(self):
        values = [5, 1, 9, 3, 7]
        assert EmpiricalCDF.from_values(values).median == np.median(values)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_values([])

    @given(finite_samples)
    @settings(max_examples=50, deadline=None)
    def test_monotone_nondecreasing(self, values):
        """F(x) must be monotone — the defining CDF property."""
        cdf = EmpiricalCDF.from_values(values)
        grid = np.linspace(min(values) - 1, max(values) + 1, 50)
        evaluated = cdf.evaluate_many(grid)
        assert np.all(np.diff(evaluated) >= 0)

    @given(finite_samples)
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, values):
        cdf = EmpiricalCDF.from_values(values)
        assert cdf.evaluate(min(values) - 1) == 0.0
        assert cdf.evaluate(max(values)) == 1.0

    @given(finite_samples, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_quantile_roundtrip(self, values, q):
        """F(quantile(q)) >= q: the quantile is a valid inverse."""
        cdf = EmpiricalCDF.from_values(values)
        assert cdf.evaluate(cdf.quantile(q)) >= q - 1e-12

    def test_series_default_grid_is_step_function(self):
        cdf = EmpiricalCDF.from_values([1, 1, 2, 5])
        xs, ys = cdf.series()
        assert list(xs) == [1, 2, 5]
        assert list(ys) == [0.5, 0.75, 1.0]

    def test_ks_distance_identical_is_zero(self):
        cdf = EmpiricalCDF.from_values([1, 2, 3])
        assert cdf.ks_distance(cdf) == 0.0

    def test_ks_distance_disjoint_is_one(self):
        a = EmpiricalCDF.from_values([1, 2])
        b = EmpiricalCDF.from_values([10, 20])
        assert a.ks_distance(b) == 1.0

    def test_ks_distance_symmetric(self):
        a = EmpiricalCDF.from_values([1, 5, 9])
        b = EmpiricalCDF.from_values([2, 4, 8, 16])
        assert a.ks_distance(b) == pytest.approx(b.ks_distance(a))


class TestScalarStats:
    def test_median_and_percentile_agree(self):
        values = list(range(101))
        assert median(values) == percentile(values, 50)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])
        with pytest.raises(ValueError):
            percentile([], 50)


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_constant_series_is_zero_not_nan(self):
        assert pearson([1, 2, 3], [5, 5, 5]) == 0.0

    def test_single_point_is_zero(self):
        assert pearson([1], [2]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_spearman_monotone_nonlinear(self):
        xs = [1, 2, 3, 4, 5]
        ys = [1, 8, 27, 64, 125]  # monotone but nonlinear
        assert spearman(xs, ys) == pytest.approx(1.0)

    @given(finite_samples.filter(lambda v: len(v) >= 2))
    @settings(max_examples=50, deadline=None)
    def test_pearson_in_range(self, values):
        rng = np.random.default_rng(0)
        other = rng.random(len(values))
        r = pearson(values, other)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestHistogram:
    def test_counts_sum_to_in_range_values(self):
        counts = histogram_counts([1, 2, 3, 10], [0, 5, 20])
        assert list(counts) == [3, 1]

    def test_needs_two_edges(self):
        with pytest.raises(ValueError):
            histogram_counts([1], [0])


class TestGini:
    def test_perfect_equality_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_total_concentration_near_one(self):
        values = [0] * 999 + [100]
        assert gini(values) > 0.99

    def test_all_zero_is_zero(self):
        assert gini([0, 0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_in_unit_interval(self, values):
        g = gini(values)
        assert 0.0 <= g <= 1.0


class TestAgainstScipy:
    """Cross-validate the hand-rolled statistics against scipy."""

    @given(finite_samples.filter(lambda v: len(v) >= 3))
    @settings(max_examples=40, deadline=None)
    def test_ks_distance_matches_scipy(self, values):
        from scipy import stats as scipy_stats

        rng = np.random.default_rng(0)
        other = list(rng.normal(0, 1000, size=len(values)))
        ours = EmpiricalCDF.from_values(values).ks_distance(
            EmpiricalCDF.from_values(other)
        )
        theirs = scipy_stats.ks_2samp(values, other).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)

    @given(finite_samples.filter(lambda v: len(v) >= 3))
    @settings(max_examples=40, deadline=None)
    def test_pearson_matches_scipy(self, values):
        from scipy import stats as scipy_stats

        import warnings

        rng = np.random.default_rng(1)
        other = rng.normal(0, 1, size=len(values))
        ours = pearson(values, other)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            theirs = scipy_stats.pearsonr(values, other).statistic
        if np.isnan(theirs):
            # scipy declines constant input; we define it as 0.
            assert ours == 0.0
            return
        # Implementations differ in summation order; with denormal-scale
        # inputs catastrophic cancellation costs a few digits.
        assert ours == pytest.approx(theirs, abs=1e-6)

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=5, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_spearman_matches_scipy_on_distinct_values(self, values):
        from scipy import stats as scipy_stats

        distinct = list(dict.fromkeys(values))
        if len(distinct) < 3:
            return
        rng = np.random.default_rng(2)
        other = list(rng.permutation(len(distinct)).astype(float))
        ours = spearman(distinct, other)
        theirs = scipy_stats.spearmanr(distinct, other).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)
