"""Tests for the grid spatial index — exactness is the whole contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensing.spatial import GridIndex
from repro.world.entities import Entity, EntityKind
from repro.world.geography import Point


def entities_at(points):
    return [
        Entity(
            entity_id=f"e{i}", kind=EntityKind.RESTAURANT, category="thai",
            location=Point(x, y), quality=3.0,
        )
        for i, (x, y) in enumerate(points)
    ]


def linear_nearest(entities, point):
    return min(entities, key=lambda e: point.distance_to(e.location))


class TestGridIndex:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridIndex([], cell_km=1.0)
        with pytest.raises(ValueError):
            GridIndex(entities_at([(0, 0)]), cell_km=0)

    def test_single_entity(self):
        index = GridIndex(entities_at([(3, 4)]))
        entity, distance = index.nearest(Point(0, 0))
        assert entity.entity_id == "e0"
        assert distance == pytest.approx(5.0)

    def test_far_query_terminates(self):
        index = GridIndex(entities_at([(0, 0)]))
        entity, distance = index.nearest(Point(500, 500))
        assert entity.entity_id == "e0"
        assert distance == pytest.approx(np.hypot(500, 500))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=30),
                st.floats(min_value=0, max_value=30),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=-5, max_value=35),
        st.floats(min_value=-5, max_value=35),
        st.sampled_from([0.5, 1.0, 3.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_linear_scan(self, coords, qx, qy, cell):
        """The grid answer must equal the brute-force answer, always."""
        entities = entities_at(coords)
        index = GridIndex(entities, cell_km=cell)
        query = Point(qx, qy)
        grid_entity, grid_distance = index.nearest(query)
        best = linear_nearest(entities, query)
        assert grid_distance == pytest.approx(query.distance_to(best.location))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=20),
                st.floats(min_value=0, max_value=20),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0, max_value=25),
        st.floats(min_value=0, max_value=25),
        st.floats(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_within_matches_filter(self, coords, qx, qy, radius):
        entities = entities_at(coords)
        index = GridIndex(entities, cell_km=1.0)
        query = Point(qx, qy)
        got = {e.entity_id for e, _ in index.within(query, radius)}
        expected = {
            e.entity_id
            for e in entities
            if query.distance_to(e.location) <= radius
        }
        assert got == expected

    def test_within_sorted_by_distance(self):
        index = GridIndex(entities_at([(0, 0), (1, 0), (2, 0)]))
        matches = index.within(Point(0, 0), 5.0)
        distances = [d for _, d in matches]
        assert distances == sorted(distances)

    def test_within_negative_radius_rejected(self):
        index = GridIndex(entities_at([(0, 0)]))
        with pytest.raises(ValueError):
            index.within(Point(0, 0), -1.0)
