"""Tests for raw trace types and stay-point extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensing.location import (
    StayPointConfig,
    extract_stay_points,
    travel_distance_before,
)
from repro.sensing.traces import (
    CallRecord,
    DeviceTrace,
    LocationSample,
    PaymentRecord,
)
from repro.world.geography import Point


def fixes_at(point, start, count, interval=300.0, jitter=0.0):
    return [
        LocationSample(time=start + i * interval, point=Point(point.x + jitter, point.y))
        for i in range(count)
    ]


class TestTraceTypes:
    def test_validation(self):
        with pytest.raises(ValueError):
            LocationSample(time=0, point=Point(0, 0), accuracy_km=-1)
        with pytest.raises(ValueError):
            CallRecord(time=0, number="x", duration=-1)
        with pytest.raises(ValueError):
            PaymentRecord(time=0, merchant_name="m", amount=-1)

    def test_sort_orders_all_streams(self):
        trace = DeviceTrace(user_id="u")
        trace.location_samples = [
            LocationSample(time=5, point=Point(0, 0)),
            LocationSample(time=1, point=Point(0, 0)),
        ]
        trace.call_records = [
            CallRecord(time=9, number="a", duration=1),
            CallRecord(time=2, number="b", duration=1),
        ]
        trace.sort()
        assert trace.location_samples[0].time == 1
        assert trace.call_records[0].time == 2

    def test_span(self):
        trace = DeviceTrace(user_id="u")
        assert trace.span == 0.0
        trace.location_samples = fixes_at(Point(1, 1), 100.0, 3)
        assert trace.span == 600.0


class TestStayPointExtraction:
    def test_single_dwell_detected(self):
        samples = fixes_at(Point(5, 5), 0.0, 5)
        stays = extract_stay_points(samples)
        assert len(stays) == 1
        assert stays[0].duration == 1200.0
        assert stays[0].center.distance_to(Point(5, 5)) < 0.01

    def test_short_dwell_filtered(self):
        samples = fixes_at(Point(5, 5), 0.0, 2, interval=100.0)  # 100s dwell
        assert extract_stay_points(samples) == []

    def test_two_separate_dwells(self):
        samples = fixes_at(Point(1, 1), 0.0, 4) + fixes_at(Point(9, 9), 10_000.0, 4)
        stays = extract_stay_points(samples)
        assert len(stays) == 2
        assert stays[0].center.distance_to(Point(1, 1)) < 0.01
        assert stays[1].center.distance_to(Point(9, 9)) < 0.01

    def test_noise_within_radius_clusters(self):
        base = Point(3, 3)
        samples = []
        offsets = [0.0, 0.04, -0.04, 0.02, -0.02]
        for i, off in enumerate(offsets):
            samples.append(
                LocationSample(time=i * 300.0, point=Point(base.x + off, base.y - off))
            )
        stays = extract_stay_points(samples)
        assert len(stays) == 1

    def test_travel_samples_do_not_form_stays(self):
        # A straight-line pass through: each fix 0.5 km from the last.
        samples = [
            LocationSample(time=i * 60.0, point=Point(i * 0.5, 0.0)) for i in range(20)
        ]
        assert extract_stay_points(samples) == []

    def test_unordered_samples_rejected(self):
        samples = [
            LocationSample(time=100.0, point=Point(0, 0)),
            LocationSample(time=50.0, point=Point(0, 0)),
        ]
        with pytest.raises(ValueError):
            extract_stay_points(samples)

    def test_empty_input(self):
        assert extract_stay_points([]) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StayPointConfig(radius_km=0)
        with pytest.raises(ValueError):
            StayPointConfig(min_duration=0)
        with pytest.raises(ValueError):
            StayPointConfig(min_samples=0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=20),
                st.floats(min_value=0, max_value=20),
            ),
            min_size=0,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_stays_are_time_ordered_and_disjoint(self, coords):
        samples = [
            LocationSample(time=i * 240.0, point=Point(x, y))
            for i, (x, y) in enumerate(coords)
        ]
        stays = extract_stay_points(samples)
        for a, b in zip(stays, stays[1:]):
            assert a.end <= b.start

    def test_travel_distance_before(self):
        samples = fixes_at(Point(0, 0), 0.0, 4) + fixes_at(Point(3, 4), 10_000.0, 4)
        stays = extract_stay_points(samples)
        assert travel_distance_before(stays, 0) == 0.0
        assert travel_distance_before(stays, 1) == pytest.approx(5.0, abs=0.05)
        with pytest.raises(IndexError):
            travel_distance_before(stays, 2)
