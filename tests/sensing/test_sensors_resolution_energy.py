"""Tests for trace generation, entity resolution, and the energy model."""

import pytest

from repro.sensing.energy import evaluate_policy
from repro.sensing.policy import SensingPolicy, continuous_policy, duty_cycled_policy
from repro.sensing.resolution import (
    EntityResolver,
    InteractionType,
    ObservedInteraction,
)
from repro.sensing.sensors import generate_trace, generate_traces
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.events import CallEvent, VisitEvent
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def simulated_town():
    town = build_town(TownConfig(n_users=25), seed=8)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=45), seed=8
    ).run()
    return town, result, 45 * DAY


def most_active_user(result):
    counts = {}
    for event in result.events:
        if isinstance(event, VisitEvent):
            counts[event.user_id] = counts.get(event.user_id, 0) + 1
    return max(counts, key=counts.get)


class TestTraceGeneration:
    def test_trace_sorted_and_bounded(self, simulated_town):
        town, result, horizon = simulated_town
        user = most_active_user(result)
        trace = generate_trace(user, town, result, horizon, seed=8)
        times = [s.time for s in trace.location_samples]
        assert times == sorted(times)
        assert all(0 <= t <= horizon for t in times)

    def test_deterministic(self, simulated_town):
        town, result, horizon = simulated_town
        user = most_active_user(result)
        a = generate_trace(user, town, result, horizon, seed=8)
        b = generate_trace(user, town, result, horizon, seed=8)
        assert [s.time for s in a.location_samples] == [s.time for s in b.location_samples]

    def test_calls_include_entity_and_personal(self, simulated_town):
        town, result, horizon = simulated_town
        directory = town.phone_directory
        traces = generate_traces(town, result, horizon, seed=8)
        all_calls = [c for trace in traces.values() for c in trace.call_records]
        entity_calls = [c for c in all_calls if c.number in directory]
        personal_calls = [c for c in all_calls if c.number not in directory]
        assert personal_calls, "personal calls should pollute the logs"
        true_calls = sum(1 for e in result.events if isinstance(e, CallEvent))
        assert len(entity_calls) == sum(
            1
            for e in result.events
            if isinstance(e, CallEvent) and e.start_time < horizon
        )

    def test_continuous_policy_takes_many_more_fixes(self, simulated_town):
        town, result, horizon = simulated_town
        user = most_active_user(result)
        duty = generate_trace(user, town, result, horizon, duty_cycled_policy(), seed=8)
        cont = generate_trace(user, town, result, horizon, continuous_policy(), seed=8)
        assert cont.n_gps_fixes > 5 * duty.n_gps_fixes

    def test_payments_only_for_restaurants(self, simulated_town):
        town, result, horizon = simulated_town
        traces = generate_traces(town, result, horizon, seed=8)
        restaurant_ids = {
            e.entity_id for e in town.entities if e.kind.label == "restaurant"
        }
        for trace in traces.values():
            for payment in trace.payment_records:
                assert payment.merchant_name in restaurant_ids


class TestEntityResolver:
    def test_requires_directory(self):
        with pytest.raises(ValueError):
            EntityResolver([])

    def test_resolves_visits_against_ground_truth(self, simulated_town):
        """Most true visits should be recovered; precision should be high."""
        town, result, horizon = simulated_town
        resolver = EntityResolver(town.entities)
        user = most_active_user(result)
        trace = generate_trace(user, town, result, horizon, seed=8)
        observed = [
            o
            for o in resolver.resolve(trace)
            if o.interaction_type is InteractionType.VISIT
        ]
        true_visits = [
            e
            for e in result.events
            if isinstance(e, VisitEvent)
            and e.user_id == user
            and e.start_time < horizon
        ]
        assert len(observed) >= 0.7 * len(true_visits)
        # Every observation should name an entity the user really visited
        # at a nearby time (resolution may confuse co-located venues, so
        # allow a small error rate).
        good = 0
        for obs in observed:
            if any(
                v.entity_id == obs.entity_id and abs(v.start_time - obs.time) < 1 * HOUR
                for v in true_visits
            ):
                good += 1
        assert good >= 0.8 * max(len(observed), 1)

    def test_personal_calls_dropped(self, simulated_town):
        town, result, horizon = simulated_town
        resolver = EntityResolver(town.entities)
        user = town.users[0].user_id
        trace = generate_trace(user, town, result, horizon, seed=8)
        observed_calls = [
            o
            for o in resolver.resolve(trace)
            if o.interaction_type is InteractionType.CALL
        ]
        entity_ids = {e.entity_id for e in town.entities}
        assert all(o.entity_id in entity_ids for o in observed_calls)

    def test_interactions_time_ordered(self, simulated_town):
        town, result, horizon = simulated_town
        resolver = EntityResolver(town.entities)
        user = most_active_user(result)
        observed = resolver.resolve(generate_trace(user, town, result, horizon, seed=8))
        times = [o.time for o in observed]
        assert times == sorted(times)

    def test_group_by_entity(self):
        resolver_input = [
            ObservedInteraction("e1", InteractionType.VISIT, 0.0, 600.0),
            ObservedInteraction("e2", InteractionType.CALL, 10.0, 60.0),
            ObservedInteraction("e1", InteractionType.VISIT, 20.0, 600.0),
        ]
        town = build_town(TownConfig(n_users=2), seed=0)
        resolver = EntityResolver(town.entities)
        grouped = resolver.group_by_entity(resolver_input)
        assert len(grouped["e1"]) == 2
        assert len(grouped["e2"]) == 1

    def test_observed_interaction_validation(self):
        with pytest.raises(ValueError):
            ObservedInteraction("e", InteractionType.VISIT, 0.0, duration=-1.0)
        with pytest.raises(ValueError):
            ObservedInteraction("e", InteractionType.VISIT, 0.0, 1.0, travel_km=-1.0)


class TestPolicyAndEnergy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SensingPolicy(
                name="bad", burst_offsets=(), stationary_interval=0,
                moving_interval=None, accelerometer_gated=False,
            )

    def test_energy_accounting(self):
        policy = continuous_policy()
        assert policy.energy_joules(100, 3600.0) == pytest.approx(100.0)
        gated = duty_cycled_policy()
        assert gated.energy_joules(100, 3600.0) == pytest.approx(103.6)

    def test_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            continuous_policy().energy_joules(-1, 10)

    def test_duty_cycling_saves_energy_without_losing_visits(self, simulated_town):
        """The Section 5 claim (A6): big energy cut, near-equal recall."""
        town, result, horizon = simulated_town
        duty = evaluate_policy(
            town, result, horizon, duty_cycled_policy(), seed=8, max_users=10
        )
        cont = evaluate_policy(
            town, result, horizon, continuous_policy(), seed=8, max_users=10
        )
        assert duty.energy_joules < 0.25 * cont.energy_joules
        assert duty.recall >= cont.recall - 0.1
        assert duty.recall > 0.7

    def test_evaluation_counts_consistent(self, simulated_town):
        town, result, horizon = simulated_town
        ev = evaluate_policy(
            town, result, horizon, duty_cycled_policy(), seed=8, max_users=5
        )
        assert ev.n_matched_visits <= ev.n_true_visits
        assert ev.n_matched_visits <= ev.n_detected_visits
        assert ev.energy_per_user_day_joules > 0
