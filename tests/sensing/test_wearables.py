"""Tests for the wearable emotion channel (Section 3.1 extension)."""

import pytest

from repro.sensing.wearables import (
    EmotionSample,
    WearableConfig,
    generate_emotion_trace,
    mean_valence_by_entity,
    valence_of_opinion,
)
from repro.util.clock import DAY
from repro.util.stats import pearson
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.events import VisitEvent
from repro.world.population import TownConfig, build_town


@pytest.fixture(scope="module")
def world():
    town = build_town(TownConfig(n_users=40), seed=37)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=120), seed=37
    ).run()
    return town, result, 120 * DAY


class TestValenceMapping:
    def test_neutral_at_midpoint(self):
        assert valence_of_opinion(2.5) == 0.0

    def test_extremes(self):
        assert valence_of_opinion(5.0) == 1.0
        assert valence_of_opinion(0.0) == -1.0

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            valence_of_opinion(5.5)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            EmotionSample(time=0.0, valence=1.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WearableConfig(sample_interval=0)
        with pytest.raises(ValueError):
            WearableConfig(sample_noise=-1)


class TestEmotionTrace:
    def test_samples_only_for_visited_entities(self, world):
        town, result, horizon = world
        user = result.events[0].user_id
        trace = generate_emotion_trace(user, result, horizon, seed=37)
        visited = {
            e.entity_id
            for e in result.events
            if isinstance(e, VisitEvent) and e.user_id == user
        }
        assert set(trace) <= visited

    def test_samples_within_visit_windows(self, world):
        town, result, horizon = world
        user = max(
            {e.user_id for e in result.events},
            key=lambda u: sum(1 for e in result.events if e.user_id == u),
        )
        trace = generate_emotion_trace(user, result, horizon, seed=37)
        windows = [
            (e.entity_id, e.start_time, e.end_time)
            for e in result.events
            if isinstance(e, VisitEvent) and e.user_id == user
        ]
        for entity_id, samples in trace.items():
            for sample in samples:
                assert any(
                    eid == entity_id and start <= sample.time <= end
                    for eid, start, end in windows
                )

    def test_deterministic(self, world):
        _, result, horizon = world
        user = result.events[0].user_id
        a = generate_emotion_trace(user, result, horizon, seed=37)
        b = generate_emotion_trace(user, result, horizon, seed=37)
        assert {k: [s.valence for s in v] for k, v in a.items()} == {
            k: [s.valence for s in v] for k, v in b.items()
        }

    def test_mean_valence_tracks_true_opinion(self, world):
        """The core property: across (user, entity) pairs, the wearable's
        mean valence correlates with the latent opinion — noisily."""
        town, result, horizon = world
        valences, opinions = [], []
        for user in town.users:
            trace = generate_emotion_trace(user.user_id, result, horizon, seed=37)
            means = mean_valence_by_entity(trace)
            for entity_id, mean in means.items():
                truth = result.opinions.get((user.user_id, entity_id))
                if truth is not None:
                    valences.append(mean)
                    opinions.append(truth.opinion)
        assert len(valences) > 100
        correlation = pearson(valences, opinions)
        assert 0.2 < correlation < 0.95  # informative but far from perfect

    def test_noise_degrades_signal(self, world):
        town, result, horizon = world
        def correlation_for(noise):
            config = WearableConfig(sample_noise=noise, user_baseline_noise=noise / 2)
            valences, opinions = [], []
            for user in town.users[:25]:
                trace = generate_emotion_trace(
                    user.user_id, result, horizon, config, seed=37
                )
                for entity_id, mean in mean_valence_by_entity(trace).items():
                    truth = result.opinions.get((user.user_id, entity_id))
                    if truth is not None:
                        valences.append(mean)
                        opinions.append(truth.opinion)
            return pearson(valences, opinions)

        assert correlation_for(0.05) > correlation_for(1.0)


class TestFeatureIntegration:
    def test_mean_valence_enters_feature_vector(self):
        from repro.core.features import OpinionFeatures

        names = OpinionFeatures.feature_names()
        assert "mean_valence" in names
        assert names.index("mean_valence") == len(names) - 1

    def test_extract_all_features_accepts_emotion(self, world):
        from repro.client.app import infer_home
        from repro.core.features import extract_all_features
        from repro.sensing.resolution import EntityResolver
        from repro.sensing.sensors import generate_trace

        town, result, horizon = world
        user = max(
            {e.user_id for e in result.events},
            key=lambda u: sum(1 for e in result.events if e.user_id == u),
        )
        trace = generate_trace(user, town, result, horizon, seed=37)
        interactions = EntityResolver(town.entities).resolve(trace)
        emotion = mean_valence_by_entity(
            generate_emotion_trace(user, result, horizon, seed=37)
        )
        features = extract_all_features(
            interactions, {e.entity_id: e for e in town.entities}, infer_home(trace),
            emotion=emotion,
        )
        assert any(f.mean_valence != 0.0 for f in features.values())
