"""B5 — incremental maintenance vs full recompute on a mostly-idle fleet.

The tentpole claim of PR 5: with dirty-entity tracking, a maintenance
cycle whose intake delta touched only a small slice of the catalog must
run at least 2x faster than a from-scratch recompute of the same store —
while producing a byte-identical report and identical summaries.  The
delta here is confined to two small entity kinds (10 of 120 entities,
8.3%), so the profile-digest guard re-dirties only those kinds and the
other 110 entities ride their caches.  Emits ``BENCH_5.json`` (consumed
by ``make bench-incremental`` and EXPERIMENTS.md).
"""

import hashlib
import json
import pathlib
import time

import numpy as np

from _harness import comparison_table, emit

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.service.server import RSPServer
from repro.util.clock import DAY
from repro.util.rng import make_rng

from conftest import BENCH_SEED

from repro.world.population import TownConfig, build_town

N_BASE_HISTORIES = 9_000
N_DELTA_HISTORIES = 150
RECORDS_PER_HISTORY = 8
#: The delta is confined to these kinds — 10 of the town's 120 entities.
DELTA_KINDS = ("plastic_surgery", "pediatrics")
REQUIRED_SPEEDUP = 2.0


def build_deliveries(label, entity_ids, n_histories, nonce_base):
    """``n_histories`` realistic multi-record histories over ``entity_ids``."""
    rng = make_rng(BENCH_SEED, f"bench/incremental/{label}")
    gaps = rng.uniform(0.5 * DAY, 5 * DAY, (n_histories, RECORDS_PER_HISTORY))
    times = np.cumsum(gaps, axis=1)
    durations = rng.uniform(600.0, 7200.0, (n_histories, RECORDS_PER_HISTORY))
    travels = rng.uniform(0.1, 20.0, (n_histories, RECORDS_PER_HISTORY))
    entity_choice = rng.integers(0, len(entity_ids), n_histories)
    ratings = np.round(rng.uniform(1.0, 5.0, n_histories), 1)
    deliveries = []
    nonce = nonce_base
    for i in range(n_histories):
        hid = hashlib.sha256(f"bench-{label}-history-{i}".encode()).hexdigest()
        eid = entity_ids[int(entity_choice[i])]
        t_row, d_row, k_row = times[i], durations[i], travels[i]
        for k in range(RECORDS_PER_HISTORY):
            record = InteractionUpload(
                history_id=hid,
                entity_id=eid,
                interaction_type="visit",
                event_time=float(t_row[k]),
                duration=float(d_row[k]),
                travel_km=float(k_row[k]),
            )
            deliveries.append(
                Delivery(
                    payload=Envelope(
                        record=record, token=None, nonce=nonce.to_bytes(16, "big")
                    ),
                    arrival_time=float(t_row[k]) + 3600.0,
                    channel_tag="c",
                )
            )
            nonce += 1
        if i % 3 == 0:
            opinion = OpinionUpload(
                history_id=hid, entity_id=eid, rating=float(ratings[i])
            )
            deliveries.append(
                Delivery(
                    payload=Envelope(
                        record=opinion, token=None, nonce=nonce.to_bytes(16, "big")
                    ),
                    arrival_time=float(t_row[-1]) + 7200.0,
                    channel_tag="c",
                )
            )
            nonce += 1
    return deliveries


def test_bench_incremental_maintenance_speedup(benchmark):
    town = build_town(TownConfig(n_users=10), seed=BENCH_SEED)
    all_ids = [e.entity_id for e in town.entities]
    delta_ids = [e.entity_id for e in town.entities if e.kind.label in DELTA_KINDS]
    base = build_deliveries("base", all_ids, N_BASE_HISTORIES, nonce_base=0)
    delta = build_deliveries(
        "delta", delta_ids, N_DELTA_HISTORIES, nonce_base=10_000_000
    )

    incremental = RSPServer(
        catalog=town.entities, key_seed=BENCH_SEED, require_tokens=False
    )
    full = RSPServer(
        catalog=town.entities,
        key_seed=BENCH_SEED,
        require_tokens=False,
        incremental=False,
    )
    assert incremental.receive_all(base) == len(base)
    assert full.receive_all(base) == len(base)
    # Warm cycle: everything is intake-dirty, both modes do full work.
    assert repr(incremental.run_maintenance()) == repr(full.run_maintenance())
    assert incremental.all_summaries() == full.all_summaries()

    # The measured cycle: a delta confined to the two small kinds.
    assert incremental.receive_all(delta) == len(delta)
    assert full.receive_all(delta) == len(delta)

    start = time.perf_counter()
    full_report = full.run_maintenance()
    full_s = time.perf_counter() - start

    def incremental_cycle():
        return incremental.run_maintenance()

    start = time.perf_counter()
    incremental_report = benchmark.pedantic(incremental_cycle, rounds=1, iterations=1)
    incremental_s = time.perf_counter() - start

    # Equivalence first: speed bought with drift is worthless.
    assert repr(incremental_report) == repr(full_report)
    assert incremental.all_summaries() == full.all_summaries()

    dirty_fraction = len(delta_ids) / len(all_ids)
    speedup = full_s / incremental_s
    emit(comparison_table(
        f"B5: delta cycle, {N_DELTA_HISTORIES} new histories on "
        f"{len(delta_ids)}/{len(all_ids)} entities ({dirty_fraction:.1%} dirty)",
        ["configuration", "maintenance wall time", "speedup"],
        [
            ["full recompute", f"{full_s:.3f}s", "1.00x"],
            ["incremental", f"{incremental_s:.3f}s", f"{speedup:.2f}x"],
        ],
    ))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_5.json"
    out.write_text(json.dumps(
        {
            "bench": "incremental-maintenance",
            "n_base_histories": N_BASE_HISTORIES,
            "n_delta_histories": N_DELTA_HISTORIES,
            "records_per_history": RECORDS_PER_HISTORY,
            "n_records": incremental.history_store.n_records,
            "n_entities": len(all_ids),
            "n_dirty_entities": len(delta_ids),
            "dirty_fraction": round(dirty_fraction, 4),
            "full_s": round(full_s, 4),
            "incremental_s": round(incremental_s, 4),
            "speedup": round(speedup, 3),
            "required_speedup": REQUIRED_SPEEDUP,
        },
        indent=2,
    ) + "\n")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental cycle {speedup:.2f}x < required {REQUIRED_SPEEDUP}x "
        f"(full {full_s:.3f}s vs incremental {incremental_s:.3f}s)"
    )
