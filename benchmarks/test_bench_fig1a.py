"""F1a — Figure 1(a): distribution across entities of number of reviews.

Paper: "the median number of reviews is 8, 5, and 25 on Angie's List,
Healthgrades, and Yelp", with a heavy tail reaching ~1024 reviews and a
large fraction of entities having very few.
"""

from _harness import comparison_table, emit

from repro.measurement import figure1a

PAPER_MEDIANS = {"Yelp": 25, "Angie's List": 8, "Healthgrades": 5}


def test_bench_fig1a(benchmark, crawls):
    result = benchmark.pedantic(
        figure1a, args=(list(crawls.values()),), rounds=1, iterations=1
    )

    rows = [
        [
            service,
            PAPER_MEDIANS[service],
            f"{result.median(service):.0f}",
            f"{result.fraction_with_at_most(service, 50):.2f}",
        ]
        for service in PAPER_MEDIANS
    ]
    emit(comparison_table(
        "Figure 1(a): reviews per entity",
        ["service", "paper median", "measured median", "F(50) measured"],
        rows,
    ))
    emit(result.render())

    # Shape assertions: medians near the paper's, ordering preserved,
    # heavy tail present, most entities poorly reviewed.
    for service, paper_median in PAPER_MEDIANS.items():
        measured = result.median(service)
        assert 0.6 * paper_median <= measured <= 1.5 * paper_median, service
    assert (
        result.median("Yelp")
        > result.median("Angie's List")
        > result.median("Healthgrades")
    )
    for service in PAPER_MEDIANS:
        cdf = result.cdfs[service]
        assert cdf.quantile(0.999) > 100  # the long tail the figure's axis shows
        assert result.fraction_with_at_most(service, 50) > 0.6
