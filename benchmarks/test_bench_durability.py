"""B7 — the price of durability: WAL-on intake overhead and replay speed.

The tentpole acceptance gate of PR 7: journaling every accepted mutation
(write + flush per record, group-commit ``fsync`` per batch) must cost at
most 1.5x the in-memory intake path.  The comparison runs the *production*
intake configuration — ``require_tokens=True`` with the default 512-bit
blind-signature keys — because that is the path a deployment actually
pays for: every envelope's token is verified and its spent-token burn
journaled, exactly as in service.  The crash side measures a full cold
replay of the WAL into a fresh server, normalized to seconds per 100k
records.  Emits ``BENCH_7.json`` (consumed by ``make bench-durable`` and
EXPERIMENTS.md).
"""

import json
import pathlib
import time

from _harness import comparison_table, emit

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.durability.journal import DurableJournal, attach_journal
from repro.durability.recovery import recover_server
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.privacy.tokens import TokenWallet
from repro.service.server import RSPServer
from repro.world.population import TownConfig, build_town

from conftest import BENCH_SEED

N_ENVELOPES = 3_000
MAX_OVERHEAD = 1.5


def make_server(town):
    """The production intake configuration (tokens on, default keys)."""
    return RSPServer(catalog=town.entities, key_seed=BENCH_SEED, quota_per_day=10**9)


def build_deliveries(town, issuer):
    """``N_ENVELOPES`` tokened uploads: interactions plus opinions."""
    wallet = TokenWallet(device_id="bench-device")
    tokens = []
    for lo in range(0, N_ENVELOPES, 500):
        count = min(500, N_ENVELOPES - lo)
        blinded = wallet.mint(issuer.public_key, count)
        signatures = issuer.issue("bench-device", blinded, now=100.0)
        wallet.accept_signatures(issuer.public_key, signatures)
    for _ in range(N_ENVELOPES):
        tokens.append(wallet.spend())

    ids = sorted(entity.entity_id for entity in town.entities)
    deliveries = []
    for i, token in enumerate(tokens):
        entity_id = ids[i % len(ids)]
        if i % 4 == 3:
            record = OpinionUpload(
                history_id=f"hist-{i - 3:06d}",
                entity_id=ids[(i - 3) % len(ids)],
                rating=float(1 + i % 5),
            )
        else:
            record = InteractionUpload(
                history_id=f"hist-{i:06d}",
                entity_id=entity_id,
                interaction_type="visit" if i % 2 else "call",
                event_time=600.0 * i,
                duration=300.0 + i % 1800,
                travel_km=0.5 * (i % 7),
            )
        deliveries.append(
            Delivery(
                payload=Envelope(
                    record=record, token=token, nonce=i.to_bytes(16, "big")
                ),
                arrival_time=600.0 * i + 120.0,
                channel_tag="c",
            )
        )
    return deliveries


def test_bench_durable_intake_and_recovery(benchmark, tmp_path):
    town = build_town(TownConfig(n_users=10), seed=BENCH_SEED)
    bare = make_server(town)
    deliveries = build_deliveries(town, bare.issuer)

    start = time.perf_counter()
    assert bare.receive_all(deliveries) == len(deliveries)
    bare_s = time.perf_counter() - start

    # The journaled twin redeems the same tokens against the same key.
    durable = make_server(town)
    directory = tmp_path / "primary"
    attach_journal(durable, DurableJournal(directory))

    def journaled_intake():
        assert durable.receive_all(deliveries) == len(deliveries)

    start = time.perf_counter()
    benchmark.pedantic(journaled_intake, rounds=1, iterations=1)
    wal_s = time.perf_counter() - start
    durable.journal.close()
    overhead = wal_s / bare_s

    # Crash-side: cold-replay the whole WAL into a fresh server.
    recovered = make_server(town)
    start = time.perf_counter()
    report = recover_server(recovered, directory)
    recovery_s = time.perf_counter() - start
    assert report.n_replayed == len(deliveries)
    per_100k = recovery_s * (100_000 / len(deliveries))

    # Equivalence first: durability bought with drift is worthless.
    assert repr(recovered.run_maintenance()) == repr(bare.run_maintenance())

    per_envelope_us = (wal_s - bare_s) / len(deliveries) * 1e6
    emit(comparison_table(
        f"B7: durable intake, {len(deliveries)} tokened envelopes "
        f"(production path, 512-bit keys)",
        ["configuration", "wall time", "relative"],
        [
            ["in-memory intake", f"{bare_s:.3f}s", "1.00x"],
            ["WAL-on intake (group commit)", f"{wal_s:.3f}s",
             f"{overhead:.2f}x (+{per_envelope_us:.0f}us/envelope)"],
            ["cold recovery (full replay)", f"{recovery_s:.3f}s",
             f"{per_100k:.2f}s per 100k records"],
        ],
    ))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_7.json"
    out.write_text(json.dumps(
        {
            "bench": "durable-wal",
            "n_envelopes": len(deliveries),
            "bare_s": round(bare_s, 4),
            "wal_s": round(wal_s, 4),
            "overhead": round(overhead, 3),
            "max_overhead": MAX_OVERHEAD,
            "recovery_s": round(recovery_s, 4),
            "recovery_s_per_100k": round(per_100k, 4),
            "records_replayed": report.n_replayed,
        },
        indent=2,
    ) + "\n")

    assert overhead <= MAX_OVERHEAD, (
        f"WAL-on intake {overhead:.2f}x > allowed {MAX_OVERHEAD}x "
        f"(bare {bare_s:.3f}s vs journaled {wal_s:.3f}s)"
    )
