"""B6 — whole-program analyzer: cold extraction vs warm incremental cache.

The tentpole claim of PR 6: per-file fact extraction (parse + local
dataflow) dominates a cold analysis run, so the digest-keyed cache must
make a warm re-analysis of the unchanged tree cheap — under 25% of the
cold wall time — while producing byte-identical findings.  Emits
``BENCH_6.json`` (consumed by ``make bench-analyze`` and EXPERIMENTS.md).
"""

import json
import pathlib
import time

from _harness import comparison_table, emit

from repro.analysis import Baseline, WholeProgramAnalyzer

ROOT = pathlib.Path(__file__).resolve().parent.parent
MAX_WARM_FRACTION = 0.25


def test_warm_cache_analysis(benchmark, tmp_path, monkeypatch):
    # Baseline fingerprints embed repo-relative paths: run from the root.
    monkeypatch.chdir(ROOT)
    cache = tmp_path / "analysis-cache.json"
    baseline = Baseline.load(ROOT / "analysis_baseline.json")
    src = "src/repro"

    start = time.perf_counter()
    cold = WholeProgramAnalyzer(cache_path=cache).run([src], baseline=baseline)
    cold_s = time.perf_counter() - start
    assert cold.n_cached == 0 and cold.n_files > 100
    assert cold.ok, [f.message for f in cold.findings]

    def warm_run():
        return WholeProgramAnalyzer(cache_path=cache).run([src], baseline=baseline)

    start = time.perf_counter()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_s = time.perf_counter() - start

    # Equivalence first: a cache that changes the answer is a bug.
    assert warm.n_cached == warm.n_files == cold.n_files
    assert [f.to_dict() for f in warm.all_produced()] == [
        f.to_dict() for f in cold.all_produced()
    ]

    fraction = warm_s / cold_s
    emit(comparison_table(
        f"B6: whole-program analysis over {cold.n_files} files",
        ["configuration", "wall time", "vs cold"],
        [
            ["cold (parse + extract)", f"{cold_s:.3f}s", "100.0%"],
            ["warm (fact cache)", f"{warm_s:.3f}s", f"{100.0 * fraction:.1f}%"],
        ],
    ))

    out = ROOT / "BENCH_6.json"
    out.write_text(json.dumps(
        {
            "bench": "analysis-incremental-cache",
            "n_files": cold.n_files,
            "n_findings_baselined": len(cold.baselined),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_fraction": round(fraction, 4),
            "max_warm_fraction": MAX_WARM_FRACTION,
        },
        indent=2,
    ) + "\n")

    assert fraction <= MAX_WARM_FRACTION, (
        f"warm analysis {100 * fraction:.1f}% of cold exceeds the "
        f"{100 * MAX_WARM_FRACTION:.0f}% budget "
        f"(cold {cold_s:.3f}s vs warm {warm_s:.3f}s)"
    )
