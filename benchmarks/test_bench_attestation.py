"""A10 — attestation and trustworthy sensing as the outer fraud ring.

Section 4.3's first line of defense, quantified: modified clients are
refused attestation (and therefore tokens, and therefore any upload at
all), and fabricated sensor inputs are dropped before they can seed fake
interactions.  Only the *behavioural* attacks that remain (generating
real-looking activity with a genuine client and real sensors) reach the
typical-user detector benchmarked in A4.
"""

from _harness import comparison_table, emit

from repro.fraud.attestation import (
    AttestationVerifier,
    PlatformVendor,
    SensorInputVerifier,
    TrustedSensorStack,
    client_build_hash,
    forge_quote_without_key,
    spoof_location_samples,
)
from repro.sensing.traces import LocationSample
from repro.world.geography import Point

GENUINE = client_build_hash("official RSP client v1.0")


def test_bench_attestation_gate(benchmark):
    vendor = PlatformVendor()
    verifier = AttestationVerifier(vendor, genuine_builds={GENUINE})

    n_each = 200

    def run_gate():
        accepted_genuine = 0
        accepted_modified = 0
        accepted_forged = 0
        for index in range(n_each):
            genuine = vendor.make_quote(f"good-{index}", GENUINE, nonce=f"g{index}".encode())
            accepted_genuine += verifier.verify(genuine)
            modified = vendor.make_quote(
                f"mod-{index}",
                client_build_hash(f"patched client #{index}"),
                nonce=f"m{index}".encode(),
            )
            accepted_modified += verifier.verify(modified)
            forged = forge_quote_without_key(f"forge-{index}", GENUINE, nonce=f"f{index}".encode())
            accepted_forged += verifier.verify(forged)
        return accepted_genuine, accepted_modified, accepted_forged

    genuine_ok, modified_ok, forged_ok = benchmark.pedantic(run_gate, rounds=1, iterations=1)

    emit(comparison_table(
        "A10: attestation gate (200 devices each)",
        ["client population", "quotes accepted"],
        [
            ["genuine builds", genuine_ok],
            ["modified builds", modified_ok],
            ["keyless forgeries", forged_ok],
        ],
    ))

    assert genuine_ok == n_each
    assert modified_ok == 0
    assert forged_ok == 0


def test_bench_trustworthy_sensing_filter(benchmark):
    vendor = PlatformVendor()
    stack = TrustedSensorStack(vendor, "dev-1")
    genuine = [stack.emit(LocationSample(time=float(i), point=Point(1, 1))) for i in range(500)]
    spoofed = spoof_location_samples(
        "dev-1", [LocationSample(time=1000.0 + i, point=Point(9, 9)) for i in range(500)]
    )
    mixed = genuine + spoofed

    def run_filter():
        sensor_verifier = SensorInputVerifier(vendor)
        authentic = sensor_verifier.filter_authentic(mixed)
        return authentic, sensor_verifier.rejected

    authentic, rejected = benchmark.pedantic(run_filter, rounds=1, iterations=1)

    emit(comparison_table(
        "A10: trustworthy-sensing filter (500 genuine + 500 spoofed fixes)",
        ["metric", "value"],
        [
            ["authentic fixes kept", len(authentic)],
            ["spoofed fixes rejected", rejected],
            ["spoofed fixes that slipped through", len(authentic) - 500],
        ],
    ))

    assert len(authentic) == 500
    assert rejected == 500
    assert all(sample.point.x == 1 for sample in authentic)
