"""F2 — Figure 2: the end-to-end architecture, measured.

The paper's architecture diagram has no numbers; the measurable claim
behind it is the thesis of the whole paper: routing implicit inferences
through the client → anonymity network → service path "can dramatically
increase the number of opinions users can draw upon" while keeping the
service's inputs anonymous and token-checked.
"""

from _harness import comparison_table, emit

import numpy as np


def test_bench_fig2_pipeline(benchmark, simulated_world, pipeline_outcome):
    town, result, _ = simulated_world
    out = pipeline_outcome

    def maintenance_cycle():
        return out.server.run_maintenance()

    report = benchmark.pedantic(maintenance_cycle, rounds=1, iterations=1)

    emit(comparison_table(
        "Figure 2 pipeline: the architecture, end to end",
        ["stage", "value"],
        [
            ["users simulated", len(town.users)],
            ["ground-truth events", len(result.events)],
            ["explicit reviews posted", out.server.n_explicit_reviews],
            ["anonymous histories stored", out.server.history_store.n_histories],
            ["interaction records stored", out.server.history_store.n_records],
            ["inferred opinions received", out.server.n_opinions],
            ["histories rejected by fraud filter", report.n_rejected_histories],
            ["median opinions/entity (explicit only)", f"{out.median_opinions_before():.0f}"],
            ["median opinions/entity (with inference)", f"{out.median_opinions_after():.0f}"],
            ["total opinion gain", f"{out.coverage_gain():.1f}x"],
            ["inference MAE (stars)", f"{out.mean_absolute_error:.2f}"],
            ["abstention rate", f"{out.abstention_rate:.2f}"],
        ],
    ))

    # The paper's thesis: opinions multiply.
    assert out.coverage_gain() > 3.0
    assert out.server.n_opinions > out.server.n_explicit_reviews
    # Anonymity held: every stored record was token-checked and no history
    # id embeds a user id.
    assert out.server.rejected_envelopes == 0
    user_ids = {user.user_id for user in town.users}
    for history in out.server.history_store.all_histories():
        assert not any(uid in history.history_id for uid in user_ids)
    # Inference quality stayed usable (inferred opinions are noisier
    # than explicit reviews, but well under the 2.5-star coin flip).
    assert out.mean_absolute_error < 1.5
    assert np.mean(out.review_errors) < out.mean_absolute_error
