"""A9 — collaborative filtering vs the search-based interface.

Section 3.1's design argument, measured: CF "suggests recommendations
based on the entities that a user has interacted with", which requires
co-rating density that exists for restaurants and not for doctors or
service providers; the search-based interface answers every query from
per-entity aggregates regardless.  The bench trains item CF on the
simulated world's explicit reviews and counts, per entity kind, how many
(user, category) needs each approach can serve at all.
"""

from _harness import comparison_table, emit

from repro.core.collabfilter import ItemBasedCF, cf_applicability
from repro.core.discovery import DiscoveryService, Query
from repro.world.entities import EntityKind, InteractionStyle


def test_bench_cf_vs_search(benchmark, simulated_world, pipeline_outcome):
    town, result, _ = simulated_world
    out = pipeline_outcome
    kind_of_entity = {e.entity_id: e.kind.label for e in town.entities}
    kind_of_category = {}
    for entity in town.entities:
        kind_of_category[entity.category] = entity.kind.label

    # Needs: every user asking for every category their kind of life requires.
    categories = sorted({e.category for e in town.entities})
    by_category = {
        category: [e.entity_id for e in town.entities if e.category == category]
        for category in categories
    }
    needs = [
        (user.user_id, category, by_category[category])
        for user in town.users
        for category in categories
    ]

    def run_both():
        # Give CF its best case: not just the 1%% of posted reviews, but a
        # rating for EVERY settled (user, entity) opinion — as if every
        # user rated in-app the way Netflix viewers do.  The sparsity that
        # remains is physical-world sparsity (one plumber per household),
        # which is exactly the paper's argument.
        cf = ItemBasedCF(item_groups=kind_of_entity)
        for (user_id, entity_id), truth in result.opinions.items():
            if truth.settled:
                cf.add_rating(user_id, entity_id, truth.opinion)
        cf.fit()
        cf_report = cf_applicability(cf, needs, kind_of_category)

        discovery = DiscoveryService(town.entities)
        search_counts: dict[str, list[int]] = {}
        for user in town.users:
            for category in categories:
                kind = kind_of_category[category]
                servable, total = search_counts.setdefault(kind, [0, 0])
                search_counts[kind][1] += 1
                response = discovery.search(
                    Query(category=category, near=user.home, radius_km=12.0),
                    {
                        entity_id: out.server.summary(entity_id)
                        for entity_id in by_category[category]
                        if out.server.summary(entity_id) is not None
                    },
                )
                # "Informed" counts either opinions (explicit or
                # inferred) or the aggregate-activity visualizations of
                # Section 4.1 — the RSP's two outputs.
                informed = any(
                    r.summary is not None
                    and (r.summary.total_opinions > 0 or r.summary.n_interacting_users > 0)
                    for r in response.results
                )
                if informed:
                    search_counts[kind][0] += 1
        return cf_report, search_counts

    cf_report, search_counts = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    kinds = sorted(search_counts)
    for kind in kinds:
        servable, total = search_counts[kind]
        rows.append(
            [
                kind,
                f"{cf_report.rate(kind):.0%}",
                f"{servable / total:.0%}" if total else "-",
            ]
        )
    emit(comparison_table(
        "A9: fraction of (user, category) needs each approach can serve",
        ["entity kind", "item-based CF", "search + implicit inference"],
        rows,
    ))

    # CF is essentially useless outside restaurants; the search interface
    # serves (nearly) everything — the paper's applicability argument.
    style_of = {kind.label: kind.style for kind in EntityKind}
    for kind in kinds:
        servable, total = search_counts[kind]
        search_rate = servable / total
        assert search_rate > 0.6, kind
        if style_of[kind] is not InteractionStyle.VISIT_FREQUENT:
            # Physical-world sparsity preempts CF outside restaurants,
            # while search answers nearly every need.
            assert cf_report.rate(kind) < 0.15, kind
            assert search_rate > cf_report.rate(kind) + 0.3, kind
    # And CF should actually work where co-interaction is dense, so the
    # comparison is against a functioning baseline, not a broken one.
    assert cf_report.rate("restaurant") > 0.5
