"""A12 — deployment diagnostics: per-kind accuracy, calibration, long tail.

The evaluation the paper could not run: with simulator ground truth, score
the deployed RSP the way its operators would — where inference works
(dense restaurant signal) vs struggles (one plumber call a year), whether
the abstention confidence is honest, and whether the opinion gain actually
lands on the unreviewed long tail rather than piling onto already-famous
entities.
"""

from _harness import comparison_table, emit

import math

from repro.orchestration.evaluation import (
    abstention_calibration,
    accuracy_by_kind,
    coverage_diagnostics,
)


def test_bench_accuracy_by_kind(benchmark, simulated_world, pipeline_outcome):
    town, result, _ = simulated_world
    report = benchmark.pedantic(
        accuracy_by_kind, args=(town, result, pipeline_outcome), rounds=1, iterations=1
    )

    rows = []
    for kind in sorted(report):
        accuracy = report[kind]
        rows.append(
            [
                kind,
                accuracy.n_predictions,
                f"{accuracy.coverage:.2f}",
                f"{accuracy.mae:.2f}" if not math.isnan(accuracy.mae) else "-",
            ]
        )
    emit(comparison_table(
        "A12: inference quality by entity kind",
        ["kind", "predictions", "coverage", "MAE"],
        rows,
    ))

    assert "restaurant" in report
    assert report["restaurant"].n_predictions > 50
    assert report["restaurant"].mae < 1.5


def test_bench_calibration_and_long_tail(benchmark, simulated_world, pipeline_outcome):
    town, result, _ = simulated_world

    def run_diagnostics():
        return (
            abstention_calibration(result, pipeline_outcome),
            coverage_diagnostics(town, pipeline_outcome),
        )

    bins, coverage = benchmark.pedantic(run_diagnostics, rounds=1, iterations=1)

    emit(comparison_table(
        "A12: abstention calibration (claimed vs realized error)",
        ["claimed band", "n", "mean claimed", "mean realized"],
        [
            [f"[{b.claimed_low:.1f}, {b.claimed_high:.1f})", b.n,
             f"{b.mean_claimed:.2f}", f"{b.mean_realized:.2f}"]
            for b in bins
        ],
    ))
    emit(comparison_table(
        "A12: where the opinion gain lands",
        ["metric", "value"],
        [
            ["entities with any opinion, explicit only", coverage.n_entities_with_opinions_before],
            ["entities with any opinion, with inference", coverage.n_entities_with_opinions_after],
            ["rescued entities (0 reviews -> >0 opinions)", coverage.n_rescued_entities],
            ["opinion Gini across entities, before", f"{coverage.gini_before:.2f}"],
            ["opinion Gini across entities, after", f"{coverage.gini_after:.2f}"],
        ],
    ))

    assert bins and sum(b.n for b in bins) > 100
    for calibration_bin in bins:
        if calibration_bin.n >= 30:
            assert calibration_bin.mean_realized < 2.5 * calibration_bin.mean_claimed + 0.2
    # The gain lands on the long tail: many rescued entities, flatter Gini.
    assert coverage.n_rescued_entities > 20
    assert coverage.gini_after < coverage.gini_before - 0.1
