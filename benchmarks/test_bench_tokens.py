"""A5 — blind-token rate limiting bounds history corruption.

Section 4.2: identifier guessing cannot touch existing histories (2^-256
collision), and the per-device token quota caps the junk an attacker can
inject at all.  Also times the token cryptography itself, since it is the
per-upload overhead the design adds.
"""

from _harness import comparison_table, emit

from repro.privacy.attacks import corruption_attack, expected_guesses_for_collision
from repro.privacy.blindsig import blind, generate_keypair, unblind
from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.tokens import TokenIssuer, TokenRedeemer, TokenWallet


def seeded_store(n_histories=500):
    store = HistoryStore()
    for index in range(n_histories):
        identity = DeviceIdentity.create(f"victim-{index}", seed=index)
        store.append(
            InteractionUpload(
                history_id=identity.history_id("dentist-1"),
                entity_id="dentist-1",
                interaction_type="visit",
                event_time=float(index),
                duration=3600.0,
                travel_km=1.0,
            ),
            arrival_time=float(index),
        )
    return store


def test_bench_corruption_bounded(benchmark):
    store = seeded_store()

    def attack():
        return corruption_attack(store, target_entity="dentist-1", attempts=5000, seed=7)

    report = benchmark.pedantic(attack, rounds=1, iterations=1)

    emit(comparison_table(
        "A5: identifier-guessing corruption attack",
        ["metric", "value"],
        [
            ["existing histories", 500],
            ["guess attempts", report.attempts],
            ["collisions (histories polluted)", report.collisions],
            ["analytic success probability", f"{report.analytic_success_probability:.1e}"],
            ["expected guesses for one collision", f"{expected_guesses_for_collision(500):.1e}"],
        ],
    ))

    assert report.collisions == 0
    assert report.analytic_success_probability < 1e-60


def test_bench_token_quota_caps_injection(benchmark):
    issuer = TokenIssuer(quota_per_day=48, key_seed=5, key_bits=256)

    def flood():
        store = HistoryStore(redeemer=TokenRedeemer(issuer.public_key))
        wallet = TokenWallet(device_id="attacker", seed=9)
        blinded = wallet.mint(issuer.public_key, 48)
        wallet.accept_signatures(
            issuer.public_key, issuer.issue("attacker", blinded, now=0.0)
        )
        tokens = [wallet.spend() for _ in range(48)]
        corruption_attack(store, "dentist-1", attempts=2000, seed=8, tokens=tokens)
        return store

    store = benchmark.pedantic(flood, rounds=1, iterations=1)

    emit(comparison_table(
        "A5: token quota vs flooding attacker (2000 attempted uploads)",
        ["metric", "value"],
        [
            ["daily token quota", 48],
            ["junk records landed", store.n_records],
            ["uploads rejected", store.rejected_uploads],
        ],
    ))

    assert store.n_records == 48  # exactly the quota, nothing more
    assert store.rejected_uploads == 2000 - 48


def test_bench_blind_signature_throughput(benchmark):
    """The crypto cost per upload: blind + sign + unblind + verify."""
    keypair = generate_keypair(bits=512, seed=11)

    counter = {"n": 0}

    def roundtrip():
        message = f"token-{counter['n']}".encode()
        counter["n"] += 1
        blinding = blind(keypair.public, message, seed=counter["n"])
        signature = unblind(keypair.public, blinding, keypair.sign_raw(blinding.blinded))
        assert keypair.public.verify(message, signature)

    benchmark(roundtrip)
