"""Session-scoped fixtures shared by the benchmark suite.

The heavy simulations (town + behaviour + full pipeline) are built once per
session; individual benchmarks time the analysis they regenerate, not the
shared world construction.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.measurement import all_service_specs, crawl_service
from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

BENCH_SEED = 2016  # the year of the paper


@pytest.fixture(scope="session")
def crawls():
    """The three crawled services of Section 2."""
    return {spec.name: crawl_service(spec, seed=BENCH_SEED) for spec in all_service_specs()}


@pytest.fixture(scope="session")
def simulated_world():
    """A mid-sized town simulated for half a year."""
    town = build_town(TownConfig(n_users=100), seed=BENCH_SEED)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=180), seed=BENCH_SEED
    ).run()
    return town, result, 180.0


@pytest.fixture(scope="session")
def pipeline_outcome(simulated_world):
    """One full Figure 2 pipeline run over the shared world."""
    town, result, horizon_days = simulated_world
    config = PipelineConfig(horizon_days=horizon_days, seed=BENCH_SEED)
    return run_full_pipeline(town, result, config)
