"""F3 — Figure 3: comparative visualizations of user-entity interactions.

Paper (sketch, no data): (a) dentist A has very few repeat patients
compared to B and C; (b) average distance travelled is more strongly
correlated with the number of visits for dentist B than for dentist C —
separating earned loyalty from captive convenience.

This bench runs the *full product path*: simulate the three-dentist
scenario, sense it, resolve it, upload it anonymously, and compute the
visualizations from the server's anonymous histories — not from ground
truth.
"""

from _harness import comparison_table, emit

from repro.core.visualization import compare_entities
from repro.privacy.anonymity import batching_network
from repro.privacy.history_store import HistoryStore
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import UploadScheduler, hardened_config
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY
from repro.world.scenarios import DENTIST_A, DENTIST_B, DENTIST_C, Figure3Config, figure3_town


def run_figure3_through_rsp(seed: int):
    config = Figure3Config(seed=seed)
    scenario = figure3_town(config)
    result = scenario.simulate(config.seed)
    horizon = config.duration_days * DAY

    resolver = EntityResolver(scenario.town.entities)
    network = batching_network(seed=seed)
    store = HistoryStore()
    for index, user in enumerate(scenario.town.users):
        trace = generate_trace(
            user.user_id, scenario.town, result, horizon, duty_cycled_policy(), seed=seed
        )
        interactions = resolver.resolve(trace)
        identity = DeviceIdentity.create(user.user_id, seed=index)
        UploadScheduler(identity, hardened_config(), seed=index).submit_all(
            interactions, network
        )
    for delivery in network.deliveries_until(horizon + 3 * DAY):
        store.append(delivery.payload, arrival_time=delivery.arrival_time)

    return compare_entities(
        {
            dentist: store.histories_for_entity(dentist)
            for dentist in (DENTIST_A, DENTIST_B, DENTIST_C)
        }
    )


def test_bench_fig3(benchmark):
    viz = benchmark.pedantic(run_figure3_through_rsp, args=(42,), rounds=1, iterations=1)

    rows = []
    paper_repeat = {DENTIST_A: "very few", DENTIST_B: "many", DENTIST_C: "many"}
    paper_corr = {DENTIST_A: "-", DENTIST_B: "strong", DENTIST_C: "weak"}
    for dentist in (DENTIST_A, DENTIST_B, DENTIST_C):
        histogram = viz.histograms[dentist]
        series = viz.distance_series[dentist]
        rows.append(
            [
                dentist,
                paper_repeat[dentist],
                f"{histogram.repeat_fraction:.2f}",
                paper_corr[dentist],
                f"{series.correlation:+.2f}",
            ]
        )
    emit(comparison_table(
        "Figure 3: repeat patronage and distance-vs-visits correlation",
        ["dentist", "paper repeats", "measured repeat frac", "paper corr", "measured corr"],
        rows,
    ))
    emit(viz.render())

    # Figure 3(a): A collapses at one visit; B and C show repeat patronage.
    assert viz.histograms[DENTIST_A].repeat_fraction < 0.3
    assert viz.histograms[DENTIST_B].repeat_fraction > 0.6
    assert viz.histograms[DENTIST_C].repeat_fraction > 0.6

    # Figure 3(b): effort correlates with visits at B, not at C.
    corr_b = viz.distance_series[DENTIST_B].correlation
    corr_c = viz.distance_series[DENTIST_C].correlation
    assert corr_b > 0.1
    assert corr_b > corr_c + 0.2

    # And C's clientele travels far less than B's on average.
    import numpy as np
    avg_b = np.mean(viz.distance_series[DENTIST_B].avg_distances_km)
    avg_c = np.mean(viz.distance_series[DENTIST_C].avg_distances_km)
    assert avg_c < 0.5 * avg_b
