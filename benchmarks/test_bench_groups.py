"""A7 — group-visit deflation removes artificial aggregate inflation.

Section 4.1: "an RSP must explicitly account for [group visits] to ensure
that the collective recommendation power of groups does not artificially
inflate the aggregate activity associated with an entity."  The bench
compares raw vs deflated interaction counts against the ground-truth number
of physical outings.
"""

from _harness import comparison_table, emit

import numpy as np

from repro.core.aggregation import deflate_groups
from repro.privacy.anonymity import batching_network
from repro.privacy.history_store import HistoryStore
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import UploadScheduler, hardened_config
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY
from repro.world.entities import EntityKind
from repro.world.events import VisitEvent


def test_bench_group_deflation(benchmark, simulated_world):
    town, result, horizon_days = simulated_world
    horizon = horizon_days * DAY

    # Ground truth: physical outings per restaurant (a group outing is ONE).
    outings: dict[str, set] = {}
    raw_truth: dict[str, int] = {}
    for event in result.events:
        if not isinstance(event, VisitEvent) or event.start_time >= horizon:
            continue
        entity = town.entity(event.entity_id)
        if entity.kind is not EntityKind.RESTAURANT:
            continue
        key = (event.group_id or f"solo-{event.user_id}", event.start_time)
        outings.setdefault(event.entity_id, set()).add(key)
        raw_truth[event.entity_id] = raw_truth.get(event.entity_id, 0) + 1

    # The RSP's view: anonymous histories.
    resolver = EntityResolver(town.entities)
    network = batching_network(seed=2016)
    store = HistoryStore()
    for index, user in enumerate(town.users):
        trace = generate_trace(
            user.user_id, town, result, horizon, duty_cycled_policy(), seed=2016
        )
        UploadScheduler(
            DeviceIdentity.create(user.user_id, seed=index), hardened_config(), seed=index
        ).submit_all(resolver.resolve(trace), network)
    for delivery in network.deliveries_until(horizon + 3 * DAY):
        store.append(delivery.payload, arrival_time=delivery.arrival_time)

    group_heavy = [
        entity_id
        for entity_id, truth_raw in raw_truth.items()
        if truth_raw >= 10 and truth_raw > len(outings[entity_id]) * 1.2
    ]

    def deflate_all():
        results = {}
        for entity_id in group_heavy:
            histories = store.histories_for_entity(entity_id)
            effective, raw = deflate_groups(histories)
            results[entity_id] = (effective, raw)
        return results

    deflated = benchmark.pedantic(deflate_all, rounds=1, iterations=1)

    rows = []
    raw_errors, deflated_errors = [], []
    for entity_id in sorted(group_heavy)[:8]:
        effective, raw = deflated[entity_id]
        truth = len(outings[entity_id])
        rows.append([entity_id, raw_truth[entity_id], truth, raw, f"{effective:.0f}"])
        if truth > 0:
            raw_errors.append(abs(raw - truth) / truth)
            deflated_errors.append(abs(effective - truth) / truth)
    emit(comparison_table(
        "A7: group deflation vs ground-truth outings (group-heavy restaurants)",
        ["entity", "true raw visits", "true outings", "stored raw", "deflated"],
        rows,
    ))
    emit(comparison_table(
        "A7: relative error vs true outings",
        ["estimator", "mean relative error"],
        [
            ["raw counts", f"{np.mean(raw_errors):.2f}"],
            ["deflated counts", f"{np.mean(deflated_errors):.2f}"],
        ],
    ))

    assert group_heavy, "the simulated town should contain group-visited restaurants"
    # Deflation strictly reduces counts and tracks true outings better.
    for entity_id in group_heavy:
        effective, raw = deflated[entity_id]
        assert effective <= raw
    assert np.mean(deflated_errors) < np.mean(raw_errors)
