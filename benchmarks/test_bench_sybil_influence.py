"""A11 — sybil influence: thin histories barely move aggregates.

Section 4.3 concedes that small fake histories evade judgement but argues
"such an interaction history will have limited influence on others."  The
bench stages a sybil rating campaign (many devices, 1-2 plausible visits
each, all uploading 5-star opinions for a mediocre restaurant) against the
full server and measures the achieved rating shift under influence
weighting versus an unweighted counterfactual.
"""

from _harness import comparison_table, emit

import numpy as np

from repro.core.aggregation import OpinionUpload, summarize_entity
from repro.fraud.attackers import SybilAttacker
from repro.world.entities import EntityKind


def test_bench_sybil_rating_shift(benchmark, simulated_world, pipeline_outcome):
    town, _, _ = simulated_world
    out = pipeline_outcome
    server = out.server

    # Pick a restaurant with a settled honest summary to attack.
    target = None
    for entity in town.entities_of_kind(EntityKind.RESTAURANT):
        summary = server.summary(entity.entity_id)
        if summary is not None and summary.n_inferred_opinions >= 5:
            target = entity.entity_id
            break
    assert target is not None

    honest_histories = server._accepted_histories.get(target, [])
    honest_opinions = [o for o in server._opinions.values() if o.entity_id == target]
    baseline = summarize_entity(
        target, honest_histories, honest_opinions, explicit_ratings=[]
    )

    def stage_attack():
        sybils = SybilAttacker(n_devices=25, interactions_per_device=1).generate_all(
            target, 0.0, seed=99
        )
        from repro.privacy.history_store import HistoryStore

        attack_store = HistoryStore()
        for history in honest_histories:
            for record in history.records:
                attack_store.append(record.upload, arrival_time=record.arrival_time)
        sybil_opinions = []
        for result in sybils:
            for upload in result.uploads:
                attack_store.append(upload, arrival_time=upload.event_time)
            sybil_opinions.append(
                OpinionUpload(
                    history_id=result.uploads[0].history_id,
                    entity_id=target,
                    rating=5.0,
                )
            )
        polluted_histories = attack_store.histories_for_entity(target)
        polluted_opinions = honest_opinions + sybil_opinions
        weighted = summarize_entity(
            target, polluted_histories, polluted_opinions, explicit_ratings=[]
        )
        # Counterfactual: what the mean would be with one-history-one-vote.
        depth = {h.history_id: h.n_interactions for h in polluted_histories}
        flat_ratings = [
            o.rating for o in polluted_opinions if o.history_id in depth
        ]
        unweighted_mean = float(np.mean(flat_ratings))
        return weighted, unweighted_mean

    weighted, unweighted_mean = benchmark.pedantic(stage_attack, rounds=1, iterations=1)

    honest_mean = baseline.inferred_mean
    shift_weighted = weighted.inferred_mean - honest_mean
    shift_unweighted = unweighted_mean - honest_mean
    emit(comparison_table(
        "A11: 25-device sybil 5-star campaign against one restaurant",
        ["aggregate", "mean rating", "shift vs honest"],
        [
            ["honest baseline", f"{honest_mean:.2f}", "-"],
            ["unweighted (one history = one vote)", f"{unweighted_mean:.2f}",
             f"{shift_unweighted:+.2f}"],
            ["influence-weighted (Section 4.3)", f"{weighted.inferred_mean:.2f}",
             f"{shift_weighted:+.2f}"],
        ],
    ))

    assert shift_unweighted > 0.1  # the attack would work unweighted
    # Weighting damps the shift; full mitigation would require mature
    # (3-visit) sybil histories, i.e. ~3x the fabrication effort per vote.
    assert shift_weighted < 0.85 * shift_unweighted
    effort_multiplier = shift_unweighted / max(shift_weighted, 1e-9)
    emit(comparison_table(
        "A11: attacker economics",
        ["metric", "value"],
        [["extra effort to match unweighted impact", f"{effort_multiplier:.1f}x"]],
    ))
