"""A16 — end-to-end scalability of the full pipeline.

Not a paper figure: the systems sanity check a release needs.  Runs the
complete architecture (world -> sensing -> clients -> mix network ->
token-checked intake -> fraud filter -> aggregation) at increasing
population sizes and reports wall time and store growth; asserts the
pipeline scales roughly linearly in users over this range.
"""

import time

from _harness import comparison_table, emit

from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town


def run_at_scale(n_users: int, days: float = 60.0, seed: int = 77):
    town = build_town(TownConfig(n_users=n_users), seed=seed)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=days), seed=seed
    ).run()
    start = time.perf_counter()
    outcome = run_full_pipeline(town, result, PipelineConfig(horizon_days=days, seed=seed))
    elapsed = time.perf_counter() - start
    return outcome, elapsed, len(result.events)


def test_bench_pipeline_scaling(benchmark):
    sizes = (40, 80, 160)
    results = {}
    for n_users in sizes[:-1]:
        results[n_users] = run_at_scale(n_users)

    def largest():
        return run_at_scale(sizes[-1])

    results[sizes[-1]] = benchmark.pedantic(largest, rounds=1, iterations=1)

    rows = []
    for n_users in sizes:
        outcome, elapsed, n_events = results[n_users]
        rows.append(
            [
                n_users,
                n_events,
                outcome.server.history_store.n_records,
                outcome.server.n_opinions,
                f"{elapsed:.1f}s",
            ]
        )
    emit(comparison_table(
        "A16: full-pipeline scaling (60 simulated days)",
        ["users", "ground-truth events", "stored records", "opinions", "pipeline wall time"],
        rows,
    ))

    _, t_small, _ = results[sizes[0]]
    _, t_large, _ = results[sizes[-1]]
    user_ratio = sizes[-1] / sizes[0]
    # Roughly linear in users: 4x the population should cost well under
    # ~3x the per-user-linear budget (i.e. < 12x total here).
    assert t_large < 3.0 * user_ratio * t_small
    # Output scales with population too.
    small_records = results[sizes[0]][0].server.history_store.n_records
    large_records = results[sizes[-1]][0].server.history_store.n_records
    assert large_records > 2 * small_records
