"""B4 — telemetry instrumentation overhead on the sharded hot path.

The observability contract of PR 4: running the sharded maintenance
cycle with a live ``Telemetry`` sink must cost less than 5% wall time
versus the ``NULL`` no-op sink on the same intake — maintenance records
parent-side only (cycle spans, per-shard gauges), so its cost is
O(shards), not O(records).  Intake is measured and reported too, but
not gated: it records two events per envelope (an accepted/rejected
counter and an ingest-lag observation), an inherent ~1 µs/event cost
that the report keeps honest rather than hides.  Each configuration
runs several fresh interleaved rounds and is scored on its best round,
so a single scheduler hiccup cannot fail the gate.  Emits
``BENCH_4.json`` with the measured numbers (consumed by
``make bench-telemetry`` and EXPERIMENTS.md).
"""

import hashlib
import json
import pathlib
import time

import numpy as np
from _harness import comparison_table, emit

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.scale.server import ShardedRSPServer
from repro.telemetry import Telemetry
from repro.util.clock import DAY
from repro.util.rng import make_rng
from repro.world.population import TownConfig, build_town

from conftest import BENCH_SEED

N_HISTORIES = 8_000
RECORDS_PER_HISTORY = 10
N_SHARDS = 8
ROUNDS = 3
MAX_OVERHEAD = 1.05


def build_workload(entities):
    """~88k deliveries over realistic 64-hex record keys."""
    rng = make_rng(BENCH_SEED, "bench/telemetry/workload")
    entity_ids = [e.entity_id for e in entities]
    gaps = rng.uniform(0.5 * DAY, 5 * DAY, (N_HISTORIES, RECORDS_PER_HISTORY))
    times = np.cumsum(gaps, axis=1)
    durations = rng.uniform(600.0, 7200.0, (N_HISTORIES, RECORDS_PER_HISTORY))
    travels = rng.uniform(0.1, 20.0, (N_HISTORIES, RECORDS_PER_HISTORY))
    entity_choice = rng.integers(0, len(entity_ids), N_HISTORIES)
    ratings = np.round(rng.uniform(1.0, 5.0, N_HISTORIES), 1)
    deliveries = []
    nonce = 0
    for i in range(N_HISTORIES):
        hid = hashlib.sha256(f"bench-history-{i}".encode()).hexdigest()
        eid = entity_ids[int(entity_choice[i])]
        t_row, d_row, k_row = times[i], durations[i], travels[i]
        for k in range(RECORDS_PER_HISTORY):
            record = InteractionUpload(
                history_id=hid,
                entity_id=eid,
                interaction_type="visit",
                event_time=float(t_row[k]),
                duration=float(d_row[k]),
                travel_km=float(k_row[k]),
            )
            deliveries.append(
                Delivery(
                    payload=Envelope(
                        record=record, token=None, nonce=nonce.to_bytes(16, "big")
                    ),
                    arrival_time=float(t_row[k]) + 3600.0,
                    channel_tag="c",
                )
            )
            nonce += 1
        if i % 3 == 0:
            opinion = OpinionUpload(history_id=hid, entity_id=eid, rating=float(ratings[i]))
            deliveries.append(
                Delivery(
                    payload=Envelope(
                        record=opinion, token=None, nonce=nonce.to_bytes(16, "big")
                    ),
                    arrival_time=float(t_row[-1]) + 7200.0,
                    channel_tag="c",
                )
            )
            nonce += 1
    return deliveries


def run_cycle(town, deliveries, telemetry=None):
    """One fresh cycle; returns (intake seconds, maintenance seconds, server)."""
    server = ShardedRSPServer(
        catalog=town.entities,
        key_seed=BENCH_SEED,
        require_tokens=False,
        n_shards=N_SHARDS,
        workers=0,
    )
    if telemetry is not None:
        server.attach_telemetry(telemetry)
    start = time.perf_counter()
    accepted = server.receive_batch(deliveries)
    mid = time.perf_counter()
    report = server.run_maintenance()
    end = time.perf_counter()
    assert accepted == len(deliveries)
    assert report is not None
    return mid - start, end - mid, server


def test_bench_telemetry_overhead(benchmark):
    town = build_town(TownConfig(n_users=10), seed=BENCH_SEED)
    deliveries = build_workload(town.entities)

    # Interleave the two configurations so drift hits both equally.
    null_intake, null_maint, live_intake, live_maint = [], [], [], []
    sinks = []
    for _ in range(ROUNDS):
        intake_s, maint_s, _ = run_cycle(town, deliveries, telemetry=None)
        null_intake.append(intake_s)
        null_maint.append(maint_s)
        sink = Telemetry()
        intake_s, maint_s, _ = run_cycle(town, deliveries, telemetry=sink)
        live_intake.append(intake_s)
        live_maint.append(maint_s)
        sinks.append(sink)

    def instrumented_cycle():
        sink = Telemetry()
        run_cycle(town, deliveries, telemetry=sink)
        return sink

    final = benchmark.pedantic(instrumented_cycle, rounds=1, iterations=1)
    sinks.append(final)

    # The sink really recorded the hot path — overhead of a no-op is moot.
    for sink in sinks:
        assert sink.metrics.total("rsp.envelopes.accepted") == len(deliveries)
        assert sink.metrics.total("rsp.maintenance.cycles") == 1

    maint_ratio = min(live_maint) / min(null_maint)
    intake_ratio = min(live_intake) / min(null_intake)
    per_event_us = (
        1e6 * (min(live_intake) - min(null_intake)) / (2 * len(deliveries))
    )
    emit(comparison_table(
        f"B4: {N_HISTORIES} histories x {RECORDS_PER_HISTORY} records, "
        f"{N_SHARDS} shards (best of {ROUNDS})",
        ["phase", "NULL sink", "live sink", "relative", "gate"],
        [
            [
                "maintenance cycle",
                f"{min(null_maint):.3f}s",
                f"{min(live_maint):.3f}s",
                f"{maint_ratio:.3f}x",
                f"<= {MAX_OVERHEAD}x",
            ],
            [
                "intake (2 events/envelope)",
                f"{min(null_intake):.3f}s",
                f"{min(live_intake):.3f}s",
                f"{intake_ratio:.3f}x",
                f"informational ({per_event_us:.2f} us/event)",
            ],
        ],
    ))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_4.json"
    out.write_text(json.dumps(
        {
            "bench": "telemetry-overhead",
            "n_histories": N_HISTORIES,
            "records_per_history": RECORDS_PER_HISTORY,
            "n_deliveries": len(deliveries),
            "n_shards": N_SHARDS,
            "rounds": ROUNDS,
            "maintenance_null_s": round(min(null_maint), 4),
            "maintenance_instrumented_s": round(min(live_maint), 4),
            "maintenance_overhead_ratio": round(maint_ratio, 4),
            "max_overhead_ratio": MAX_OVERHEAD,
            "intake_null_s": round(min(null_intake), 4),
            "intake_instrumented_s": round(min(live_intake), 4),
            "intake_overhead_ratio": round(intake_ratio, 4),
            "intake_us_per_event": round(per_event_us, 3),
        },
        indent=2,
    ) + "\n")

    assert maint_ratio <= MAX_OVERHEAD, (
        f"telemetry maintenance overhead {maint_ratio:.3f}x > allowed "
        f"{MAX_OVERHEAD}x ({min(null_maint):.3f}s vs {min(live_maint):.3f}s)"
    )
