"""B10 — live resharding: migration locality + post-split throughput.

The elasticity claim of PR 10: growing a deployment by live splits must
be cheap and leave no scar.  Two measurements against the same intake:

* **locality** — each split migrates only the split shard's own keys,
  so the moved fraction stays at or under ``1 / n_shards`` of the
  catalog (modulo routing would remap nearly everything);
* **no scar** — a 4-shard deployment grown to 8 by four canonical
  splits runs its maintenance cycle within 10% of the throughput of a
  deployment *started* at 8 shards, with byte-identical reports and
  summaries (canonical growth lands on the identical routing table, so
  the state placement is the same — only history remembers the splits).

Emits ``BENCH_10.json`` (consumed by ``make bench-reshard`` and
EXPERIMENTS.md).
"""

import hashlib
import json
import pathlib
import time

import numpy as np
from _harness import comparison_table, emit

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.scale.server import ShardedRSPServer
from repro.util.clock import DAY
from repro.util.rng import make_rng
from repro.world.population import TownConfig, build_town

from conftest import BENCH_SEED

N_HISTORIES = 16_000
RECORDS_PER_HISTORY = 8
N_SHARDS = 4
N_SHARDS_FINAL = 8
MAX_MOVED_FRACTION = 1.0 / N_SHARDS
MIN_THROUGHPUT_RATIO = 0.9


def build_workload(entities):
    """~130k deliveries over realistic 64-hex record keys."""
    rng = make_rng(BENCH_SEED, "bench/reshard/workload")
    entity_ids = [e.entity_id for e in entities]
    gaps = rng.uniform(0.5 * DAY, 5 * DAY, (N_HISTORIES, RECORDS_PER_HISTORY))
    times = np.cumsum(gaps, axis=1)
    durations = rng.uniform(600.0, 7200.0, (N_HISTORIES, RECORDS_PER_HISTORY))
    travels = rng.uniform(0.1, 20.0, (N_HISTORIES, RECORDS_PER_HISTORY))
    entity_choice = rng.integers(0, len(entity_ids), N_HISTORIES)
    ratings = np.round(rng.uniform(1.0, 5.0, N_HISTORIES), 1)
    deliveries = []
    nonce = 0
    for i in range(N_HISTORIES):
        hid = hashlib.sha256(f"bench-reshard-{i}".encode()).hexdigest()
        eid = entity_ids[int(entity_choice[i])]
        t_row, d_row, k_row = times[i], durations[i], travels[i]
        for k in range(RECORDS_PER_HISTORY):
            record = InteractionUpload(
                history_id=hid,
                entity_id=eid,
                interaction_type="visit",
                event_time=float(t_row[k]),
                duration=float(d_row[k]),
                travel_km=float(k_row[k]),
            )
            deliveries.append(
                Delivery(
                    payload=Envelope(
                        record=record, token=None, nonce=nonce.to_bytes(16, "big")
                    ),
                    arrival_time=float(t_row[k]) + 3600.0,
                    channel_tag="c",
                )
            )
            nonce += 1
        if i % 3 == 0:
            opinion = OpinionUpload(
                history_id=hid, entity_id=eid, rating=float(ratings[i])
            )
            deliveries.append(
                Delivery(
                    payload=Envelope(
                        record=opinion, token=None, nonce=nonce.to_bytes(16, "big")
                    ),
                    arrival_time=float(t_row[-1]) + 7200.0,
                    channel_tag="c",
                )
            )
            nonce += 1
    return deliveries


def make_deployment(entities, n_shards):
    return ShardedRSPServer(
        catalog=entities,
        key_seed=BENCH_SEED,
        require_tokens=False,
        n_shards=n_shards,
    )


def test_bench_reshard_locality_and_throughput(benchmark):
    town = build_town(TownConfig(n_users=10), seed=BENCH_SEED)
    deliveries = build_workload(town.entities)

    native = make_deployment(town.entities, N_SHARDS_FINAL)
    grown = make_deployment(town.entities, N_SHARDS)
    assert native.receive_batch(deliveries) == len(deliveries)
    assert grown.receive_batch(deliveries) == len(deliveries)
    total_histories = grown.n_histories

    # Grow 4 → 8 by splitting each original shard once, in canonical
    # order (shallowest prefix first) so the final routing table equals
    # the native 8-shard one exactly.
    split_rows = []
    moved_total = 0
    split_wall = 0.0
    for _ in range(N_SHARDS_FINAL - N_SHARDS):
        target = min(
            range(grown.n_shards_live),
            key=lambda i: min(
                (depth, value) for value, depth in grown.router.prefixes_of(i)
            ),
        )
        start = time.perf_counter()
        moved = grown.split_shard(target)
        elapsed = time.perf_counter() - start
        split_wall += elapsed
        moved_total += moved["histories"]
        fraction = moved["histories"] / total_histories
        split_rows.append((target, moved["histories"], fraction, elapsed))
        assert fraction <= MAX_MOVED_FRACTION, (
            f"split of shard {target} moved {fraction:.1%} of the catalog "
            f"(> {MAX_MOVED_FRACTION:.0%})"
        )
    assert grown.router == native.router
    assert grown.n_shards_live == N_SHARDS_FINAL

    start = time.perf_counter()
    native_report = native.run_maintenance()
    native_s = time.perf_counter() - start

    def grown_cycle():
        return grown.run_maintenance()

    start = time.perf_counter()
    grown_report = benchmark.pedantic(grown_cycle, rounds=1, iterations=1)
    grown_s = time.perf_counter() - start

    # Equivalence first: elasticity bought with drift is worthless.
    assert repr(grown_report) == repr(native_report)
    assert grown.all_summaries() == native.all_summaries()

    throughput_ratio = native_s / grown_s
    emit(comparison_table(
        f"B10: grow {N_SHARDS}→{N_SHARDS_FINAL} shards live, "
        f"{N_HISTORIES} histories x {RECORDS_PER_HISTORY} records",
        ["split", "histories moved", "fraction of catalog", "wall time"],
        [
            [f"shard {t}", m, f"{f:.1%}", f"{s * 1000:.1f}ms"]
            for t, m, f, s in split_rows
        ],
    ))
    emit(comparison_table(
        "B10: post-split maintenance vs natively-sized deployment",
        ["configuration", "maintenance wall time", "relative throughput"],
        [
            [f"native x{N_SHARDS_FINAL}", f"{native_s:.3f}s", "1.00x"],
            [
                f"grown {N_SHARDS}→{N_SHARDS_FINAL}",
                f"{grown_s:.3f}s",
                f"{throughput_ratio:.2f}x",
            ],
        ],
    ))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_10.json"
    out.write_text(json.dumps(
        {
            "bench": "reshard-locality-throughput",
            "n_histories": N_HISTORIES,
            "records_per_history": RECORDS_PER_HISTORY,
            "n_shards_initial": N_SHARDS,
            "n_shards_final": N_SHARDS_FINAL,
            "splits": [
                {
                    "shard": t,
                    "histories_moved": m,
                    "moved_fraction": round(f, 5),
                    "wall_s": round(s, 4),
                }
                for t, m, f, s in split_rows
            ],
            "histories_moved_total": moved_total,
            "split_wall_s": round(split_wall, 4),
            "max_moved_fraction": MAX_MOVED_FRACTION,
            "native_s": round(native_s, 4),
            "grown_s": round(grown_s, 4),
            "throughput_ratio": round(throughput_ratio, 3),
            "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
        },
        indent=2,
    ) + "\n")

    assert throughput_ratio >= MIN_THROUGHPUT_RATIO, (
        f"post-split maintenance at {throughput_ratio:.2f}x of the native "
        f"deployment (< {MIN_THROUGHPUT_RATIO}x): the grown topology left a scar"
    )
