"""A3 — privacy ablation: each Section 4.2 mechanism vs its attack.

Four configurations cross (channel reuse x upload timing); the linkage and
timing attacks run against each.  The paper's design (fresh per-upload
channels + asynchronous batched uploads) should drive both attacks to
chance; the naive design should fall to both.
"""

from _harness import comparison_table, emit

from repro.privacy.anonymity import batching_network, immediate_network
from repro.privacy.attacks import linkage_attack, timing_attack
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import UploadConfig, UploadScheduler
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY, HOUR


def run_attacks(town, result, horizon, upload_config, batching, seed=2016, max_users=50):
    resolver = EntityResolver(town.entities)
    network = batching_network(6 * HOUR, seed=seed) if batching else immediate_network(seed=seed)
    true_owner = {}
    activity = {}
    for index, user in enumerate(town.users[:max_users]):
        trace = generate_trace(
            user.user_id, town, result, horizon, duty_cycled_policy(), seed=seed
        )
        interactions = resolver.resolve(trace)
        identity = DeviceIdentity.create(user.user_id, seed=index)
        scheduler = UploadScheduler(identity, upload_config, seed=index)
        scheduler.submit_all(interactions, network)
        for interaction in interactions:
            true_owner[identity.history_id(interaction.entity_id)] = user.user_id
        activity[user.user_id] = [i.time + i.duration for i in interactions]
    deliveries = network.deliveries_until(horizon + 3 * DAY)
    return (
        linkage_attack(deliveries, true_owner),
        timing_attack(deliveries, activity, true_owner),
    )


def test_bench_privacy_attacks(benchmark, simulated_world):
    town, result, horizon_days = simulated_world
    horizon = horizon_days * DAY

    configurations = [
        ("naive (stable channel, immediate)",
         UploadConfig(max_upload_delay=0.0, time_granularity=1.0, reuse_channel_tag=True),
         False),
        ("channels only (fresh channel, immediate)",
         UploadConfig(max_upload_delay=0.0, time_granularity=1.0, reuse_channel_tag=False),
         False),
        ("async only (stable channel, batched+delayed)",
         UploadConfig(max_upload_delay=24 * HOUR, time_granularity=DAY, reuse_channel_tag=True),
         True),
        ("paper design (fresh channels, batched+delayed)",
         UploadConfig(max_upload_delay=24 * HOUR, time_granularity=DAY, reuse_channel_tag=False),
         True),
    ]

    def run_all():
        return [
            (name, *run_attacks(town, result, horizon, config, batching))
            for name, config, batching in configurations
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, linkage, timing in results:
        rows.append(
            [
                name,
                f"{linkage.recall:.2f}",
                f"{timing.accuracy:.2f}",
                f"{timing.random_baseline:.3f}",
            ]
        )
    emit(comparison_table(
        "A3: de-anonymization attacks vs upload design",
        ["configuration", "linkage recall", "timing attribution", "chance"],
        rows,
    ))

    by_name = {name: (linkage, timing) for name, linkage, timing in results}
    naive_link, naive_time = by_name["naive (stable channel, immediate)"]
    paper_link, paper_time = by_name["paper design (fresh channels, batched+delayed)"]
    channels_link, _ = by_name["channels only (fresh channel, immediate)"]
    _, async_time = by_name["async only (stable channel, batched+delayed)"]

    # The naive design falls to both attacks.
    assert naive_link.recall > 0.9
    assert naive_time.accuracy > 10 * naive_time.random_baseline
    # Each mechanism kills its attack...
    assert channels_link.recall == 0.0
    assert async_time.accuracy < 3 * async_time.random_baseline + 0.05
    # ...and the paper's full design kills both.
    assert paper_link.recall == 0.0
    assert paper_time.accuracy < 3 * paper_time.random_baseline + 0.05
