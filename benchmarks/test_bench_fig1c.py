"""F1c — Figure 1(c): explicit vs implicit interaction on Google Play / YouTube.

Paper: "the discrepancy between the number of users who have interacted
with each entity and those who have explicitly provided feedback is more
than an order of magnitude" (1000 apps, 1000 videos).
"""

from _harness import comparison_table, emit

from repro.measurement import (
    figure1c,
    google_play_spec,
    measure_engagement,
    youtube_spec,
)


def run_engagement(seed: int):
    datasets = [
        measure_engagement(google_play_spec(), seed=seed),
        measure_engagement(youtube_spec(), seed=seed),
    ]
    return datasets, figure1c(datasets)


def test_bench_fig1c(benchmark):
    datasets, figure = benchmark.pedantic(run_engagement, args=(2016,), rounds=1, iterations=1)

    rows = []
    for dataset in datasets:
        rows.append(
            [
                dataset.service,
                f"{dataset.median_implicit():,.0f}",
                f"{dataset.median_explicit():,.0f}",
                "> 10x",
                f"{dataset.median_gap():.0f}x",
            ]
        )
    emit(comparison_table(
        "Figure 1(c): implicit vs explicit interaction",
        ["service", "median implicit", "median explicit", "paper gap", "measured gap"],
        rows,
    ))
    emit(figure.render())

    for dataset in datasets:
        assert dataset.n_entities == 1000  # paper's sample size
        assert dataset.median_gap() > 10  # the order-of-magnitude claim
        assert (dataset.explicit <= dataset.implicit).all()
    # The explicit CDF must sit left of the implicit CDF everywhere shown.
    gp_implicit = figure.cdfs["Google Play installs"]
    gp_explicit = figure.cdfs["Google Play reviews + ratings"]
    for x in (10, 100, 1_000, 10_000, 100_000):
        assert gp_explicit.evaluate(x) >= gp_implicit.evaluate(x)
