"""B9 — the read path: cached serving vs per-query recompute.

The tentpole acceptance gate of PR 9: the summary-version cache must
make warm reads at least 5x faster than uncached recompute while the
deployment keeps churning — small intake batches (≤10% of the catalog
dirty between maintenance rounds) with a maintenance cycle before every
query burst, so invalidation is constantly in play.  The Zipf query
workload (:mod:`repro.serve.loadgen`, the read mirror of
``repro.ingest.loadgen``) must land a ≥90% cache hit rate: the pool is
finite and heavy-tailed, so cold misses are bounded and the steady state
is hits.

Three parts:

* **A. equivalence before speed** — on a fresh serving layer, every
  cached read renders byte-identically to the uncached recompute oracle;
* **B. steady-state read QPS** — timed under the benchmark fixture:
  rounds of (Zipf intake → maintenance → query burst) against the cached
  path, with the dirty fraction of every cycle recorded off the
  maintenance notification feed;
* **C. the uncached baseline** — the same query mix answered by fresh
  recompute, giving the speedup denominator.

Emits ``BENCH_9.json`` (consumed by ``make bench-serve`` and
EXPERIMENTS.md).
"""

import json
import pathlib
import time

from _harness import comparison_table, emit

from repro.ingest import SyntheticTraffic, WorkloadConfig
from repro.serve.loadgen import QueryWorkload, SyntheticQueries
from repro.service.server import RSPServer
from repro.telemetry import Telemetry

from conftest import BENCH_SEED

MIN_SPEEDUP = 5.0
MIN_HIT_RATE = 0.90
MAX_DIRTY_FRACTION = 0.10

TRAFFIC = WorkloadConfig(
    n_users=100_000,
    n_entities=1_200,
    opinion_fraction=0.30,
    seed=BENCH_SEED,
)
QUERIES = QueryWorkload(n_distinct=64, zipf_exponent=1.1, seed=BENCH_SEED)

#: Steady-state shape: per round, a small intake batch (Zipf over 300
#: entities, so well under the 10%-dirty ceiling), one maintenance
#: cycle, then a read-heavy burst.
WARMUP_BATCHES = 3
WARMUP_BATCH_SIZE = 2_000
ROUNDS = 4
INTAKE_PER_ROUND = 40
QUERIES_PER_ROUND = 1_000
UNCACHED_SAMPLE = 400


def build_server():
    """A warmed tokenless monolith: traffic in, summaries computed."""
    traffic = SyntheticTraffic(TRAFFIC)
    server = RSPServer(traffic.catalog, require_tokens=False)
    server.attach_telemetry(Telemetry())
    for tick in range(WARMUP_BATCHES):
        now = 100.0 + 600.0 * tick
        server.receive_all(traffic.batch(WARMUP_BATCH_SIZE, now), now=now)
    server.run_maintenance(now=3000.0)
    return server, traffic


def steady_state_cached(server, traffic):
    """Part B: rounds of churn + burst; returns (qps, elapsed, dirty_fracs)."""
    queries = SyntheticQueries(traffic.catalog, QUERIES)
    serving = server.serving
    dirty_fractions = []
    serving_time = 0.0
    n_entities = len(server.catalog)
    server._engine.subscribe(
        lambda changed: dirty_fractions.append(len(changed) / n_entities)
    )
    for round_index in range(ROUNDS):
        now = 10_000.0 + 600.0 * round_index
        server.receive_all(traffic.batch(INTAKE_PER_ROUND, now), now=now)
        server.run_maintenance(now=now + 60.0)
        burst = queries.batch(QUERIES_PER_ROUND)
        start = time.perf_counter()
        for query in burst:
            serving.query(query)
        serving_time += time.perf_counter() - start
    total = ROUNDS * QUERIES_PER_ROUND
    return total / serving_time, serving_time, dirty_fractions


def uncached_baseline(server, traffic):
    """Part C: the same query mix answered by fresh recompute every time."""
    queries = SyntheticQueries(traffic.catalog, QUERIES)
    serving = server.serving
    sample = queries.batch(UNCACHED_SAMPLE)
    start = time.perf_counter()
    for query in sample:
        serving.query_uncached(query)
    elapsed = time.perf_counter() - start
    return UNCACHED_SAMPLE / elapsed, elapsed


def test_bench_serve_read_path(benchmark):
    server, traffic = build_server()

    # --- Part A: equivalence before speed.
    probe = SyntheticQueries(traffic.catalog, QUERIES)
    for query in probe.batch(100):
        assert (
            server.query(query).render()
            == server.serving.query_uncached(query).render()
        )
    # Cold-start the cache again so Part B's hit rate is the workload's,
    # not the probe's.
    server.attach_serving()

    # --- Part B: steady-state cached reads under churn, timed.
    holder = {}

    def cached_phase():
        holder["result"] = steady_state_cached(server, traffic)

    benchmark.pedantic(cached_phase, rounds=1, iterations=1)
    cached_qps, cached_s, dirty_fractions = holder["result"]

    stats = server.serving.stats
    hit_rate = stats.hit_rate()
    assert stats.lookups == ROUNDS * QUERIES_PER_ROUND
    dirty_fraction = max(dirty_fractions) if dirty_fractions else 0.0
    assert dirty_fractions, "maintenance cycles never notified the cache"
    assert stats.invalidations > 0, "churn never invalidated a cached read"

    # --- Part C: the uncached recompute baseline.
    uncached_qps, uncached_s = uncached_baseline(server, traffic)
    speedup = cached_qps / uncached_qps

    emit(comparison_table(
        f"B9: read path, {ROUNDS * QUERIES_PER_ROUND} Zipf queries over "
        f"{QUERIES.n_distinct} distinct ({TRAFFIC.n_entities} entities, "
        f"{ROUNDS} churn rounds)",
        ["configuration", "reads/sec", "relative"],
        [
            ["uncached recompute", f"{uncached_qps:,.0f}", "1.00x"],
            ["cached serving layer", f"{cached_qps:,.0f}", f"{speedup:.2f}x"],
            ["cache hit rate", f"{hit_rate:.1%}",
             f"{stats.invalidations} invalidations, "
             f"max dirty {dirty_fraction:.1%}"],
        ],
    ))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_9.json"
    out.write_text(json.dumps(
        {
            "bench": "serve-read-path",
            "n_queries": ROUNDS * QUERIES_PER_ROUND,
            "n_distinct": QUERIES.n_distinct,
            "zipf_exponent": QUERIES.zipf_exponent,
            "read_qps_cached": round(cached_qps),
            "read_qps_uncached": round(uncached_qps),
            "cached_s": round(cached_s, 4),
            "uncached_s": round(uncached_s, 4),
            "speedup": round(speedup, 3),
            "min_speedup": MIN_SPEEDUP,
            "hit_rate": round(hit_rate, 4),
            "min_hit_rate": MIN_HIT_RATE,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            "invalidations": stats.invalidations,
            "max_dirty_fraction": round(dirty_fraction, 4),
            "max_dirty_fraction_allowed": MAX_DIRTY_FRACTION,
        },
        indent=2,
    ) + "\n")

    assert dirty_fraction <= MAX_DIRTY_FRACTION, (
        f"churn dirtied {dirty_fraction:.1%} of the catalog per cycle; the "
        f"speedup gate is only claimed at <={MAX_DIRTY_FRACTION:.0%} dirty"
    )
    assert hit_rate >= MIN_HIT_RATE, (
        f"cache hit rate {hit_rate:.1%} < required {MIN_HIT_RATE:.0%}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"cached reads {speedup:.2f}x < required {MIN_SPEEDUP}x "
        f"({cached_qps:,.0f} vs {uncached_qps:,.0f} reads/sec)"
    )
