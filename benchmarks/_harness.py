"""Shared helpers for the benchmark/experiment harness.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison.  Absolute agreement is not the bar (the
substrate is a calibrated simulator, not the authors' 2016 crawls); the
*shape* — who wins, by what rough factor, where the medians sit — is what
each bench asserts and what EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections.abc import Sequence


def comparison_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render a paper-vs-measured table for benchmark output."""
    cells = [[str(h) for h in headers]] + [[str(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    for index, row in enumerate(cells):
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def emit(text: str) -> None:
    """Print a benchmark report block (visible with ``pytest -s``)."""
    print("\n" + text + "\n")
