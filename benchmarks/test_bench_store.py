"""A8 — history-store scalability: update-only anonymous storage throughput.

The storage design of Section 4.2 must absorb one record per user-entity
interaction across the whole user base.  The bench measures append
throughput, per-entity aggregation access, and the fraud profile merge over
a store of tens of thousands of records.
"""

from _harness import comparison_table, emit

import numpy as np

from repro.fraud.profiles import build_profiles
from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.util.clock import DAY
from repro.util.hashing import record_id


def synthetic_uploads(n_users=2000, n_entities=200, interactions_per_user=10, seed=0):
    rng = np.random.default_rng(seed)
    uploads = []
    secrets = rng.integers(0, 2**62, size=n_users)
    for user_index in range(n_users):
        entities = rng.choice(n_entities, size=max(1, interactions_per_user // 3), replace=False)
        for entity_index in entities:
            entity_id = f"entity-{entity_index:04d}"
            history_id = record_id(int(secrets[user_index]), entity_id)
            for _ in range(3):
                uploads.append(
                    InteractionUpload(
                        history_id=history_id,
                        entity_id=entity_id,
                        interaction_type="visit",
                        event_time=float(rng.uniform(0, 180)) * DAY,
                        duration=float(rng.uniform(600, 7200)),
                        travel_km=float(rng.uniform(0.1, 10)),
                    )
                )
    return uploads


def test_bench_store_append_throughput(benchmark):
    uploads = synthetic_uploads()

    def fill():
        store = HistoryStore()
        for upload in uploads:
            store.append(upload, arrival_time=upload.event_time)
        return store

    store = benchmark(fill)
    emit(comparison_table(
        "A8: history store fill",
        ["metric", "value"],
        [
            ["records", store.n_records],
            ["histories", store.n_histories],
            ["entities", len(store.entity_ids())],
        ],
    ))
    assert store.n_records == len(uploads)


def test_bench_store_aggregation_access(benchmark):
    uploads = synthetic_uploads()
    store = HistoryStore()
    for upload in uploads:
        store.append(upload, arrival_time=upload.event_time)

    def aggregate():
        total = 0
        for entity_id in store.entity_ids():
            for history in store.histories_for_entity(entity_id):
                total += history.n_interactions
        return total

    total = benchmark(aggregate)
    assert total == store.n_records


def test_bench_profile_merge(benchmark):
    uploads = synthetic_uploads()
    store = HistoryStore()
    for upload in uploads:
        store.append(upload, arrival_time=upload.event_time)
    kinds = {f"entity-{i:04d}": "restaurant" for i in range(200)}

    profiles = benchmark(build_profiles, store, kinds)
    assert "restaurant" in profiles
    assert profiles["restaurant"].n_histories == store.n_histories


def test_bench_store_compaction(benchmark):
    """Bounded-history mode: long-running stores keep memory flat while
    preserving interaction counts (Section 4.2's years-long histories)."""
    uploads = synthetic_uploads(n_users=500, n_entities=50, interactions_per_user=30, seed=3)

    def fill_bounded():
        store = HistoryStore(max_records_per_history=5)
        for upload in uploads:
            store.append(upload, arrival_time=upload.event_time)
        return store

    bounded = benchmark(fill_bounded)
    unbounded = HistoryStore()
    for upload in uploads:
        unbounded.append(upload, arrival_time=upload.event_time)

    emit(comparison_table(
        "A8: compaction (5-record raw window per history)",
        ["store", "logical records", "raw records in memory"],
        [
            ["unbounded", unbounded.n_records, unbounded.n_raw_records],
            ["bounded", bounded.n_records, bounded.n_raw_records],
        ],
    ))

    assert bounded.n_records == unbounded.n_records  # nothing lost logically
    assert bounded.n_raw_records <= 5 * bounded.n_histories
