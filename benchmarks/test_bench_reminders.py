"""A15 — reminders vs implicit inference on identical sensing.

Section 3 considers prompting users to post and argues it is the weaker
strategy: it needs the same physical-world tracking just to know *when* to
prompt, it keeps the explicit-input bottleneck, and prompting has costs.
The bench gives the reminder strategy the exact detected-visit stream the
implicit pipeline used, sweeps prompt aggressiveness, and compares opinions
gained (and users annoyed into leaving) against implicit inference.
"""

from _harness import comparison_table, emit

from repro.core.reminders import ReminderPolicy, simulate_reminders
from repro.sensing.resolution import InteractionType
from repro.util.clock import DAY


def test_bench_reminders_vs_inference(benchmark, simulated_world, pipeline_outcome):
    town, result, horizon_days = simulated_world
    out = pipeline_outcome
    horizon = horizon_days * DAY

    # The same sensing substrate implicit inference used: each client's
    # detected visits.
    visit_times = {}
    for user_id, client in out.clients.items():
        times = [
            interaction.time
            for entity_id in client.snapshot.entity_ids()
            for interaction in client.snapshot.recent(entity_id)
            if interaction.interaction_type is InteractionType.VISIT
        ]
        visit_times[user_id] = times
    propensity = {user.user_id: user.posting_propensity for user in town.users}

    policies = [
        ("gentle (1/wk, boost 5x)", ReminderPolicy(max_prompts_per_week=1, churn_per_prompt=0.01)),
        ("default (2/wk)", ReminderPolicy()),
        ("aggressive (7/wk)", ReminderPolicy(max_prompts_per_week=7, churn_per_prompt=0.04)),
    ]

    def sweep():
        return [
            (name, simulate_reminders(visit_times, propensity, horizon, policy, seed=2016))
            for name, policy in policies
        ]

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    spontaneous = out.server.n_explicit_reviews
    inferred = out.server.n_opinions
    rows = [
        ["no reminders (status quo)", "-", spontaneous, "-", "-"],
    ]
    for name, outcome in outcomes:
        rows.append(
            [
                name,
                outcome.n_prompts,
                spontaneous + outcome.n_reviews_gained,
                outcome.n_churned_users,
                f"{outcome.reviews_per_prompt:.2f}",
            ]
        )
    rows.append(["implicit inference (the paper)", 0, spontaneous + inferred, 0, "-"])
    emit(comparison_table(
        "A15: opinions gained — reminders vs implicit inference (same sensing)",
        ["strategy", "prompts", "total opinions", "users churned", "reviews/prompt"],
        rows,
    ))

    best_reminder = max(o.n_reviews_gained for _, o in outcomes)
    aggressive = outcomes[-1][1]
    # Reminders help (the paper concedes "these strategies may help")...
    assert best_reminder > 0.5 * spontaneous
    # ...but implicit inference dwarfs even the best reminder campaign,
    assert inferred > 3 * best_reminder
    # ...and aggressive prompting visibly costs users.
    assert aggressive.n_churned_users > 0
