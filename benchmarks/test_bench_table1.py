"""T1 — Table 1: summary of measurements.

Paper: Yelp 9 categories / 24,417 restaurants; Angie's List 24 / 26,066
service providers; Healthgrades 4 / 24,922 doctors, over the most populous
zipcode of each of the 50 states.
"""

from _harness import comparison_table, emit

from repro.measurement import all_service_specs, crawl_service, table1

PAPER = {
    "Yelp": (9, 24_417),
    "Angie's List": (24, 26_066),
    "Healthgrades": (4, 24_922),
}


def run_table1(seed: int):
    return table1([crawl_service(spec, seed=seed) for spec in all_service_specs()])


def test_bench_table1(benchmark, crawls):
    result = benchmark.pedantic(run_table1, args=(2016,), rounds=1, iterations=1)

    rows = []
    for row in result.rows:
        paper_categories, paper_entities = PAPER[row.service]
        rows.append(
            [
                row.service,
                f"{paper_categories} / {paper_entities:,}",
                f"{row.n_categories} / {row.n_entities:,}",
            ]
        )
    emit(comparison_table(
        "Table 1: summary of measurements",
        ["service", "paper (cats / entities)", "measured (cats / entities)"],
        rows,
    ))
    emit(result.render())

    for row in result.rows:
        paper_categories, paper_entities = PAPER[row.service]
        assert row.n_categories == paper_categories
        assert abs(row.n_entities - paper_entities) < 0.2 * paper_entities
