"""B8 — the million-user intake path: batched ingest vs per-record intake.

The tentpole acceptance gate of PR 8: the batched front end
(``offer_all`` → ``drain`` → ``ingest_all``) must sustain at least 3x the
events/sec of per-record intake (each envelope offered, drained, and
classified individually — the streaming idiom ``RSPServer.receive``
embodies) over the same synthetic traffic, while remaining byte-identical
where it counts: same server counters, same opinion summaries, and —
checked through the full epoch pipeline — the same report digests.

Three parts:

* **A. intake-path throughput** — 40k Zipf-shaped envelopes from a
  2M-user population through the bounded queue into a tokenless monolith,
  per-record vs batched, equivalence asserted before the speedup gate.
* **B. epoch byte-identity** — a small ``run_epochs`` pass with
  ``ingest_batch`` off/on must produce equal report digests (the deep
  equivalence matrix lives in ``tests/ingest/test_differential.py``; the
  bench re-asserts the headline claim on every bench run).
* **C. sustained-traffic soak** — the soak harness under an overload
  surge: steady-state events/sec and p99 intake latency with the shedder
  provably engaged at least once.

Emits ``BENCH_8.json`` (consumed by ``make bench-ingest`` and
EXPERIMENTS.md).
"""

import json
import pathlib
import time

from _harness import comparison_table, emit

from repro.faults import FaultInjector, Window, overload_plan
from repro.ingest import (
    BoundedIntakeQueue,
    SoakConfig,
    SyntheticTraffic,
    WorkloadConfig,
    ingest_all,
    run_soak,
)
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig
from repro.service.server import RSPServer
from repro.telemetry import Telemetry
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

from conftest import BENCH_SEED

MIN_SPEEDUP = 3.0

#: Part A traffic: a 2M-user population with realistic impurities.
TRAFFIC = WorkloadConfig(
    n_users=2_000_000,
    n_entities=300,
    opinion_fraction=0.25,
    duplicate_fraction=0.01,
    stale_fraction=0.01,
    invalid_fraction=0.01,
    seed=BENCH_SEED,
)
N_BATCHES = 5
BATCH_SIZE = 8_000

#: Part C soak: under-provisioned drain plus a 3x surge window.
SOAK = SoakConfig(
    n_users=2_000_000,
    n_entities=300,
    opinion_fraction=0.25,
    duplicate_fraction=0.01,
    stale_fraction=0.01,
    invalid_fraction=0.01,
    ticks=40,
    warmup_ticks=8,
    arrivals_per_tick=6_000,
    drain_limit=6_500,
    queue_depth=10_000,
    seed=BENCH_SEED,
)
SURGE = Window(SOAK.tick_seconds * 20, SOAK.tick_seconds * 28)

COUNTERS = (
    "accepted_envelopes",
    "rejected_envelopes",
    "duplicates_suppressed",
    "opinions_stale",
    "history_mismatches",
    "n_records",
    "n_opinions",
)


def intake_run(batched):
    """Drive the same traffic through the full intake path, one mode."""
    traffic = SyntheticTraffic(TRAFFIC)
    batches = [
        traffic.batch(BATCH_SIZE, 600.0 * tick) for tick in range(N_BATCHES)
    ]
    telemetry = Telemetry()
    server = RSPServer(traffic.catalog, require_tokens=False)
    server.attach_telemetry(telemetry)
    queue = BoundedIntakeQueue(2 * BATCH_SIZE, telemetry=telemetry)
    n = sum(len(batch) for batch in batches)
    start = time.perf_counter()
    if batched:
        for batch in batches:
            queue.offer_all(batch)
            ingest_all(server, queue.drain())
    else:
        for batch in batches:
            for delivery in batch:
                queue.offer(delivery)
                for item in queue.drain():
                    server.receive(item)
    elapsed = time.perf_counter() - start
    return server, n / elapsed, elapsed


def epoch_digests():
    """Part B: per-record vs batched epoch pipeline, digest for digest."""
    town = build_town(TownConfig(n_users=20), seed=BENCH_SEED)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=21.0), seed=BENCH_SEED
    ).run()
    config = PipelineConfig(horizon_days=21.0, seed=BENCH_SEED)
    digests = []
    for batched in (False, True):
        outcome = run_epochs(
            town, result, config, n_epochs=2, ingest_batch=batched
        )
        digests.append(outcome.reports_digest())
    return digests


def best_of(n, batched):
    """Fastest of ``n`` identical runs — the standard noise filter."""
    runs = [intake_run(batched) for _ in range(n)]
    return max(runs, key=lambda run: run[1])


def test_bench_ingest_path(benchmark):
    # --- Part A: throughput, batched timed under the benchmark fixture.
    # One untimed pass per mode warms allocator, caches, and the kind
    # memo; each mode then reports its best of three runs (the runs are
    # deterministic, so any of them serves the equivalence check).
    intake_run(batched=True)
    intake_run(batched=False)
    per_record_server, per_record_eps, per_record_s = best_of(3, batched=False)

    holder = {}

    def batched_intake():
        holder["result"] = best_of(3, batched=True)

    benchmark.pedantic(batched_intake, rounds=1, iterations=1)
    batched_server, batched_eps, batched_s = holder["result"]

    # Equivalence before speed: identical classification and state.
    for attr in COUNTERS:
        assert getattr(batched_server, attr) == getattr(per_record_server, attr), attr
    per_record_server.run_maintenance(now=10**7)
    batched_server.run_maintenance(now=10**7)
    assert batched_server.all_summaries() == per_record_server.all_summaries()

    speedup = batched_eps / per_record_eps

    # --- Part B: the epoch pipeline's reports are byte-identical.
    digest_off, digest_on = epoch_digests()
    assert digest_on == digest_off

    # --- Part C: soak under an overload surge; the shedder must engage.
    injector = FaultInjector(overload_plan(SURGE, multiplier=3.0, seed=BENCH_SEED))
    soak = run_soak(SOAK, fault_hook=injector)
    assert soak.shed_engaged, "overload surge never engaged the shedder"
    assert soak.shed > 0
    assert soak.offered == soak.admitted + soak.shed

    emit(comparison_table(
        f"B8: intake path, {N_BATCHES * BATCH_SIZE} envelopes "
        f"({TRAFFIC.n_users:,} users, Zipf {TRAFFIC.zipf_exponent})",
        ["configuration", "events/sec", "relative"],
        [
            ["per-record intake", f"{per_record_eps:,.0f}", "1.00x"],
            ["batched intake", f"{batched_eps:,.0f}", f"{speedup:.2f}x"],
            ["soak steady-state (surge, shedding)",
             f"{soak.steady_events_per_sec:,.0f}",
             f"p99 {soak.p99_latency_ms:.2f}ms, shed {soak.shed:,}"],
        ],
    ))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_8.json"
    out.write_text(json.dumps(
        {
            "bench": "ingest-path",
            "n_envelopes": N_BATCHES * BATCH_SIZE,
            "n_users": TRAFFIC.n_users,
            "per_record_eps": round(per_record_eps),
            "batched_eps": round(batched_eps),
            "per_record_s": round(per_record_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(speedup, 3),
            "min_speedup": MIN_SPEEDUP,
            "epoch_digests_match": digest_on == digest_off,
            "soak": soak.as_dict(),
        },
        indent=2,
    ) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"batched intake {speedup:.2f}x < required {MIN_SPEEDUP}x "
        f"({per_record_eps:,.0f} vs {batched_eps:,.0f} events/sec)"
    )
