"""A1 — inference ablation: effort features vs naive repeat counting,
and the abstention coverage/accuracy trade-off.

Section 4.1's design claims, quantified: (1) a classifier using effort /
exploration / choice-set features beats the naive "more visits = better"
rule; (2) abstention lets the RSP trade coverage for accuracy — the
footnote's requirement that the classifier "declare it infeasible to
accurately gauge the user's opinion" rather than guess.
"""

from _harness import comparison_table, emit

import numpy as np

from repro.client.app import infer_home
from repro.core.classifier import ClassifierConfig, OpinionClassifier, RepeatCountBaseline
from repro.core.features import extract_all_features
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.orchestration.pipeline import collect_training_data
from repro.util.clock import DAY


def build_eval_set(town, result, horizon, seed, max_users=60):
    """(features, truth) for evaluation users with settled ground truth."""
    catalog = {entity.entity_id: entity for entity in town.entities}
    resolver = EntityResolver(town.entities)
    rows = []
    for user in town.users[:max_users]:
        trace = generate_trace(user.user_id, town, result, horizon, duty_cycled_policy(), seed=seed)
        interactions = resolver.resolve(trace)
        if not interactions:
            continue
        home = infer_home(trace)
        for entity_id, features in extract_all_features(interactions, catalog, home).items():
            truth = result.opinions.get((user.user_id, entity_id))
            if truth is not None:
                rows.append((features, truth.opinion))
    return rows


def test_bench_inference_vs_baseline(benchmark, simulated_world):
    town, result, horizon_days = simulated_world
    horizon = horizon_days * DAY
    train_features, train_ratings = collect_training_data(town, result, horizon, seed=2016)
    eval_rows = build_eval_set(town, result, horizon, seed=2016)

    def train_and_score():
        model = OpinionClassifier().fit(train_features, train_ratings)
        baseline = RepeatCountBaseline().fit(train_features, train_ratings)
        model_errors = []
        baseline_on_covered = []  # baseline scored on the SAME pairs the model covers
        baseline_errors = []
        n_abstained = 0
        for features, truth in eval_rows:
            baseline_error = abs(baseline.predict(features).rating - truth)
            baseline_errors.append(baseline_error)
            inferred = model.predict(features)
            if inferred.abstained:
                n_abstained += 1
            else:
                model_errors.append(abs(inferred.rating - truth))
                baseline_on_covered.append(baseline_error)
        return model, model_errors, baseline_on_covered, baseline_errors, n_abstained

    model, model_errors, baseline_on_covered, baseline_errors, n_abstained = (
        benchmark.pedantic(train_and_score, rounds=1, iterations=1)
    )

    mae_model = float(np.mean(model_errors))
    mae_baseline_covered = float(np.mean(baseline_on_covered))
    mae_baseline_all = float(np.mean(baseline_errors))
    emit(comparison_table(
        "A1: effort classifier vs repeat-count baseline",
        ["model", "pairs scored", "MAE (stars)"],
        [
            ["effort classifier (abstains on thin evidence)",
             len(model_errors), f"{mae_model:.2f}"],
            ["repeat-count baseline, same covered pairs",
             len(baseline_on_covered), f"{mae_baseline_covered:.2f}"],
            ["repeat-count baseline, all pairs",
             len(baseline_errors), f"{mae_baseline_all:.2f}"],
        ],
    ))
    weights = model.feature_weights()
    top = sorted(weights.items(), key=lambda kv: -abs(kv[1]))[:6]
    emit(comparison_table("Top feature weights", ["feature", "weight"],
                          [[name, f"{w:+.2f}"] for name, w in top]))

    assert len(eval_rows) > 200
    # Like-for-like: on the pairs the model judges inferrable, the effort
    # features beat the best count-only rule by a clear margin.
    assert mae_model < mae_baseline_covered - 0.02
    assert weights["mean_travel_km"] != 0.0


def test_bench_abstention_tradeoff(benchmark, simulated_world):
    town, result, horizon_days = simulated_world
    horizon = horizon_days * DAY
    train_features, train_ratings = collect_training_data(town, result, horizon, seed=2016)
    eval_rows = build_eval_set(town, result, horizon, seed=2016)

    # Sweep both abstention gates from strict to none: the evidence gate
    # (minimum interactions) and the calibrated-confidence gate.
    gates = ((5, 0.8), (3, 0.9), (2, 1.1), (2, 10.0), (1, 10.0))

    def sweep():
        curve = []
        for min_interactions, max_error in gates:
            model = OpinionClassifier(
                ClassifierConfig(
                    min_interactions=min_interactions, max_expected_error=max_error
                )
            ).fit(train_features, train_ratings)
            errors = []
            covered = 0
            for features, truth in eval_rows:
                inferred = model.predict(features)
                if inferred.abstained:
                    continue
                covered += 1
                errors.append(abs(inferred.rating - truth))
            coverage = covered / len(eval_rows)
            mae = float(np.mean(errors)) if errors else float("nan")
            curve.append(((min_interactions, max_error), coverage, mae))
        return curve

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(comparison_table(
        "A1: abstention trade-off (stricter gates -> less coverage, better accuracy)",
        ["min interactions", "max expected error", "coverage", "MAE"],
        [[g[0], f"{g[1]:.1f}", f"{c:.2f}", f"{m:.2f}"] for g, c, m in curve],
    ))

    coverages = [c for _, c, _ in curve]
    assert coverages == sorted(coverages)  # looser gates, more coverage
    assert coverages[-1] > 0.9  # no gate -> near-total coverage
    strictest_mae = curve[0][2]
    loosest_mae = curve[-1][2]
    # Abstention buys accuracy: the gated model is clearly better than
    # predicting for everyone.
    assert strictest_mae < loosest_mae
