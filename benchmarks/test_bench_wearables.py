"""A14 — the wearable affect channel: does emotion sensing help?

Section 3.1 floats, then scopes out, inferring opinions "by monitoring the
user's emotions when interacting with the entity" via wearables.  This
bench un-scopes it: the same classifier is trained and evaluated twice —
once on behavioural features only (the paper's chosen design), once with a
noisy wearable valence feature added — and the MAE/coverage deltas show
what the extra (and far more invasive) channel actually buys.
"""

from _harness import comparison_table, emit

import numpy as np

from repro.client.app import infer_home
from repro.core.classifier import OpinionClassifier
from repro.core.features import OpinionFeatures, extract_all_features
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.sensing.wearables import generate_emotion_trace, mean_valence_by_entity
from repro.util.clock import DAY


def _strip_valence(features: OpinionFeatures) -> OpinionFeatures:
    values = {name: getattr(features, name) for name in OpinionFeatures.feature_names()}
    values["mean_valence"] = 0.0
    return OpinionFeatures(**values)


def build_rows(town, result, horizon, seed):
    """(features_with_emotion, truth, is_reviewer) rows for all users."""
    catalog = {entity.entity_id: entity for entity in town.entities}
    resolver = EntityResolver(town.entities)
    reviewers = {review.user_id for review in result.reviews}
    rows = []
    for user in town.users:
        trace = generate_trace(
            user.user_id, town, result, horizon, duty_cycled_policy(), seed=seed
        )
        interactions = resolver.resolve(trace)
        if not interactions:
            continue
        emotion = mean_valence_by_entity(
            generate_emotion_trace(user.user_id, result, horizon, seed=seed)
        )
        home = infer_home(trace)
        for entity_id, features in extract_all_features(
            interactions, catalog, home, emotion=emotion
        ).items():
            truth = result.opinions.get((user.user_id, entity_id))
            if truth is not None:
                rows.append((features, truth.opinion, user.user_id in reviewers))
    return rows


def test_bench_wearable_ablation(benchmark, simulated_world):
    town, result, horizon_days = simulated_world
    horizon = horizon_days * DAY
    rows = build_rows(town, result, horizon, seed=2016)
    train = [(f, o) for f, o, is_reviewer in rows if is_reviewer]
    evaluate = [(f, o) for f, o, _ in rows]

    def train_and_score():
        results = {}
        for label, transform in (
            ("behavioural only", _strip_valence),
            ("+ wearable valence", lambda f: f),
        ):
            model = OpinionClassifier().fit(
                [transform(f) for f, _ in train], [min(5.0, round(o)) for _, o in train]
            )
            errors = []
            covered = 0
            for features, truth in evaluate:
                inferred = model.predict(transform(features))
                if inferred.abstained:
                    continue
                covered += 1
                errors.append(abs(inferred.rating - truth))
            results[label] = (
                float(np.mean(errors)),
                covered / len(evaluate),
                model.feature_weights().get("mean_valence", 0.0),
            )
        return results

    results = benchmark.pedantic(train_and_score, rounds=1, iterations=1)

    emit(comparison_table(
        "A14: wearable affect channel ablation",
        ["feature set", "MAE (stars)", "coverage", "valence weight"],
        [
            [label, f"{mae:.2f}", f"{coverage:.2f}", f"{weight:+.2f}"]
            for label, (mae, coverage, weight) in results.items()
        ],
    ))

    behavioural_mae = results["behavioural only"][0]
    wearable_mae = results["+ wearable valence"][0]
    valence_weight = results["+ wearable valence"][2]
    # Emotion is real signal: positive weight, measurably lower error.
    assert valence_weight > 0
    assert wearable_mae < behavioural_mae - 0.02
