"""A4 — fraud ablation: the attacker zoo vs the typical-user detector.

Section 4.3's claims, quantified: the cheap attacks the paper describes
(back-to-back calls, daily employee presence) are caught by profiles merged
from anonymous histories; evading detection (mimicry) costs months of
realistic behaviour; honest users are rarely flagged.
"""

from _harness import comparison_table, emit

from repro.fraud.attackers import (
    CallSpamAttacker,
    EmployeeAttacker,
    MimicAttacker,
    SybilAttacker,
)
from repro.fraud.detector import FraudDetector
from repro.fraud.profiles import build_profiles
from repro.privacy.anonymity import batching_network
from repro.privacy.history_store import HistoryStore
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import UploadScheduler, hardened_config
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY
from repro.world.entities import EntityKind


def build_honest_store(town, result, horizon, seed=2016):
    resolver = EntityResolver(town.entities)
    network = batching_network(seed=seed)
    store = HistoryStore()
    for index, user in enumerate(town.users):
        trace = generate_trace(
            user.user_id, town, result, horizon, duty_cycled_policy(), seed=seed
        )
        interactions = resolver.resolve(trace)
        identity = DeviceIdentity.create(user.user_id, seed=index)
        UploadScheduler(identity, hardened_config(), seed=index).submit_all(
            interactions, network
        )
    for delivery in network.deliveries_until(horizon + 3 * DAY):
        store.append(delivery.payload, arrival_time=delivery.arrival_time)
    return store


def judge_uploads(detector, uploads):
    store = HistoryStore()
    for upload in uploads:
        store.append(upload, arrival_time=upload.event_time)
    [history] = store.all_histories()
    return detector.judge(history)


def test_bench_fraud_detection_matrix(benchmark, simulated_world):
    town, result, horizon_days = simulated_world
    horizon = horizon_days * DAY
    store = build_honest_store(town, result, horizon)
    kinds = {entity.entity_id: entity.kind.label for entity in town.entities}
    restaurant = town.entities_of_kind(EntityKind.RESTAURANT)[0].entity_id
    plumber = town.entities_of_kind(EntityKind.PLUMBER)[0].entity_id
    dentist = town.entities_of_kind(EntityKind.DENTIST)[0].entity_id

    def run_matrix():
        profiles = build_profiles(store, kinds)
        detector = FraudDetector(profiles, kinds)
        _, honest_rejected = detector.filter_store(store)

        spam = CallSpamAttacker().generate(
            DeviceIdentity.create("spam", seed=1), plumber, 10 * DAY
        )
        employee = EmployeeAttacker(n_days=60).generate(
            DeviceIdentity.create("emp", seed=2), restaurant, 5 * DAY
        )
        # The paper's own mimicry example is a dentist: "a user will
        # need to be at the dentist's office for reasonable periods of
        # time over several years".
        mimic = MimicAttacker().generate(
            DeviceIdentity.create("mimic", seed=3), dentist,
            0.0, profiles["dentist"],
        )
        sybils = SybilAttacker(n_devices=10).generate_all(restaurant, 0.0, seed=4)

        verdicts = {
            "call-spam": judge_uploads(detector, spam.uploads),
            "employee": judge_uploads(detector, employee.uploads),
            "mimic": judge_uploads(detector, mimic.uploads),
        }
        sybil_judged = [judge_uploads(detector, s.uploads) for s in sybils]
        return detector, honest_rejected, verdicts, (spam, employee, mimic), sybil_judged

    detector, honest_rejected, verdicts, attacks, sybil_judged = benchmark.pedantic(
        run_matrix, rounds=1, iterations=1
    )
    spam, employee, mimic = attacks

    rows = [
        ["call-spam (paper's example)", "detected",
         "yes" if verdicts["call-spam"].suspicious else "NO",
         f"{spam.cost.wall_clock_days:.1f}", f"{spam.cost.active_effort/60:.0f} min"],
        ["employee (paper's example)", "detected",
         "yes" if verdicts["employee"].suspicious else "NO",
         f"{employee.cost.wall_clock_days:.0f}", "on-site job"],
        ["mimic (typical-profile forgery)", "evades",
         "no" if not verdicts["mimic"].suspicious else "CAUGHT",
         f"{mimic.cost.wall_clock_days:.0f}", f"{mimic.cost.active_effort/3600:.1f} h"],
    ]
    emit(comparison_table(
        "A4: attacker zoo vs typical-user detector",
        ["attack", "expected", "detected?", "wall-clock days", "active effort"],
        rows,
    ))
    honest_fp = len(honest_rejected) / max(store.n_histories, 1)
    emit(comparison_table(
        "A4: collateral damage",
        ["metric", "value"],
        [
            ["honest histories", store.n_histories],
            ["honest false-positive rate", f"{honest_fp:.3f}"],
            ["sybil histories judged", sum(1 for v in sybil_judged if v.judged)],
        ],
    ))

    # The paper's named attacks are caught.
    assert verdicts["call-spam"].suspicious
    assert verdicts["employee"].suspicious
    # The mimic evades — but pays the behaving-like-a-patient cost:
    # realistic appointment dwell spread over months, vs minutes of
    # phone spam.
    assert not verdicts["mimic"].suspicious
    assert mimic.cost.wall_clock_days > 10 * spam.cost.wall_clock_days
    assert mimic.cost.active_effort > 10 * spam.cost.active_effort
    # Honest users are rarely flagged.
    assert honest_fp < 0.05
    # Sybil micro-histories are unjudgeable by design (limited influence).
    assert all(not v.judged for v in sybil_judged)
