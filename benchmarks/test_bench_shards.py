"""B3 — sharded maintenance throughput vs the monolithic server.

The scale claim of PR 3: partitioning the stores by record key and
running the maintenance cycle through the columnar per-shard kernel must
buy at least a 2x maintenance-cycle speedup over the monolithic server
on the same intake — while producing byte-identical reports and
summaries.  Emits ``BENCH_3.json`` with the measured numbers (consumed
by ``make bench-shards`` and EXPERIMENTS.md).
"""

import hashlib
import json
import pathlib
import time

import numpy as np
from _harness import comparison_table, emit

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.scale.server import ShardedRSPServer
from repro.service.server import RSPServer
from repro.util.clock import DAY
from repro.util.rng import make_rng
from repro.world.population import TownConfig, build_town

from conftest import BENCH_SEED

N_HISTORIES = 24_000
RECORDS_PER_HISTORY = 12
N_SHARDS = 8
WORKERS = 4
REQUIRED_SPEEDUP = 2.0


def build_workload(entities):
    """~200k deliveries over realistic 64-hex record keys."""
    rng = make_rng(BENCH_SEED, "bench/shards/workload")
    entity_ids = [e.entity_id for e in entities]
    gaps = rng.uniform(0.5 * DAY, 5 * DAY, (N_HISTORIES, RECORDS_PER_HISTORY))
    times = np.cumsum(gaps, axis=1)
    durations = rng.uniform(600.0, 7200.0, (N_HISTORIES, RECORDS_PER_HISTORY))
    travels = rng.uniform(0.1, 20.0, (N_HISTORIES, RECORDS_PER_HISTORY))
    entity_choice = rng.integers(0, len(entity_ids), N_HISTORIES)
    ratings = np.round(rng.uniform(1.0, 5.0, N_HISTORIES), 1)
    deliveries = []
    nonce = 0
    for i in range(N_HISTORIES):
        hid = hashlib.sha256(f"bench-history-{i}".encode()).hexdigest()
        eid = entity_ids[int(entity_choice[i])]
        t_row, d_row, k_row = times[i], durations[i], travels[i]
        for k in range(RECORDS_PER_HISTORY):
            record = InteractionUpload(
                history_id=hid,
                entity_id=eid,
                interaction_type="visit",
                event_time=float(t_row[k]),
                duration=float(d_row[k]),
                travel_km=float(k_row[k]),
            )
            deliveries.append(
                Delivery(
                    payload=Envelope(
                        record=record, token=None, nonce=nonce.to_bytes(16, "big")
                    ),
                    arrival_time=float(t_row[k]) + 3600.0,
                    channel_tag="c",
                )
            )
            nonce += 1
        if i % 3 == 0:
            opinion = OpinionUpload(history_id=hid, entity_id=eid, rating=float(ratings[i]))
            deliveries.append(
                Delivery(
                    payload=Envelope(
                        record=opinion, token=None, nonce=nonce.to_bytes(16, "big")
                    ),
                    arrival_time=float(t_row[-1]) + 7200.0,
                    channel_tag="c",
                )
            )
            nonce += 1
    return deliveries


def test_bench_sharded_maintenance_speedup(benchmark):
    town = build_town(TownConfig(n_users=10), seed=BENCH_SEED)
    deliveries = build_workload(town.entities)

    mono = RSPServer(catalog=town.entities, key_seed=BENCH_SEED, require_tokens=False)
    sharded = ShardedRSPServer(
        catalog=town.entities,
        key_seed=BENCH_SEED,
        require_tokens=False,
        n_shards=N_SHARDS,
        workers=WORKERS,
    )
    serial = ShardedRSPServer(
        catalog=town.entities,
        key_seed=BENCH_SEED,
        require_tokens=False,
        n_shards=N_SHARDS,
        workers=0,
    )
    assert mono.receive_all(deliveries) == len(deliveries)
    assert sharded.receive_batch(deliveries) == len(deliveries)
    assert serial.receive_batch(deliveries) == len(deliveries)

    start = time.perf_counter()
    mono_report = mono.run_maintenance()
    mono_s = time.perf_counter() - start

    start = time.perf_counter()
    serial_report = serial.run_maintenance()
    serial_s = time.perf_counter() - start

    def pooled_cycle():
        return sharded.run_maintenance()

    start = time.perf_counter()
    sharded_report = benchmark.pedantic(pooled_cycle, rounds=1, iterations=1)
    sharded_s = time.perf_counter() - start

    # Equivalence first: speed bought with drift is worthless.
    assert repr(sharded_report) == repr(mono_report)
    assert repr(serial_report) == repr(mono_report)
    assert sharded.all_summaries() == mono.all_summaries()
    assert sharded.pool_fallbacks == 0

    speedup = mono_s / sharded_s
    serial_speedup = mono_s / serial_s
    emit(comparison_table(
        f"B3: maintenance cycle, {N_HISTORIES} histories x {RECORDS_PER_HISTORY} records",
        ["configuration", "maintenance wall time", "speedup"],
        [
            ["monolithic", f"{mono_s:.3f}s", "1.00x"],
            [f"sharded x{N_SHARDS}, serial", f"{serial_s:.3f}s", f"{serial_speedup:.2f}x"],
            [f"sharded x{N_SHARDS}, {WORKERS} workers", f"{sharded_s:.3f}s", f"{speedup:.2f}x"],
        ],
    ))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_3.json"
    out.write_text(json.dumps(
        {
            "bench": "sharded-maintenance",
            "n_histories": N_HISTORIES,
            "records_per_history": RECORDS_PER_HISTORY,
            "n_records": mono.history_store.n_records,
            "n_shards": N_SHARDS,
            "workers": WORKERS,
            "baseline_s": round(mono_s, 4),
            "serial_sharded_s": round(serial_s, 4),
            "sharded_s": round(sharded_s, 4),
            "serial_speedup": round(serial_speedup, 3),
            "speedup": round(speedup, 3),
            "required_speedup": REQUIRED_SPEEDUP,
        },
        indent=2,
    ) + "\n")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"pooled maintenance {speedup:.2f}x < required {REQUIRED_SPEEDUP}x "
        f"(mono {mono_s:.3f}s vs sharded {sharded_s:.3f}s)"
    )
