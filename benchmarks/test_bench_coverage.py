"""A2 — opinion coverage: explicit-only vs implicit inference, swept over
app adoption.

Section 2's implication, measured: "if the opinion of even a fraction of
those who have interacted with an entity but not provided feedback can be
implicitly inferred ... the number of opinions that users can draw upon for
a typical entity can be dramatically increased."  The sweep varies the
fraction of users running the RSP's app.
"""

from _harness import comparison_table, emit


from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline


def test_bench_coverage_vs_adoption(benchmark, simulated_world):
    town, result, horizon_days = simulated_world
    adoption_levels = (0.25, 0.5, 1.0)

    def sweep():
        rows = []
        for adoption in adoption_levels:
            config = PipelineConfig(horizon_days=horizon_days, seed=2016)
            outcome = run_full_pipeline(
                town, result, config, max_users=int(len(town.users) * adoption)
            )
            rows.append(
                (
                    adoption,
                    outcome.server.n_explicit_reviews,
                    outcome.server.n_opinions,
                    outcome.coverage_gain(),
                    outcome.median_opinions_after(),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(comparison_table(
        "A2: opinion coverage vs app adoption",
        ["adoption", "explicit reviews", "inferred opinions", "total gain", "median opinions/entity"],
        [
            [f"{a:.0%}", e, i, f"{g:.1f}x", f"{m:.0f}"]
            for a, e, i, g, m in rows
        ],
    ))

    gains = [g for _, _, _, g, _ in rows]
    inferred = [i for _, _, i, _, _ in rows]
    # More adoption, more inferred opinions; full adoption gives the
    # paper's "dramatic" (multi-x) increase.
    assert inferred == sorted(inferred)
    assert gains[-1] > 3.0
    assert inferred[-1] > 5 * rows[-1][1]  # inferred dwarf explicit
