"""A13 — interface differencing: exact vs coarsened publication.

Section 4.2 cites Calandrino et al. [15]: an RSP "could change its
interface in a manner that enables other users to infer the entities with
which a particular user has interacted."  The canonical instance is
single-increment differencing: the observer knows the target was the only
plausible new customer of entity E between two interface refreshes, and
checks whether E's published opinion count moved.

The bench takes every entity's real opinion count from the shared pipeline
run, applies the single increment a target would cause, and measures the
observer's confirmation rate under exact publication (always leaks) vs the
thresholded/rounded policy (leaks only when the increment happens to cross
a rounding boundary — a 1-in-round_to chance instead of certainty).
"""

from _harness import comparison_table, emit

from repro.core.aggregation import EntityOpinionSummary
from repro.core.publication import (
    coarsened_policy,
    differencing_attack,
    exact_policy,
    publish,
)


def _summary(entity_id: str, n: int) -> EntityOpinionSummary:
    return EntityOpinionSummary(
        entity_id=entity_id,
        n_explicit_reviews=0,
        explicit_mean=None,
        explicit_histogram=[0] * 5,
        n_inferred_opinions=n,
        inferred_mean=3.5 if n else None,
        inferred_histogram=[0] * 5,
        n_interacting_users=n,
        effective_interactions=float(n),
        raw_interactions=n,
        inferred_weight=float(n),
    )


def test_bench_differencing(benchmark, pipeline_outcome):
    server = pipeline_outcome.server

    # Real per-entity opinion counts from the deployed pipeline — the
    # population of "before" states a differencing observer would face.
    base_counts = {}
    for entity_id in server.catalog:
        summary = server.summary(entity_id)
        if summary is not None and summary.n_inferred_opinions > 0:
            base_counts[entity_id] = summary.n_inferred_opinions

    suspected = [(f"target-{i}", entity_id) for i, entity_id in enumerate(base_counts)]

    def run_attacks():
        reports = {}
        for name, policy in (("exact", exact_policy()), ("coarsened", coarsened_policy())):
            before = {
                entity_id: publish(_summary(entity_id, n), policy)
                for entity_id, n in base_counts.items()
            }
            after = {
                entity_id: publish(_summary(entity_id, n + 1), policy)
                for entity_id, n in base_counts.items()
            }
            reports[name] = differencing_attack(before, after, suspected)
        return reports

    reports = benchmark.pedantic(run_attacks, rounds=1, iterations=1)

    emit(comparison_table(
        "A13: single-increment differencing across the catalog",
        ["publication policy", "targets", "confirmed", "success rate"],
        [
            [name, report.n_targets, report.n_confirmed, f"{report.success_rate:.0%}"]
            for name, report in reports.items()
        ],
    ))

    assert len(suspected) > 50
    exact = reports["exact"]
    coarse = reports["coarsened"]
    # Exact continuous counts confirm every single-increment suspicion.
    assert exact.success_rate == 1.0
    # Rounding to 5 leaves at most ~1-in-5 boundary crossings, plus
    # threshold effects; coarsening must cut confirmations by >= 3x.
    assert coarse.success_rate < 0.35
    assert coarse.success_rate < exact.success_rate / 3
