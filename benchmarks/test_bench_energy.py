"""A6 — energy ablation: duty-cycled vs continuous location sensing.

Section 5's claim: accelerometer-gated duty cycling makes persistent
location monitoring affordable.  The bench runs the full sensing pipeline
(trace -> stay points -> entity resolution) under each policy and compares
energy against visit recall.
"""

from _harness import comparison_table, emit

from repro.sensing.energy import evaluate_policy
from repro.sensing.policy import continuous_policy, duty_cycled_policy
from repro.util.clock import DAY, HOUR


def test_bench_energy_vs_recall(benchmark, simulated_world):
    town, result, horizon_days = simulated_world
    horizon = horizon_days * DAY
    policies = [
        continuous_policy(interval=60.0),
        continuous_policy(interval=300.0),
        duty_cycled_policy(stationary_interval=1 * HOUR),
        duty_cycled_policy(stationary_interval=4 * HOUR),
    ]
    labels = ["continuous 60s", "continuous 300s", "duty-cycled 1h", "duty-cycled 4h"]

    def sweep():
        return [
            evaluate_policy(town, result, horizon, policy, seed=2016, max_users=25)
            for policy in policies
        ]

    evaluations = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for label, evaluation in zip(labels, evaluations):
        rows.append(
            [
                label,
                f"{evaluation.n_gps_fixes:,}",
                f"{evaluation.energy_per_user_day_joules:,.0f}",
                f"{evaluation.recall:.2f}",
            ]
        )
    emit(comparison_table(
        "A6: sensing energy vs visit recall",
        ["policy", "GPS fixes", "J / user / day", "visit recall"],
        rows,
    ))

    continuous = evaluations[0]
    duty = evaluations[2]
    # Order-of-magnitude energy cut at near-equal recall (Section 5).
    assert duty.energy_joules < 0.15 * continuous.energy_joules
    assert duty.recall >= continuous.recall - 0.05
    assert duty.recall > 0.7
