"""F1b — Figure 1(b): entities with >= 50 reviews per query.

Paper: "for the median query ... the number of results with at least 50
reviews is 12 on Yelp, 2 on Angie's List, and 1 on Healthgrades", with the
named examples: 127 Chinese restaurants near 19120 of which only 4 have
>= 50 reviews; 248 dentists near 11368 of which only 13 do.
"""

from _harness import comparison_table, emit

from repro.measurement import example_query, figure1b

PAPER_MEDIANS = {"Yelp": 12, "Angie's List": 2, "Healthgrades": 1}


def test_bench_fig1b(benchmark, crawls):
    result = benchmark.pedantic(
        figure1b, args=(list(crawls.values()),), rounds=1, iterations=1
    )

    rows = [
        [service, PAPER_MEDIANS[service], f"{result.median(service):.0f}"]
        for service in PAPER_MEDIANS
    ]
    emit(comparison_table(
        "Figure 1(b): well-reviewed entities per query (threshold 50)",
        ["service", "paper median", "measured median"],
        rows,
    ))
    emit(result.render())

    assert abs(result.median("Yelp") - 12) <= 4
    assert abs(result.median("Angie's List") - 2) <= 1.5
    assert result.median("Healthgrades") <= 2
    assert result.median("Yelp") > 3 * result.median("Angie's List")


def test_bench_fig1b_example_queries(benchmark, crawls):
    def named_examples():
        yelp = example_query(crawls["Yelp"], "19120", "chinese")
        healthgrades = example_query(crawls["Healthgrades"], "11368", "dentist")
        return yelp, healthgrades

    yelp, healthgrades = benchmark.pedantic(named_examples, rounds=1, iterations=1)

    emit(comparison_table(
        "Named example queries",
        ["query", "paper (matches / >=50)", "measured (matches / >=50)"],
        [
            ["Chinese near 19120 (Yelp)", "127 / 4", f"{yelp.n_entities} / {yelp.n_well_reviewed}"],
            ["Dentists near 11368 (HG)", "248 / 13", f"{healthgrades.n_entities} / {healthgrades.n_well_reviewed}"],
        ],
    ))

    assert yelp.n_entities == 127
    assert healthgrades.n_entities == 248
    # Shape: only a small handful / small fraction are well reviewed.
    assert 1 <= yelp.n_well_reviewed <= 12
    assert yelp.n_well_reviewed / yelp.n_entities < 0.10
    assert 4 <= healthgrades.n_well_reviewed <= 26
    assert healthgrades.n_well_reviewed / healthgrades.n_entities < 0.12
