"""Local entity resolution: mapping sensor observations to entities.

Section 4.2 requires that the RSP's app "locally map the inputs that it is
privy to to the corresponding entities" — resolution happens on the device,
so raw location and call history never leave it.  The resolver holds the
public entity directory (venue locations, phone numbers: the same data any
maps app ships) and converts stay points and call-log rows into
:class:`ObservedInteraction` records.

Resolution is deliberately imperfect in the same ways a real system is:

* a stay point matches the *nearest* venue within a threshold, so two
  venues in the same building can be confused;
* stay points matching no venue (home, work, a park) are dropped;
* calls to numbers outside the directory (friends, family) are dropped;
* anchors (home/work) are inferred from the trace itself as the most
  dwelled-at stay locations, never given to the resolver.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.sensing.location import StayPointConfig, extract_stay_points
from repro.sensing.spatial import GridIndex
from repro.sensing.traces import DeviceTrace
from repro.world.entities import Entity
from repro.world.geography import Point


class InteractionType(enum.Enum):
    VISIT = "visit"
    CALL = "call"


@dataclass(frozen=True)
class ObservedInteraction:
    """One inferred user-entity interaction, as the client sees it.

    ``travel_km`` is the distance from the previous stationary spot (the
    paper's effort feature); it is 0 for calls, where the user did not move.
    """

    entity_id: str
    interaction_type: InteractionType
    time: float
    duration: float
    travel_km: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.travel_km < 0:
            raise ValueError("travel distance must be non-negative")


@dataclass(frozen=True)
class ResolverConfig:
    """Matching thresholds."""

    #: Maximum stay-point-to-venue distance for a match, km.
    match_radius_km: float = 0.12
    #: Stay points dwelling longer than this are anchor candidates (home,
    #: work) rather than venue visits, seconds.
    anchor_dwell_threshold: float = 6 * 3600.0
    #: Stay-point extraction settings.
    stay_points: StayPointConfig = field(default_factory=StayPointConfig)


class EntityResolver:
    """Resolves a :class:`DeviceTrace` into observed interactions."""

    def __init__(self, entities: list[Entity], config: ResolverConfig | None = None) -> None:
        if not entities:
            raise ValueError("resolver needs a non-empty entity directory")
        self.config = config or ResolverConfig()
        self._entities = list(entities)
        self._index = GridIndex(entities, cell_km=1.0)
        self._by_phone = {entity.phone: entity for entity in entities if entity.phone}

    def nearest_entity(self, point: Point) -> tuple[Entity | None, float]:
        """The nearest directory entity and its distance (km)."""
        return self._index.nearest(point)

    def resolve_phone(self, number: str) -> Entity | None:
        """Directory lookup of a call-log number; None for personal calls."""
        return self._by_phone.get(number)

    def resolve(self, trace: DeviceTrace) -> list[ObservedInteraction]:
        """Turn one device trace into time-ordered observed interactions."""
        interactions: list[ObservedInteraction] = []
        stays = extract_stay_points(trace.location_samples, self.config.stay_points)

        for index, stay in enumerate(stays):
            if stay.duration >= self.config.anchor_dwell_threshold:
                continue  # home/work/overnight anchor, not a venue visit
            entity, distance = self.nearest_entity(stay.center)
            if entity is None or distance > self.config.match_radius_km:
                continue
            travel = (
                stays[index - 1].center.distance_to(stay.center) if index > 0 else 0.0
            )
            interactions.append(
                ObservedInteraction(
                    entity_id=entity.entity_id,
                    interaction_type=InteractionType.VISIT,
                    time=stay.start,
                    duration=stay.duration,
                    travel_km=travel,
                )
            )

        for call in trace.call_records:
            entity = self.resolve_phone(call.number)
            if entity is None:
                continue
            interactions.append(
                ObservedInteraction(
                    entity_id=entity.entity_id,
                    interaction_type=InteractionType.CALL,
                    time=call.time,
                    duration=call.duration,
                )
            )

        interactions.sort(key=lambda i: i.time)
        return interactions

    def group_by_entity(
        self, interactions: list[ObservedInteraction]
    ) -> dict[str, list[ObservedInteraction]]:
        """Bucket interactions per entity — the per-(user, entity) history
        the client maintains and uploads."""
        grouped: dict[str, list[ObservedInteraction]] = defaultdict(list)
        for interaction in interactions:
            grouped[interaction.entity_id].append(interaction)
        return dict(grouped)
