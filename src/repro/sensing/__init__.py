"""Device sensing: raw traces, stay points, entity resolution, energy.

This package is the RSP client's perception layer.  It converts
ground-truth physical activity into noisy sensor streams (the substitute
for real smartphone feeds) and then — seeing only those streams — recovers
user-entity interactions the way the paper's envisioned app would.
"""

from repro.sensing.energy import PolicyEvaluation, evaluate_policy
from repro.sensing.location import (
    StayPoint,
    StayPointConfig,
    extract_stay_points,
    travel_distance_before,
)
from repro.sensing.policy import SensingPolicy, continuous_policy, duty_cycled_policy
from repro.sensing.resolution import (
    EntityResolver,
    InteractionType,
    ObservedInteraction,
    ResolverConfig,
)
from repro.sensing.sensors import TraceConfig, generate_trace, generate_traces
from repro.sensing.spatial import GridIndex
from repro.sensing.wearables import (
    EmotionSample,
    WearableConfig,
    generate_emotion_trace,
    mean_valence_by_entity,
    valence_of_opinion,
)
from repro.sensing.traces import (
    CallDirection,
    CallRecord,
    DeviceTrace,
    LocationSample,
    PaymentRecord,
)

__all__ = [
    "CallDirection",
    "CallRecord",
    "DeviceTrace",
    "EmotionSample",
    "WearableConfig",
    "generate_emotion_trace",
    "mean_valence_by_entity",
    "valence_of_opinion",
    "EntityResolver",
    "GridIndex",
    "InteractionType",
    "LocationSample",
    "ObservedInteraction",
    "PaymentRecord",
    "PolicyEvaluation",
    "ResolverConfig",
    "SensingPolicy",
    "StayPoint",
    "StayPointConfig",
    "TraceConfig",
    "continuous_policy",
    "duty_cycled_policy",
    "evaluate_policy",
    "extract_stay_points",
    "generate_trace",
    "generate_traces",
    "travel_distance_before",
]
