"""Wearable emotion sensing — the paper's scoped-out future direction.

Section 3.1: "Given the increasing array of sensors on wearable devices
(e.g., heart rate monitors on smartwatches), an RSP may be able to infer a
user's opinion about an entity by monitoring the user's emotions when
interacting with the entity.  In this paper, we restrict our consideration
to more modest means..."  This module un-restricts it, as an opt-in
extension the A14 benchmark evaluates.

The wearable is modelled at the level the cited idea needs: during a
visit, the device emits *valence* samples — a scalar in [-1, 1] whose mean
tracks the user's true affect toward the entity, buried in substantial
per-sample noise plus a per-user baseline offset (some people's heart rate
says nothing).  The signal is deliberately weak; the question A14 answers
is whether even a weak affect channel improves opinion inference when
added to the behavioural features — not whether smartwatches read minds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.clock import MINUTE
from repro.util.rng import make_rng
from repro.world.behavior import SimulationResult
from repro.world.events import VisitEvent


@dataclass(frozen=True)
class EmotionSample:
    """One wearable affect reading during a visit."""

    time: float
    valence: float  # [-1, 1]

    def __post_init__(self) -> None:
        if not -1.0 <= self.valence <= 1.0:
            raise ValueError("valence must lie in [-1, 1]")


@dataclass(frozen=True)
class WearableConfig:
    """Signal-quality knobs of the emotion channel."""

    #: Seconds between affect readings during a visit.
    sample_interval: float = 5 * MINUTE
    #: Per-sample noise std-dev (the signal is weak by construction).
    sample_noise: float = 0.45
    #: Std-dev of the per-user baseline offset (some users are unreadable).
    user_baseline_noise: float = 0.2

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.sample_noise < 0 or self.user_baseline_noise < 0:
            raise ValueError("noise levels must be non-negative")


def valence_of_opinion(opinion: float) -> float:
    """Map a 0-5 opinion to the mean affect in [-1, 1] (2.5 is neutral)."""
    if not 0.0 <= opinion <= 5.0:
        raise ValueError("opinion must lie in [0, 5]")
    return (opinion - 2.5) / 2.5


def generate_emotion_trace(
    user_id: str,
    result: SimulationResult,
    horizon: float,
    config: WearableConfig | None = None,
    seed: int = 0,
) -> dict[str, list[EmotionSample]]:
    """Per-entity affect samples one user's wearable would have recorded.

    Samples are emitted during the user's visits; their latent mean is the
    user's true opinion of the entity (that is what emotions *are* in this
    model), wrapped in per-sample noise and the user's baseline offset.
    """
    config = config or WearableConfig()
    rng = make_rng(seed, f"wearable/{user_id}")
    baseline = float(rng.normal(0.0, config.user_baseline_noise))

    samples: dict[str, list[EmotionSample]] = {}
    for event in result.events:
        if not isinstance(event, VisitEvent):
            continue
        if event.user_id != user_id or event.start_time >= horizon:
            continue
        truth = result.opinions.get((user_id, event.entity_id))
        mean_valence = valence_of_opinion(truth.opinion) if truth is not None else 0.0
        t = event.start_time + config.sample_interval
        while t < event.end_time:
            raw = mean_valence + baseline + float(rng.normal(0.0, config.sample_noise))
            samples.setdefault(event.entity_id, []).append(
                EmotionSample(time=t, valence=float(np.clip(raw, -1.0, 1.0)))
            )
            t += config.sample_interval
    return samples


def mean_valence_by_entity(
    samples: dict[str, list[EmotionSample]]
) -> dict[str, float]:
    """The per-entity affect feature the client would compute locally."""
    return {
        entity_id: float(np.mean([s.valence for s in entity_samples]))
        for entity_id, entity_samples in samples.items()
        if entity_samples
    }
