"""Stay-point extraction: from GPS fixes to dwell episodes.

The classic trajectory-mining primitive: a *stay point* is a maximal run of
consecutive fixes that remain within ``radius_km`` of the run's centroid
for at least ``min_duration`` seconds.  Stay points are the unit the entity
resolver matches against venues; travel segments between them provide the
"distance travelled since previous stationary spot" feature the paper
names (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.sensing.traces import LocationSample
from repro.world.geography import Point


@dataclass(frozen=True)
class StayPoint:
    """A dwell episode extracted from the location stream."""

    center: Point
    start: float
    end: float
    n_samples: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class StayPointConfig:
    """Extraction thresholds.

    Defaults suit urban venue visits: 150 m radius tolerates GPS noise and
    building footprints; 10 minutes filters out traffic lights and queues;
    2 samples is the minimum for a dwell to be evidenced at all.
    """

    radius_km: float = 0.15
    min_duration: float = 600.0
    min_samples: int = 2

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise ValueError("radius must be positive")
        if self.min_duration <= 0:
            raise ValueError("min_duration must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


def extract_stay_points(
    samples: list[LocationSample],
    config: StayPointConfig | None = None,
) -> list[StayPoint]:
    """Extract stay points from a time-ordered location stream.

    Greedy single pass: grow the current cluster while each new fix stays
    within ``radius_km`` of the running centroid; on departure, flush the
    cluster if it satisfies the duration and sample-count thresholds.
    """
    config = config or StayPointConfig()
    stays: list[StayPoint] = []
    if not samples:
        return stays

    cluster: list[LocationSample] = [samples[0]]
    cx, cy = samples[0].point.x, samples[0].point.y

    def flush() -> None:
        duration = cluster[-1].time - cluster[0].time
        if len(cluster) >= config.min_samples and duration >= config.min_duration:
            stays.append(
                StayPoint(
                    center=Point(cx, cy),
                    start=cluster[0].time,
                    end=cluster[-1].time,
                    n_samples=len(cluster),
                )
            )

    for sample in samples[1:]:
        if sample.time < cluster[-1].time:
            raise ValueError("location samples must be time-ordered")
        if sample.point.distance_to(Point(cx, cy)) <= config.radius_km:
            cluster.append(sample)
            n = len(cluster)
            cx += (sample.point.x - cx) / n
            cy += (sample.point.y - cy) / n
        else:
            flush()
            cluster = [sample]
            cx, cy = sample.point.x, sample.point.y
    flush()
    return stays


def travel_distance_before(
    stays: list[StayPoint], index: int
) -> float:
    """Distance from the previous stay point to stay ``index`` (km).

    This is the paper's effort feature: how far the user travelled since
    their previous stationary spot.  The first stay has no predecessor and
    reports 0.
    """
    if not 0 <= index < len(stays):
        raise IndexError("stay index out of range")
    if index == 0:
        return 0.0
    return stays[index - 1].center.distance_to(stays[index].center)
