"""Grid spatial index for nearest-entity lookups.

Entity resolution matches every stay point against the venue directory; a
linear scan is O(entities) per stay point and dominates the pipeline's
runtime for city-sized catalogs.  :class:`GridIndex` buckets entities into
square cells and answers nearest-neighbour queries by expanding rings of
cells outward until no unexplored cell can beat the best candidate — the
standard uniform-grid construction, exact (property-tested against the
linear scan) and O(1)-ish for uniformly spread venues.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.world.entities import Entity
from repro.world.geography import Point


class GridIndex:
    """A uniform-grid nearest-neighbour index over entities."""

    def __init__(self, entities: list[Entity], cell_km: float = 1.0) -> None:
        if not entities:
            raise ValueError("index needs at least one entity")
        if cell_km <= 0:
            raise ValueError("cell size must be positive")
        self.cell_km = float(cell_km)
        self._cells: dict[tuple[int, int], list[Entity]] = defaultdict(list)
        self._entities = list(entities)
        for entity in entities:
            self._cells[self._cell_of(entity.location)].append(entity)
        self.n_entities = len(entities)
        xs = [entity.location.x for entity in entities]
        ys = [entity.location.y for entity in entities]
        self._bbox = (min(xs), min(ys), max(xs), max(ys))

    def _cell_of(self, point: Point) -> tuple[int, int]:
        return (math.floor(point.x / self.cell_km), math.floor(point.y / self.cell_km))

    def _ring_cells(self, cx: int, cy: int, ring: int):
        if ring == 0:
            yield (cx, cy)
            return
        for ix in range(cx - ring, cx + ring + 1):
            yield (ix, cy - ring)
            yield (ix, cy + ring)
        for iy in range(cy - ring + 1, cy + ring):
            yield (cx - ring, iy)
            yield (cx + ring, iy)

    def nearest(self, point: Point) -> tuple[Entity, float]:
        """The nearest indexed entity and its distance (km). Exact."""
        # Queries far outside the indexed area would expand many empty
        # rings; a linear scan is both exact and faster out there.
        x_min, y_min, x_max, y_max = self._bbox
        margin = 4 * self.cell_km
        if (
            point.x < x_min - margin
            or point.x > x_max + margin
            or point.y < y_min - margin
            or point.y > y_max + margin
        ):
            best = min(self._entities, key=lambda e: point.distance_to(e.location))
            return best, point.distance_to(best.location)

        cx, cy = self._cell_of(point)
        best: Entity | None = None
        best_distance = float("inf")
        ring = 0
        while True:
            # Once the closest possible point of the next unexplored ring is
            # farther than the best match, no better candidate can exist.
            ring_floor = (ring - 1) * self.cell_km
            if best is not None and ring_floor > best_distance:
                break
            for key in self._ring_cells(cx, cy, ring):
                cell = self._cells.get(key)
                if cell is None:
                    continue
                for entity in cell:
                    distance = point.distance_to(entity.location)
                    if distance < best_distance:
                        best, best_distance = entity, distance
            ring += 1
            if ring > 100_000:  # unreachable given the bbox guard
                raise RuntimeError("grid search failed to terminate")
        assert best is not None
        return best, best_distance

    def within(self, point: Point, radius_km: float) -> list[tuple[Entity, float]]:
        """All indexed entities within ``radius_km`` of ``point``."""
        if radius_km < 0:
            raise ValueError("radius must be non-negative")
        reach = math.ceil(radius_km / self.cell_km) + 1
        cx, cy = self._cell_of(point)
        matches: list[tuple[Entity, float]] = []
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                for entity in self._cells.get((ix, iy), ()):
                    distance = point.distance_to(entity.location)
                    if distance <= radius_km:
                        matches.append((entity, distance))
        matches.sort(key=lambda pair: pair[1])
        return matches
