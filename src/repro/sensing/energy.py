"""Energy accounting and visit-recall evaluation for sensing policies.

Section 5's location-tracking claim, made measurable: accelerometer-gated
duty cycling should cut sensing energy by an order of magnitude while
recalling nearly all venue visits.  :func:`evaluate_policy` runs the full
pipeline (trace generation under the policy → stay-point extraction →
entity resolution) against ground truth and reports both sides of the
trade-off; the A6 benchmark sweeps policies through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensing.policy import SensingPolicy
from repro.sensing.resolution import EntityResolver, InteractionType, ResolverConfig
from repro.sensing.sensors import TraceConfig, generate_trace
from repro.world.behavior import SimulationResult
from repro.world.events import VisitEvent
from repro.world.population import Town


@dataclass(frozen=True)
class PolicyEvaluation:
    """Outcome of running one sensing policy over a population."""

    policy_name: str
    n_users: int
    horizon: float
    n_gps_fixes: int
    energy_joules: float
    n_true_visits: int
    n_detected_visits: int
    n_matched_visits: int

    @property
    def recall(self) -> float:
        """Fraction of true visits recovered by the pipeline."""
        if self.n_true_visits == 0:
            return 1.0
        return self.n_matched_visits / self.n_true_visits

    @property
    def energy_per_user_day_joules(self) -> float:
        """Average sensing energy per user per day."""
        days = self.horizon / 86_400.0
        return self.energy_joules / max(self.n_users, 1) / max(days, 1e-9)


def _match_visits(
    true_visits: list[VisitEvent],
    detected: list[tuple[str, float]],
    time_slack: float = 1800.0,
) -> int:
    """Count true visits matched by a detection (same entity, overlapping time)."""
    matched = 0
    used = [False] * len(detected)
    for visit in true_visits:
        for index, (entity_id, start) in enumerate(detected):
            if used[index]:
                continue
            if entity_id == visit.entity_id and abs(start - visit.start_time) <= time_slack:
                used[index] = True
                matched += 1
                break
    return matched


def evaluate_policy(
    town: Town,
    result: SimulationResult,
    horizon: float,
    policy: SensingPolicy,
    trace_config: TraceConfig | None = None,
    resolver_config: ResolverConfig | None = None,
    seed: int = 0,
    max_users: int | None = None,
) -> PolicyEvaluation:
    """Run the sensing pipeline under ``policy`` and score it."""
    trace_config = trace_config or TraceConfig()
    resolver = EntityResolver(town.entities, resolver_config)
    users = town.users if max_users is None else town.users[:max_users]

    total_fixes = 0
    total_energy = 0.0
    total_true = 0
    total_detected = 0
    total_matched = 0

    for user in users:
        trace = generate_trace(
            user.user_id, town, result, horizon, policy, trace_config, seed
        )
        interactions = resolver.resolve(trace)
        detected = [
            (i.entity_id, i.time)
            for i in interactions
            if i.interaction_type is InteractionType.VISIT
        ]
        true_visits = [
            event
            for event in result.events
            if isinstance(event, VisitEvent)
            and event.user_id == user.user_id
            and event.start_time < horizon
        ]
        total_fixes += trace.n_gps_fixes
        total_energy += policy.energy_joules(trace.n_gps_fixes, horizon)
        total_true += len(true_visits)
        total_detected += len(detected)
        total_matched += _match_visits(true_visits, detected)

    return PolicyEvaluation(
        policy_name=policy.name,
        n_users=len(users),
        horizon=horizon,
        n_gps_fixes=total_fixes,
        energy_joules=total_energy,
        n_true_visits=total_true,
        n_detected_visits=total_detected,
        n_matched_visits=total_matched,
    )
