"""Location-sampling policies and their energy model (Section 5).

The paper notes that continuous location tracking is energy-prohibitive and
prescribes the standard remedies ([27], [28]): use the accelerometer to
sample "only when the user has been stationary for a few minutes and
resample only if the user moves", and prefer WiFi/cell positioning over GPS.

A :class:`SensingPolicy` controls when the trace generator takes fixes and
what each fix costs; the A6 energy benchmark compares policies on energy
drawn vs visits recalled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.clock import HOUR, MINUTE


@dataclass(frozen=True)
class SensingPolicy:
    """When to take location fixes, and what sensing costs.

    Energy constants follow the usual smartphone ballpark figures: a GPS
    fix costs on the order of a joule; continuous accelerometer monitoring
    is three orders of magnitude cheaper per unit time.
    """

    name: str
    #: Fix schedule at the start of each stay: offsets (seconds) from the
    #: moment the user becomes stationary.  A short burst confirms the dwell
    #: (stay-point extraction needs a few fixes spanning its minimum
    #: duration); after the burst, fixes repeat every
    #: ``stationary_interval``.
    burst_offsets: tuple[float, ...]
    #: Seconds between keep-alive fixes once the burst is exhausted.  The
    #: accelerometer-gated policy sets this long: if the device has not
    #: moved, re-fixing adds nothing.
    stationary_interval: float
    #: Seconds between fixes while the user is moving (travel segments);
    #: None means no fixes while moving (the accelerometer already knows
    #: the user is in transit, so position fixes are wasted energy).
    moving_interval: float | None
    #: Whether the accelerometer gates GPS duty-cycling.
    accelerometer_gated: bool
    #: Energy per positioning fix, joules.
    fix_cost_j: float = 1.0
    #: Accelerometer monitoring cost, joules per hour (only if gated).
    accelerometer_cost_j_per_hour: float = 3.6

    def __post_init__(self) -> None:
        if self.stationary_interval <= 0:
            raise ValueError("stationary_interval must be positive")
        if self.moving_interval is not None and self.moving_interval <= 0:
            raise ValueError("moving_interval must be positive when set")

    def energy_joules(self, n_fixes: int, duration_seconds: float) -> float:
        """Total sensing energy for a trace."""
        if n_fixes < 0 or duration_seconds < 0:
            raise ValueError("counts and durations must be non-negative")
        energy = n_fixes * self.fix_cost_j
        if self.accelerometer_gated:
            energy += self.accelerometer_cost_j_per_hour * duration_seconds / HOUR
        return energy


def continuous_policy(interval: float = 60.0) -> SensingPolicy:
    """Naive baseline: a GPS fix every ``interval`` seconds, always."""
    return SensingPolicy(
        name="continuous",
        burst_offsets=(),
        stationary_interval=interval,
        moving_interval=interval,
        accelerometer_gated=False,
    )


def duty_cycled_policy(stationary_interval: float = 1 * HOUR) -> SensingPolicy:
    """Accelerometer-gated duty cycling per Section 5.

    No fixes while moving; on becoming stationary, a three-fix burst over
    the first ~15 minutes confirms the dwell, then hourly keep-alive fixes
    for as long as the accelerometer reports no movement.
    """
    return SensingPolicy(
        name="duty-cycled",
        burst_offsets=(30.0, 5 * MINUTE + 30.0, 15 * MINUTE + 30.0),
        stationary_interval=stationary_interval,
        moving_interval=None,
        accelerometer_gated=True,
    )
