"""Raw sensor data structures: what the RSP's app actually sees.

The paper's client never observes "user visited restaurant X" — it observes
GPS fixes, call-log rows, and payment records, and must *infer* the visit
(Section 3.1, "Inferring user-entity interactions").  These dataclasses are
that raw material.  Everything downstream of :mod:`repro.sensing` consumes
only these types, never the ground-truth events of :mod:`repro.world` —
keeping the inference honest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.world.geography import Point


@dataclass(frozen=True)
class LocationSample:
    """One GPS/WiFi positioning fix."""

    time: float
    point: Point
    #: Positioning error estimate in km (GPS ~0.01-0.05, cell tower ~0.5+).
    accuracy_km: float = 0.03

    def __post_init__(self) -> None:
        if self.accuracy_km < 0:
            raise ValueError("accuracy must be non-negative")


class CallDirection(enum.Enum):
    OUTGOING = "outgoing"
    INCOMING = "incoming"


@dataclass(frozen=True)
class CallRecord:
    """One call-log row."""

    time: float
    number: str
    duration: float
    direction: CallDirection = CallDirection.OUTGOING

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


@dataclass(frozen=True)
class PaymentRecord:
    """One card/app payment — a digital footprint of a physical interaction."""

    time: float
    merchant_name: str
    amount: float

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("amount must be non-negative")


@dataclass
class DeviceTrace:
    """Everything one user's device recorded over the observation window."""

    user_id: str
    location_samples: list[LocationSample] = field(default_factory=list)
    call_records: list[CallRecord] = field(default_factory=list)
    payment_records: list[PaymentRecord] = field(default_factory=list)

    def sort(self) -> None:
        """Time-order all streams in place."""
        self.location_samples.sort(key=lambda s: s.time)
        self.call_records.sort(key=lambda c: c.time)
        self.payment_records.sort(key=lambda p: p.time)

    @property
    def n_gps_fixes(self) -> int:
        return len(self.location_samples)

    @property
    def span(self) -> float:
        """Time covered by the location stream (seconds)."""
        if not self.location_samples:
            return 0.0
        return self.location_samples[-1].time - self.location_samples[0].time
