"""The device: turning ground-truth activity into raw sensor streams.

Given the physical-world events of :mod:`repro.world`, this module produces
what a phone would actually record — noisy GPS fixes under a sampling
policy, call-log rows (including personal calls that have nothing to do
with any entity), and payment records.  Downstream inference sees only
these streams; nothing in them names an entity or an opinion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensing.policy import SensingPolicy, duty_cycled_policy
from repro.sensing.traces import CallRecord, DeviceTrace, LocationSample, PaymentRecord
from repro.util.clock import DAY
from repro.util.rng import make_rng
from repro.world.behavior import SimulationResult
from repro.world.events import CallEvent, VisitEvent
from repro.world.geography import Point, travel_time_seconds
from repro.world.population import Town


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the sensor model."""

    #: Std-dev of GPS noise, km (~30 m).
    gps_noise_km: float = 0.03
    #: Delay after becoming stationary before the first fix.
    first_fix_delay: float = 30.0
    #: Personal (non-entity) calls per day, polluting the call log.
    personal_calls_per_day: float = 3.0
    #: Probability that a restaurant visit produces a payment record.
    payment_probability: float = 0.8
    #: Average urban travel speed used to synthesize travel segments.
    speed_kmh: float = 25.0


@dataclass(frozen=True)
class _Stay:
    location: Point
    start: float
    end: float


def _stays_for_user(
    visits: list[VisitEvent],
    town: Town,
    horizon: float,
    speed_kmh: float,
) -> list[_Stay]:
    """Reconstruct the user's stay timeline: anchored, visiting, anchored..."""
    stays: list[_Stay] = []
    cursor = 0.0
    for visit in visits:
        entity = town.entity(visit.entity_id)
        travel = travel_time_seconds(visit.origin, entity.location, speed_kmh)
        depart = max(cursor, visit.start_time - travel)
        if depart > cursor:
            stays.append(_Stay(location=visit.origin, start=cursor, end=depart))
        stays.append(
            _Stay(location=entity.location, start=visit.start_time, end=visit.end_time)
        )
        cursor = visit.end_time + travel
    if cursor < horizon and visits:
        stays.append(_Stay(location=visits[-1].origin, start=cursor, end=horizon))
    if not visits:
        return []
    return [stay for stay in stays if stay.end > stay.start]


def _stay_fix_times(stay: _Stay, policy: SensingPolicy, config: TraceConfig) -> list[float]:
    times: list[float] = []
    if policy.burst_offsets:
        for offset in policy.burst_offsets:
            t = stay.start + offset
            if t < stay.end:
                times.append(t)
        cursor = stay.start + policy.burst_offsets[-1] + policy.stationary_interval
    else:
        cursor = stay.start + config.first_fix_delay
    while cursor < stay.end:
        times.append(cursor)
        cursor += policy.stationary_interval
    return times


def _sample_stay(
    stay: _Stay,
    policy: SensingPolicy,
    config: TraceConfig,
    rng: np.random.Generator,
) -> list[LocationSample]:
    samples: list[LocationSample] = []
    for t in _stay_fix_times(stay, policy, config):
        noisy = Point(
            stay.location.x + float(rng.normal(0, config.gps_noise_km)),
            stay.location.y + float(rng.normal(0, config.gps_noise_km)),
        )
        samples.append(LocationSample(time=t, point=noisy, accuracy_km=config.gps_noise_km))
    return samples


def _sample_travel(
    origin: Point,
    destination: Point,
    start: float,
    end: float,
    policy: SensingPolicy,
    config: TraceConfig,
    rng: np.random.Generator,
) -> list[LocationSample]:
    if policy.moving_interval is None or end <= start:
        return []
    samples: list[LocationSample] = []
    t = start + policy.moving_interval
    while t < end:
        fraction = (t - start) / (end - start)
        x = origin.x + fraction * (destination.x - origin.x)
        y = origin.y + fraction * (destination.y - origin.y)
        noisy = Point(
            x + float(rng.normal(0, config.gps_noise_km)),
            y + float(rng.normal(0, config.gps_noise_km)),
        )
        samples.append(LocationSample(time=t, point=noisy, accuracy_km=config.gps_noise_km))
        t += policy.moving_interval
    return samples


def generate_trace(
    user_id: str,
    town: Town,
    result: SimulationResult,
    horizon: float,
    policy: SensingPolicy | None = None,
    config: TraceConfig | None = None,
    seed: int = 0,
) -> DeviceTrace:
    """Produce the device trace one user's phone would have recorded.

    ``horizon`` is the end of the observation window in simulated seconds
    (events beyond it are ignored).
    """
    policy = policy or duty_cycled_policy()
    config = config or TraceConfig()
    rng = make_rng(seed, f"trace/{user_id}")
    trace = DeviceTrace(user_id=user_id)

    visits = [
        event
        for event in result.events
        if isinstance(event, VisitEvent)
        and event.user_id == user_id
        and event.start_time < horizon
    ]
    visits.sort(key=lambda v: v.start_time)

    stays = _stays_for_user(visits, town, horizon, config.speed_kmh)
    for index, stay in enumerate(stays):
        trace.location_samples.extend(_sample_stay(stay, policy, config, rng))
        if index + 1 < len(stays):
            nxt = stays[index + 1]
            trace.location_samples.extend(
                _sample_travel(
                    stay.location, nxt.location, stay.end, nxt.start, policy, config, rng
                )
            )

    for event in result.events:
        if (
            isinstance(event, CallEvent)
            and event.user_id == user_id
            and event.start_time < horizon
        ):
            entity = town.entity(event.entity_id)
            trace.call_records.append(
                CallRecord(time=event.start_time, number=entity.phone, duration=event.duration)
            )

    # Personal calls: numbers outside the entity directory that resolution
    # must learn to ignore.
    n_personal = int(rng.poisson(config.personal_calls_per_day * horizon / DAY))
    for _ in range(n_personal):
        trace.call_records.append(
            CallRecord(
                time=float(rng.uniform(0, horizon)),
                number=f"+1-777-{int(rng.integers(0, 10**7)):07d}",
                duration=float(rng.exponential(180.0)),
            )
        )

    for visit in visits:
        entity = town.entity(visit.entity_id)
        if entity.kind.label == "restaurant" and rng.random() < config.payment_probability:
            trace.payment_records.append(
                PaymentRecord(
                    time=visit.end_time,
                    merchant_name=entity.entity_id,
                    amount=float(rng.uniform(8, 120)),
                )
            )

    trace.sort()
    return trace


def generate_traces(
    town: Town,
    result: SimulationResult,
    horizon: float,
    policy: SensingPolicy | None = None,
    config: TraceConfig | None = None,
    seed: int = 0,
) -> dict[str, DeviceTrace]:
    """Traces for every user in the town."""
    return {
        user.user_id: generate_trace(
            user.user_id, town, result, horizon, policy, config, seed
        )
        for user in town.users
    }
