"""Contribution concentration: the "1/9/90 rule" behind the review paucity.

The paper's root-cause claim (Section 1, citing Yelp's own "1/9/90" blog
post [11]): "the vast majority of users largely consume opinions shared by
others but seldom post reviews themselves."  This module measures that
concentration on a simulated population — what share of all reviews the
top 1% and next 9% of contributors wrote, the overall review rate per
interaction, and the Gini coefficient of review counts across users — so
the behavioural simulator's participation structure can be validated
against the rule the paper leans on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.util.stats import gini
from repro.world.behavior import SimulationResult


@dataclass(frozen=True)
class ParticipationReport:
    """Who writes the reviews."""

    n_users: int
    n_interacting_users: int
    n_reviewing_users: int
    n_interactions: int
    n_reviews: int
    #: Share of all reviews written by the top 1% of reviewers.
    top1_share: float
    #: Share written by the next 9% (percentiles 90-99).
    next9_share: float
    #: Share written by everyone else (the "90").
    rest_share: float
    #: Gini of per-user review counts (1 = total concentration).
    review_gini: float

    @property
    def reviews_per_interaction(self) -> float:
        if self.n_interactions == 0:
            return 0.0
        return self.n_reviews / self.n_interactions

    @property
    def silent_majority_fraction(self) -> float:
        """Fraction of interacting users who never reviewed anything."""
        if self.n_interacting_users == 0:
            return 0.0
        return 1.0 - self.n_reviewing_users / self.n_interacting_users


def participation_report(result: SimulationResult, n_users: int) -> ParticipationReport:
    """Measure contribution concentration over a simulated population.

    ``n_users`` is the population size (users with zero interactions still
    count toward the distribution's base).
    """
    interactions_per_user: dict[str, int] = defaultdict(int)
    for event in result.events:
        interactions_per_user[event.user_id] += 1
    reviews_per_user: dict[str, int] = defaultdict(int)
    for review in result.reviews:
        reviews_per_user[review.user_id] += 1

    counts = np.zeros(n_users, dtype=np.float64)
    for index, user_id in enumerate(sorted(interactions_per_user)):
        if index < n_users:
            counts[index] = reviews_per_user.get(user_id, 0)
    # Users who interacted but are beyond n_users (shouldn't happen) or
    # users with no interactions keep zero counts — both are "the 90".
    all_review_counts = np.zeros(n_users, dtype=np.float64)
    review_values = sorted(reviews_per_user.values(), reverse=True)
    all_review_counts[: len(review_values)] = review_values

    total_reviews = float(all_review_counts.sum())
    top1_n = max(1, round(0.01 * n_users))
    next9_n = max(1, round(0.09 * n_users))
    if total_reviews > 0:
        top1 = float(all_review_counts[:top1_n].sum()) / total_reviews
        next9 = float(all_review_counts[top1_n : top1_n + next9_n].sum()) / total_reviews
    else:
        top1 = next9 = 0.0

    return ParticipationReport(
        n_users=n_users,
        n_interacting_users=len(interactions_per_user),
        n_reviewing_users=len(reviews_per_user),
        n_interactions=sum(interactions_per_user.values()),
        n_reviews=len(result.reviews),
        top1_share=top1,
        next9_share=next9,
        rest_share=max(0.0, 1.0 - top1 - next9) if total_reviews > 0 else 0.0,
        review_gini=gini(all_review_counts),
    )
