"""Generative models of the crawled review services.

The paper crawled Yelp, Angie's List, and Healthgrades in 2016; that data is
proprietary and ephemeral, so we substitute generative models calibrated to
every statistic the paper publishes:

* Table 1 — number of categories and total entities discovered
  (9/24,417 Yelp; 24/26,066 Angie's List; 4/24,922 Healthgrades).
* Figure 1(a) — per-entity review-count medians (25 / 8 / 5).
* Figure 1(b) — per-query counts of entities with >= 50 reviews
  (medians 12 / 2 / 1) including the two named example queries
  (127 Chinese restaurants near 19120 with 4 >= 50;
  248 dentists near 11368 with 13 >= 50).

Model structure, per service:

1. Each (zipcode, category) query matches ``n`` entities, with ``n`` drawn
   from a heavy-tailed :class:`~repro.util.distributions.DiscreteLogNormal`
   whose mean reproduces the Table 1 totals.
2. Each matched entity's review count is drawn from a log-normal whose
   median depends on the query's size through
   ``median = base_median * (reference_size / n) ** dilution``:
   in saturated markets (Yelp: 127 Chinese restaurants in one zipcode)
   reader attention is divided and per-entity review counts fall
   (``dilution > 0``), while for doctors a bigger market correlates with
   more patient traffic per practice (``dilution < 0``) — this is what
   reconciles the paper's median-query statistics with its named extreme
   examples, which sit on opposite sides of the median for Yelp vs
   Healthgrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.distributions import DiscreteLogNormal
from repro.util.rng import make_rng
from repro.measurement.zipcodes import MOST_POPULOUS_ZIPCODES

#: Yelp's nine queried cuisines (Section 2: "9 popular cuisines").
YELP_CATEGORIES: tuple[str, ...] = (
    "chinese",
    "italian",
    "mexican",
    "japanese",
    "indian",
    "thai",
    "american",
    "mediterranean",
    "korean",
)

#: Healthgrades' four queried specialities (Section 2).
HEALTHGRADES_CATEGORIES: tuple[str, ...] = (
    "dentist",
    "family_medicine",
    "pediatrics",
    "plastic_surgery",
)

#: Angie's List's 24 service-provider categories (Section 2: "all 24 types").
ANGIES_CATEGORIES: tuple[str, ...] = (
    "electrician",
    "plumber",
    "gardener",
    "house_cleaning",
    "handyman",
    "hvac",
    "roofing",
    "painting",
    "landscaping",
    "pest_control",
    "flooring",
    "remodeling",
    "tree_service",
    "garage_doors",
    "locksmith",
    "moving",
    "appliance_repair",
    "window_installation",
    "fencing",
    "concrete",
    "gutter_cleaning",
    "drywall",
    "carpet_cleaning",
    "pool_service",
)


@dataclass(frozen=True)
class ServiceSpec:
    """Calibration of one review service's generative model."""

    name: str
    categories: tuple[str, ...]
    #: Median of the per-query matching-entity count.
    query_size_median: float
    #: Shape of the per-query matching-entity count distribution.
    query_size_sigma: float
    #: Median review count of an entity in a reference-sized query.
    review_median: float
    #: Shape of the per-entity review-count distribution.
    review_sigma: float
    #: Query size at which the review median equals ``review_median``.
    reference_query_size: float
    #: Exponent of market-size dilution (see module docstring).
    dilution: float
    #: Hard cap matching the top of the paper's Figure 1(a) axis.
    review_cap: int = 4096
    #: Named query overrides: (zipcode, category) -> exact entity count,
    #: reproducing the example queries the paper calls out.
    query_overrides: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def n_queries(self) -> int:
        return len(MOST_POPULOUS_ZIPCODES) * len(self.categories)

    def query_size(self, rng: int | np.random.Generator, zipcode: str, category: str) -> int:
        """Number of entities matching one (zipcode, category) query."""
        override = self.query_overrides.get((zipcode, category))
        if override is not None:
            return override
        dist = DiscreteLogNormal(
            median=self.query_size_median, sigma=self.query_size_sigma, minimum=1
        )
        return int(dist.sample(make_rng(rng), 1)[0])

    def review_counts(self, rng: int | np.random.Generator, n_entities: int) -> np.ndarray:
        """Review counts for the ``n_entities`` matched by one query."""
        if n_entities < 1:
            raise ValueError("a query must match at least one entity")
        scaled_median = self.review_median * (
            self.reference_query_size / n_entities
        ) ** self.dilution
        dist = DiscreteLogNormal(
            median=max(scaled_median, 0.25),
            sigma=self.review_sigma,
            minimum=0,
            maximum=self.review_cap,
        )
        return dist.sample(make_rng(rng), n_entities)


def yelp_spec() -> ServiceSpec:
    """Yelp: 9 cuisines, 50 zipcodes, ~24.4k restaurants, review median 25."""
    return ServiceSpec(
        name="Yelp",
        categories=YELP_CATEGORIES,
        query_size_median=48.0,
        query_size_sigma=0.50,
        review_median=25.0,
        review_sigma=0.80,
        reference_query_size=61.6,
        dilution=1.0,
        query_overrides={("19120", "chinese"): 127},
    )


def angies_spec() -> ServiceSpec:
    """Angie's List: 24 categories, ~26.1k providers, review median 8."""
    return ServiceSpec(
        name="Angie's List",
        categories=ANGIES_CATEGORIES,
        query_size_median=14.5,
        query_size_sigma=0.90,
        review_median=8.0,
        review_sigma=1.90,
        reference_query_size=15.0,
        dilution=0.0,
    )


def healthgrades_spec() -> ServiceSpec:
    """Healthgrades: 4 specialities, ~24.9k doctors, review median 5."""
    return ServiceSpec(
        name="Healthgrades",
        categories=HEALTHGRADES_CATEGORIES,
        query_size_median=97.0,
        query_size_sigma=0.70,
        review_median=5.0,
        review_sigma=1.15,
        reference_query_size=158.6,
        dilution=-0.5,
        query_overrides={("11368", "dentist"): 248},
    )


def all_service_specs() -> tuple[ServiceSpec, ServiceSpec, ServiceSpec]:
    """The three services of Table 1, in the paper's order."""
    return yelp_spec(), angies_spec(), healthgrades_spec()
