"""Figure 1(c): explicit vs implicit interaction on Google Play and YouTube.

The paper randomly selected 1000 apps and 1000 videos and compared, for each
entity, the number of users who *explicitly* contributed feedback (reviews,
ratings, comments, likes) against the number who *implicitly* interacted
(installed the app, viewed the video), finding a gap of more than an order
of magnitude.

The substitute model derives the gap from the same mechanism the paper
blames — per-user posting propensity.  Each entity draws an implicit
interaction count from a heavy-tailed Pareto (installs and views span many
decades) and a per-entity feedback rate from a Beta distribution matching
the 1/9/90 participation rule's aggregate (a few percent of interactions
produce feedback); the explicit count is then binomial.  The
order-of-magnitude gap is therefore an output of the model, not an input
constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.distributions import ParetoCount
from repro.util.rng import make_rng


@dataclass(frozen=True)
class EngagementSpec:
    """Calibration of one implicit-interaction service (store or video site)."""

    name: str
    implicit_label: str  # "installs" or "views"
    explicit_label: str  # "reviews + ratings" or "comments + likes"
    n_entities: int
    implicit: ParetoCount
    #: Beta parameters of the per-entity feedback rate.
    feedback_alpha: float
    feedback_beta: float

    def mean_feedback_rate(self) -> float:
        return self.feedback_alpha / (self.feedback_alpha + self.feedback_beta)


def google_play_spec() -> EngagementSpec:
    """1000 Google Play apps: installs vs reviews/ratings/+1s."""
    return EngagementSpec(
        name="Google Play",
        implicit_label="installs",
        explicit_label="reviews + ratings",
        n_entities=1000,
        implicit=ParetoCount(minimum=1_000, alpha=0.75, maximum=1_000_000_000),
        feedback_alpha=2.0,
        feedback_beta=78.0,  # mean rate 2.5%
    )


def youtube_spec() -> EngagementSpec:
    """1000 YouTube videos: views vs comments/likes/favorites."""
    return EngagementSpec(
        name="YouTube",
        implicit_label="views",
        explicit_label="comments + likes",
        n_entities=1000,
        implicit=ParetoCount(minimum=2_000, alpha=0.65, maximum=5_000_000_000),
        feedback_alpha=1.5,
        feedback_beta=98.5,  # mean rate 1.5%
    )


@dataclass(frozen=True)
class EngagementDataset:
    """Per-entity implicit and explicit interaction counts for one service."""

    service: str
    implicit_label: str
    explicit_label: str
    implicit: np.ndarray
    explicit: np.ndarray

    def __post_init__(self) -> None:
        if self.implicit.shape != self.explicit.shape:
            raise ValueError("implicit and explicit arrays must align")

    @property
    def n_entities(self) -> int:
        return int(self.implicit.size)

    def median_implicit(self) -> float:
        return float(np.median(self.implicit))

    def median_explicit(self) -> float:
        return float(np.median(self.explicit))

    def median_gap(self) -> float:
        """Ratio of medians — the paper's "order of magnitude" discrepancy."""
        return self.median_implicit() / max(1.0, self.median_explicit())

    def per_entity_gaps(self) -> np.ndarray:
        """Implicit/explicit ratio per entity (explicit clamped to >= 1)."""
        return self.implicit / np.maximum(self.explicit, 1)


def measure_engagement(spec: EngagementSpec, seed: int = 0) -> EngagementDataset:
    """Sample the (implicit, explicit) counts of every entity."""
    rng = make_rng(seed, f"engagement/{spec.name}")
    implicit = spec.implicit.sample(rng, spec.n_entities)
    rates = rng.beta(spec.feedback_alpha, spec.feedback_beta, size=spec.n_entities)
    # Binomial sampling with very large n is exact but slow; the normal
    # approximation is indistinguishable at these scales.  Stay exact below
    # a million interactions, approximate above.
    explicit = np.empty(spec.n_entities, dtype=np.int64)
    small = implicit <= 1_000_000
    explicit[small] = rng.binomial(implicit[small], rates[small])
    big = ~small
    if np.any(big):
        means = implicit[big] * rates[big]
        stds = np.sqrt(implicit[big] * rates[big] * (1 - rates[big]))
        explicit[big] = np.maximum(0, np.rint(rng.normal(means, stds))).astype(np.int64)
    return EngagementDataset(
        service=spec.name,
        implicit_label=spec.implicit_label,
        explicit_label=spec.explicit_label,
        implicit=implicit,
        explicit=explicit,
    )
