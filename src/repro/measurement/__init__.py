"""The paper's Section 2 measurement study over a synthetic review ecosystem.

Generative service models calibrated to the paper's published statistics,
the crawler that queries them the way the authors queried the real
services, and the analyses that regenerate Table 1 and Figure 1.
"""

from repro.measurement.analysis import (
    ExampleQueryStat,
    Figure1a,
    Figure1b,
    Figure1c,
    Table1,
    Table1Row,
    example_query,
    figure1a,
    figure1b,
    figure1c,
    table1,
)
from repro.measurement.crawler import CrawlDataset, QueryResult, crawl_service
from repro.measurement.engagement import (
    EngagementDataset,
    EngagementSpec,
    google_play_spec,
    measure_engagement,
    youtube_spec,
)
from repro.measurement.participation import ParticipationReport, participation_report
from repro.measurement.services import (
    ANGIES_CATEGORIES,
    HEALTHGRADES_CATEGORIES,
    YELP_CATEGORIES,
    ServiceSpec,
    all_service_specs,
    angies_spec,
    healthgrades_spec,
    yelp_spec,
)
from repro.measurement.zipcodes import (
    MOST_POPULOUS_ZIPCODES,
    NEW_YORK,
    PHILADELPHIA,
    ZipCode,
    zipcode_by_code,
)

__all__ = [
    "ANGIES_CATEGORIES",
    "CrawlDataset",
    "EngagementDataset",
    "EngagementSpec",
    "ExampleQueryStat",
    "Figure1a",
    "Figure1b",
    "Figure1c",
    "HEALTHGRADES_CATEGORIES",
    "MOST_POPULOUS_ZIPCODES",
    "ParticipationReport",
    "participation_report",
    "NEW_YORK",
    "PHILADELPHIA",
    "QueryResult",
    "ServiceSpec",
    "Table1",
    "Table1Row",
    "YELP_CATEGORIES",
    "ZipCode",
    "all_service_specs",
    "angies_spec",
    "crawl_service",
    "example_query",
    "figure1a",
    "figure1b",
    "figure1c",
    "google_play_spec",
    "healthgrades_spec",
    "measure_engagement",
    "table1",
    "yelp_spec",
    "youtube_spec",
    "zipcode_by_code",
]
