"""Analyses of the crawl data: Table 1 and Figure 1, as code.

Each function consumes :class:`~repro.measurement.crawler.CrawlDataset` /
:class:`~repro.measurement.engagement.EngagementDataset` objects and returns
a small result dataclass with (a) the arrays a plotting library would need,
(b) the headline statistics the paper reports in prose, and (c) a
``render()`` method that prints the paper's figure as ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.measurement.crawler import CrawlDataset
from repro.measurement.engagement import EngagementDataset
from repro.util.ascii_plot import render_cdfs, render_table
from repro.util.stats import EmpiricalCDF


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: service, #categories, #entities."""

    service: str
    n_categories: int
    n_entities: int


@dataclass(frozen=True)
class Table1:
    """Table 1: summary of measurements."""

    rows: tuple[Table1Row, ...]

    def render(self) -> str:
        return render_table(
            ["Service", "# of Categories", "# of Entities"],
            [[row.service, row.n_categories, f"{row.n_entities:,}"] for row in self.rows],
        )


def table1(datasets: Sequence[CrawlDataset]) -> Table1:
    """Compute Table 1 from crawl datasets."""
    return Table1(
        rows=tuple(
            Table1Row(
                service=dataset.service,
                n_categories=dataset.n_categories,
                n_entities=dataset.n_entities,
            )
            for dataset in datasets
        )
    )


@dataclass(frozen=True)
class Figure1a:
    """Figure 1(a): distribution across entities of number of reviews."""

    cdfs: dict[str, EmpiricalCDF]

    def median(self, service: str) -> float:
        return self.cdfs[service].median

    def fraction_with_at_most(self, service: str, n_reviews: int) -> float:
        return self.cdfs[service].evaluate(n_reviews)

    def render(self) -> str:
        return render_cdfs(self.cdfs, x_label="No. of reviews")


def figure1a(datasets: Sequence[CrawlDataset]) -> Figure1a:
    """CDF of per-entity review counts for each service."""
    return Figure1a(
        cdfs={
            dataset.service: EmpiricalCDF.from_values(dataset.all_review_counts())
            for dataset in datasets
        }
    )


@dataclass(frozen=True)
class Figure1b:
    """Figure 1(b): per-query counts of entities with >= ``threshold`` reviews."""

    threshold: int
    cdfs: dict[str, EmpiricalCDF]

    def median(self, service: str) -> float:
        return self.cdfs[service].median

    def render(self) -> str:
        return render_cdfs(
            self.cdfs,
            x_label=f"No. of entities with at least {self.threshold} reviews",
        )


def figure1b(datasets: Sequence[CrawlDataset], threshold: int = 50) -> Figure1b:
    """Distribution across queries of well-reviewed result counts."""
    return Figure1b(
        threshold=threshold,
        cdfs={
            dataset.service: EmpiricalCDF.from_values(
                # The CDF axis starts at 1 in the paper; queries with zero
                # well-reviewed results still count (they sit at the left edge).
                dataset.per_query_counts_with_at_least(threshold)
            )
            for dataset in datasets
        },
    )


@dataclass(frozen=True)
class ExampleQueryStat:
    """A named example query the paper calls out in prose."""

    service: str
    zipcode: str
    category: str
    n_entities: int
    n_well_reviewed: int


def example_query(
    dataset: CrawlDataset, zipcode: str, category: str, threshold: int = 50
) -> ExampleQueryStat:
    """Reproduce one of the paper's named example queries."""
    query = dataset.query(zipcode, category)
    return ExampleQueryStat(
        service=dataset.service,
        zipcode=zipcode,
        category=category,
        n_entities=query.n_entities,
        n_well_reviewed=query.n_with_at_least(threshold),
    )


@dataclass(frozen=True)
class Figure1c:
    """Figure 1(c): explicit vs implicit interaction counts."""

    cdfs: dict[str, EmpiricalCDF]  # e.g. "Google Play installs" -> CDF
    median_gaps: dict[str, float]  # service -> implicit/explicit median ratio

    def render(self) -> str:
        return render_cdfs(self.cdfs, x_label="No. of users")


def figure1c(datasets: Sequence[EngagementDataset]) -> Figure1c:
    """Explicit-vs-implicit CDFs plus the headline median gaps."""
    cdfs: dict[str, EmpiricalCDF] = {}
    gaps: dict[str, float] = {}
    for dataset in datasets:
        cdfs[f"{dataset.service} {dataset.implicit_label}"] = EmpiricalCDF.from_values(
            dataset.implicit
        )
        cdfs[f"{dataset.service} {dataset.explicit_label}"] = EmpiricalCDF.from_values(
            np.maximum(dataset.explicit, 1)
        )
        gaps[dataset.service] = dataset.median_gap()
    return Figure1c(cdfs=cdfs, median_gaps=gaps)
