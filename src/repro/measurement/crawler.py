"""The measurement crawler: issue queries, collect review counts.

Mirrors the paper's methodology exactly: for each service, one query per
(most-populous-zipcode, category) pair, collecting the review count of every
matching entity.  The output :class:`CrawlDataset` is the object every
Section 2 analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measurement.services import ServiceSpec
from repro.measurement.zipcodes import MOST_POPULOUS_ZIPCODES, ZipCode
from repro.util.rng import derive_seed, make_rng


@dataclass(frozen=True)
class QueryResult:
    """The crawl result of one (zipcode, category) query."""

    service: str
    zipcode: str
    category: str
    review_counts: np.ndarray  # one entry per matching entity

    @property
    def n_entities(self) -> int:
        return int(self.review_counts.size)

    def n_with_at_least(self, threshold: int) -> int:
        """How many matched entities have >= ``threshold`` reviews —
        the Figure 1(b) statistic."""
        return int(np.count_nonzero(self.review_counts >= threshold))


@dataclass(frozen=True)
class CrawlDataset:
    """Everything crawled from one service."""

    service: str
    n_categories: int
    queries: tuple[QueryResult, ...]

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    @property
    def n_entities(self) -> int:
        """Total entities discovered across all queries (Table 1)."""
        return sum(query.n_entities for query in self.queries)

    def all_review_counts(self) -> np.ndarray:
        """Per-entity review counts pooled over all queries (Figure 1(a))."""
        return np.concatenate([query.review_counts for query in self.queries])

    def per_query_counts_with_at_least(self, threshold: int = 50) -> np.ndarray:
        """Per-query counts of entities with >= ``threshold`` reviews
        (Figure 1(b))."""
        return np.asarray(
            [query.n_with_at_least(threshold) for query in self.queries], dtype=np.int64
        )

    def query(self, zipcode: str, category: str) -> QueryResult:
        for result in self.queries:
            if result.zipcode == zipcode and result.category == category:
                return result
        raise KeyError(f"no query ({zipcode!r}, {category!r}) in {self.service} crawl")


def crawl_service(
    spec: ServiceSpec,
    seed: int = 0,
    zipcodes: tuple[ZipCode, ...] = MOST_POPULOUS_ZIPCODES,
) -> CrawlDataset:
    """Run the full measurement crawl against one service model."""
    queries: list[QueryResult] = []
    for zipcode in zipcodes:
        for category in spec.categories:
            query_seed = derive_seed(seed, f"{spec.name}/{zipcode.code}/{category}")
            size_rng = make_rng(query_seed, "size")
            review_rng = make_rng(query_seed, "reviews")
            n_entities = spec.query_size(size_rng, zipcode.code, category)
            counts = spec.review_counts(review_rng, n_entities)
            queries.append(
                QueryResult(
                    service=spec.name,
                    zipcode=zipcode.code,
                    category=category,
                    review_counts=counts,
                )
            )
    return CrawlDataset(
        service=spec.name, n_categories=len(spec.categories), queries=tuple(queries)
    )
