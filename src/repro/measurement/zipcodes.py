"""The query locations of the paper's measurement study.

Section 2: "we focus on locations where the number of reviews are likely to
be high by using the most populous zipcode in each of the 50 states".  The
paper names two of them explicitly — 19120 (Philadelphia, PA) and 11368
(Corona/New York, NY) — which we preserve exactly so the named example
queries of Figure 1(b) can be reproduced.  The remaining 48 are one
representative high-population zipcode per state; the study's statistics
depend only on there being 50 urban locations, not on which ones.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ZipCode:
    """One query location: a zipcode and the state it represents."""

    code: str
    state: str
    city: str


#: Philadelphia zipcode named in the paper's Yelp example (127 Chinese
#: restaurants, 4 with >= 50 reviews).
PHILADELPHIA = ZipCode("19120", "PA", "Philadelphia")

#: New York zipcode named in the paper's Healthgrades example (248 dentists,
#: 13 with >= 50 reviews).
NEW_YORK = ZipCode("11368", "NY", "New York")

#: One populous zipcode per US state, PA and NY matching the paper exactly.
MOST_POPULOUS_ZIPCODES: tuple[ZipCode, ...] = (
    ZipCode("35242", "AL", "Birmingham"),
    ZipCode("99504", "AK", "Anchorage"),
    ZipCode("85032", "AZ", "Phoenix"),
    ZipCode("72701", "AR", "Fayetteville"),
    ZipCode("90011", "CA", "Los Angeles"),
    ZipCode("80219", "CO", "Denver"),
    ZipCode("06010", "CT", "Bristol"),
    ZipCode("19720", "DE", "New Castle"),
    ZipCode("33311", "FL", "Fort Lauderdale"),
    ZipCode("30044", "GA", "Lawrenceville"),
    ZipCode("96817", "HI", "Honolulu"),
    ZipCode("83709", "ID", "Boise"),
    ZipCode("60629", "IL", "Chicago"),
    ZipCode("46227", "IN", "Indianapolis"),
    ZipCode("50317", "IA", "Des Moines"),
    ZipCode("67214", "KS", "Wichita"),
    ZipCode("40214", "KY", "Louisville"),
    ZipCode("70072", "LA", "Marrero"),
    ZipCode("04103", "ME", "Portland"),
    ZipCode("21215", "MD", "Baltimore"),
    ZipCode("02301", "MA", "Brockton"),
    ZipCode("48228", "MI", "Detroit"),
    ZipCode("55106", "MN", "Saint Paul"),
    ZipCode("39503", "MS", "Gulfport"),
    ZipCode("63116", "MO", "Saint Louis"),
    ZipCode("59801", "MT", "Missoula"),
    ZipCode("68107", "NE", "Omaha"),
    ZipCode("89110", "NV", "Las Vegas"),
    ZipCode("03103", "NH", "Manchester"),
    ZipCode("08701", "NJ", "Lakewood"),
    ZipCode("87121", "NM", "Albuquerque"),
    NEW_YORK,
    ZipCode("28269", "NC", "Charlotte"),
    ZipCode("58103", "ND", "Fargo"),
    ZipCode("43229", "OH", "Columbus"),
    ZipCode("73099", "OK", "Yukon"),
    ZipCode("97229", "OR", "Portland"),
    PHILADELPHIA,
    ZipCode("02907", "RI", "Providence"),
    ZipCode("29464", "SC", "Mount Pleasant"),
    ZipCode("57106", "SD", "Sioux Falls"),
    ZipCode("37013", "TN", "Antioch"),
    ZipCode("77084", "TX", "Houston"),
    ZipCode("84120", "UT", "West Valley City"),
    ZipCode("05401", "VT", "Burlington"),
    ZipCode("23464", "VA", "Virginia Beach"),
    ZipCode("98052", "WA", "Redmond"),
    ZipCode("25705", "WV", "Huntington"),
    ZipCode("53215", "WI", "Milwaukee"),
    ZipCode("82601", "WY", "Casper"),
)


def zipcode_by_code(code: str) -> ZipCode:
    """Look up one of the study zipcodes by its code."""
    for zipcode in MOST_POPULOUS_ZIPCODES:
        if zipcode.code == code:
            return zipcode
    raise KeyError(f"zipcode {code!r} is not part of the measurement study")
