"""Deterministic randomness plumbing.

Every stochastic component in the library takes either an integer seed or a
ready-made :class:`numpy.random.Generator`.  Components that need several
independent random streams derive child seeds with :func:`derive_seed`, which
mixes a parent seed with a string label through SHA-256.  Deriving by *label*
rather than by call order means adding a new consumer of randomness does not
perturb the streams of existing consumers — simulations stay comparable
across library versions.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator

import numpy as np

_SEED_MASK = (1 << 63) - 1


def derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``seed`` and a string ``label``.

    The derivation is a SHA-256 mix, so child streams are statistically
    independent of the parent and of each other for distinct labels.
    """
    payload = f"{seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


def make_rng(seed_or_rng: int | np.random.Generator, label: str | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts either an existing generator (returned unchanged, unless a
    ``label`` is given, in which case a fresh independent generator is split
    off) or an integer seed.  Passing a label with an integer seed derives a
    child seed first.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        if label is None:
            return seed_or_rng
        child = int(seed_or_rng.integers(0, _SEED_MASK))
        return np.random.default_rng(derive_seed(child, label))
    seed = int(seed_or_rng)
    if label is not None:
        seed = derive_seed(seed, label)
    return np.random.default_rng(seed)


def children(seed: int, label: str, count: int) -> Iterator[np.random.Generator]:
    """Yield ``count`` independent generators derived from ``seed``/``label``."""
    for index in range(count):
        yield make_rng(derive_seed(seed, f"{label}[{index}]"))
