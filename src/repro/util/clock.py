"""Simulated time.

All timestamps in the library are ``float`` seconds on a simulated timeline
starting at 0.  A shared :class:`SimClock` lets the client, the anonymity
network, and the attack harnesses observe a consistent notion of "now"
without any dependence on wall-clock time — which is what makes the timing
attacks of :mod:`repro.privacy.attacks` deterministic and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MINUTE: float = 60.0
HOUR: float = 60.0 * MINUTE
DAY: float = 24.0 * HOUR
WEEK: float = 7.0 * DAY
YEAR: float = 365.0 * DAY


@dataclass
class SimClock:
    """A monotonically advancing simulated clock."""

    _now: float = field(default=0.0)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute ``timestamp`` (must not be in the past)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now:.1f} to {timestamp:.1f}"
            )
        self._now = timestamp
        return self._now


def format_time(seconds: float) -> str:
    """Render a simulated timestamp as ``'Nd HH:MM'`` for logs and examples."""
    days = int(seconds // DAY)
    remainder = seconds - days * DAY
    hours = int(remainder // HOUR)
    minutes = int((remainder - hours * HOUR) // MINUTE)
    return f"{days}d {hours:02d}:{minutes:02d}"
