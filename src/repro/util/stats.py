"""Statistics helpers mirroring the analyses of the paper's Section 2.

Figure 1 plots cumulative fractions against log-scaled counts; Figure 3(b)
is a correlation claim.  :class:`EmpiricalCDF` is the single representation
used by the measurement pipeline, the benchmarks, and the ASCII plots, so
every reproduction of a paper figure flows through the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


def _as_array(values: Sequence[float] | np.ndarray) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError("expected a one-dimensional sequence")
    return array


def _effectively_constant(array: np.ndarray) -> bool:
    """True when the spread is rounding residue, not signal.

    ``np.std`` of identical floats can come out as a tiny nonzero value
    (mean round-off); correlating against that residue amplifies noise
    into a garbage coefficient, so anything within a few ulps of constant
    counts as constant.  The threshold is relative to the sample's own
    magnitude: tiny-but-genuine spread in denormal-scale data is signal,
    while rounding residue sits ~1e-16 of the magnitude, far below 1e-12.
    """
    scale = float(np.max(np.abs(array)))
    if scale == 0.0:
        return True
    # Divide *before* np.std: squared deviations of denormal-scale data
    # underflow to zero, which would misread genuine spread as constant.
    return float(np.std(array / scale)) <= 1e-12


def _standardized(array: np.ndarray) -> np.ndarray:
    """Center and rescale to O(1) without changing the correlation.

    Pearson is invariant under affine maps, but ``corrcoef`` on raw
    denormal-scale data underflows (squared deviations of ~1e-268 round
    to zero), silently zeroing a genuine correlation.  Dividing by the
    largest absolute deviation puts every product in comfortable range.
    """
    centered = array - float(np.mean(array))
    spread = float(np.max(np.abs(centered)))
    return centered / spread


@dataclass(frozen=True)
class EmpiricalCDF:
    """Empirical cumulative distribution of a sample.

    ``evaluate(x)`` returns the fraction of samples ``<= x`` — exactly the
    "cumulative fraction of entities" axis of Figure 1(a) and the
    "cumulative fraction of queries" axis of Figure 1(b).
    """

    sorted_values: np.ndarray

    @classmethod
    def from_values(cls, values: Sequence[float] | np.ndarray) -> "EmpiricalCDF":
        array = _as_array(values)
        if array.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        return cls(sorted_values=np.sort(array))

    @property
    def n(self) -> int:
        return int(self.sorted_values.size)

    def evaluate(self, x: float) -> float:
        """Fraction of samples less than or equal to ``x``."""
        return float(np.searchsorted(self.sorted_values, x, side="right")) / self.n

    def evaluate_many(self, xs: Sequence[float] | np.ndarray) -> np.ndarray:
        grid = _as_array(xs)
        ranks = np.searchsorted(self.sorted_values, grid, side="right")
        return ranks.astype(np.float64) / self.n

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1].

        Uses the inverted-CDF definition (smallest sample value ``x`` with
        ``F(x) >= q``) so that ``evaluate(quantile(q)) >= q`` always holds —
        the exact inverse of the empirical step function, not an
        interpolation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        return float(np.quantile(self.sorted_values, q, method="inverted_cdf"))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def series(self, grid: Sequence[float] | np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F(x))`` suitable for plotting.

        Without a grid, uses the distinct sample values (the exact empirical
        step function); with a grid (e.g. the powers of two on Figure 1's
        x-axis) evaluates at those points.
        """
        if grid is None:
            xs = np.unique(self.sorted_values)
        else:
            xs = _as_array(grid)
        return xs, self.evaluate_many(xs)

    def ks_distance(self, other: "EmpiricalCDF") -> float:
        """Kolmogorov–Smirnov distance between two empirical CDFs."""
        grid = np.union1d(self.sorted_values, other.sorted_values)
        return float(np.max(np.abs(self.evaluate_many(grid) - other.evaluate_many(grid))))


def median(values: Sequence[float] | np.ndarray) -> float:
    """Median of a sample (the statistic the paper reports most often)."""
    array = _as_array(values)
    if array.size == 0:
        raise ValueError("median of an empty sample is undefined")
    return float(np.median(array))


def percentile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """``q``-th percentile (``q`` in [0, 100])."""
    array = _as_array(values)
    if array.size == 0:
        raise ValueError("percentile of an empty sample is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must lie in [0, 100]")
    return float(np.percentile(array, q))


def pearson(xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate (constant) input.

    Figure 3(b)'s claim is that distance travelled correlates with visit
    count for a genuinely endorsed dentist; a constant series carries no
    signal so we define its correlation as zero rather than NaN.
    """
    x = _as_array(xs)
    y = _as_array(ys)
    if x.size != y.size:
        raise ValueError("samples must have equal length")
    if x.size < 2:
        return 0.0
    if _effectively_constant(x) or _effectively_constant(y):
        return 0.0
    return float(np.corrcoef(_standardized(x), _standardized(y))[0, 1])


def spearman(xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray) -> float:
    """Spearman rank correlation; 0.0 for degenerate input."""
    x = _as_array(xs)
    y = _as_array(ys)
    if x.size != y.size:
        raise ValueError("samples must have equal length")
    if x.size < 2:
        return 0.0
    rank_x = np.argsort(np.argsort(x)).astype(np.float64)
    rank_y = np.argsort(np.argsort(y)).astype(np.float64)
    return pearson(rank_x, rank_y)


def histogram_counts(
    values: Sequence[float] | np.ndarray,
    bin_edges: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Histogram counts over explicit bin edges (Figure 3(a) histograms)."""
    array = _as_array(values)
    edges = _as_array(bin_edges)
    if edges.size < 2:
        raise ValueError("need at least two bin edges")
    counts, _ = np.histogram(array, bins=edges)
    return counts


def gini(values: Sequence[float] | np.ndarray) -> float:
    """Gini coefficient of a non-negative sample.

    Used to quantify how concentrated review-writing is among users — the
    paper's "1/9/90 rule" citation implies extreme concentration (Gini
    close to 1) for explicit feedback.
    """
    array = _as_array(values)
    if array.size == 0:
        raise ValueError("gini of an empty sample is undefined")
    if np.any(array < 0):
        raise ValueError("gini requires non-negative values")
    total = array.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(array)
    n = sorted_values.size
    cumulative = np.cumsum(sorted_values)
    return float((n + 1 - 2 * (cumulative / total).sum()) / n)
