"""Terminal rendering of the paper's figures.

The examples and benchmark harnesses regenerate Figure 1 and Figure 3 as
text: CDFs on a log-2 x-axis (matching the paper's axes exactly) and
horizontal-bar histograms.  Keeping rendering here means the analysis code
returns plain arrays and stays testable.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.util.stats import EmpiricalCDF

_SERIES_MARKS = "*+xo#@"


def log2_grid(max_value: float, min_value: float = 1.0) -> np.ndarray:
    """Powers of two spanning [min_value, max_value] — Figure 1's x-axis."""
    if max_value < min_value:
        max_value = min_value
    lo = int(math.floor(math.log2(max(min_value, 1.0))))
    hi = int(math.ceil(math.log2(max(max_value, 1.0))))
    return np.power(2.0, np.arange(lo, hi + 1))


def render_cdfs(
    series: Mapping[str, EmpiricalCDF],
    x_label: str,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render several CDFs on a shared log-2 x-axis as ASCII art."""
    if not series:
        raise ValueError("nothing to plot")
    max_x = max(float(cdf.sorted_values[-1]) for cdf in series.values())
    grid = log2_grid(max_x)
    columns = np.interp(
        np.log2(grid),
        (np.log2(grid[0]), np.log2(grid[-1]) if grid.size > 1 else np.log2(grid[0]) + 1),
        (0, width - 1),
    ).astype(int)

    canvas = [[" "] * width for _ in range(height)]
    for series_index, (name, cdf) in enumerate(series.items()):
        mark = _SERIES_MARKS[series_index % len(_SERIES_MARKS)]
        fractions = cdf.evaluate_many(grid)
        for column, fraction in zip(columns, fractions):
            row = height - 1 - int(round(fraction * (height - 1)))
            canvas[row][column] = mark

    lines = []
    for row_index, row in enumerate(canvas):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    axis = "     +" + "-" * width
    ticks = "      " + "".join(
        str(int(grid[i])).ljust(max(1, width // max(1, grid.size)))
        for i in range(grid.size)
    )[:width]
    legend = "  ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]} {name}" for i, name in enumerate(series)
    )
    return "\n".join(lines + [axis, ticks, f"      x: {x_label} (log2)", f"      {legend}"])


def render_histogram(
    labels: Sequence[str],
    counts: Sequence[float],
    title: str,
    width: int = 48,
) -> str:
    """Render a labelled horizontal-bar histogram (Figure 3(a) style)."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must align")
    peak = max((float(c) for c in counts), default=0.0)
    lines = [title]
    for label, count in zip(labels, counts):
        bar_length = 0 if peak == 0 else int(round(width * float(count) / peak))
        lines.append(f"  {label:>12} | {'#' * bar_length} {count:g}")
    return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned table (Table 1 style)."""
    cells = [[str(h) for h in headers]] + [[str(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    rendered = []
    for row_index, row in enumerate(cells):
        rendered.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
        if row_index == 0:
            rendered.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(rendered)
