"""Heavy-tailed count distributions used throughout the synthetic ecosystem.

The paper's measurement study (Section 2) shows review counts, install
counts, and view counts that are heavy-tailed: most entities have a handful
of reviews while a few have thousands.  Two families cover every use in this
library:

* :class:`DiscreteLogNormal` — log-normal rounded to integers, the standard
  model for per-entity review counts (body heavy, tail sub-power-law).  Its
  median is ``exp(mu)``, which makes calibrating to the paper's published
  medians (8 / 5 / 25 reviews) a one-liner.
* :class:`ParetoCount` — discrete Pareto (power-law) counts for the extreme
  tails of implicit interactions (YouTube views span seven orders of
  magnitude).

Both are deliberately tiny wrappers with explicit parameters rather than
fitted black boxes, so benchmark calibrations are auditable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.util.rng import make_rng


@dataclass(frozen=True)
class DiscreteLogNormal:
    """Integer counts ``max(minimum, round(LogNormal(mu, sigma)))``.

    Parameters
    ----------
    median:
        Median of the underlying continuous log-normal (``exp(mu)``).
    sigma:
        Shape parameter of the log-normal; larger means heavier tail.
    minimum:
        Lower clamp, default 0 (an entity can have zero reviews).
    maximum:
        Optional upper clamp to keep synthetic tails within the axis range
        the paper plots (e.g. 1024 reviews in Figure 1(a)).
    """

    median: float
    sigma: float
    minimum: int = 0
    maximum: int | None = None

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError("median must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ValueError("maximum must be >= minimum")

    @property
    def mu(self) -> float:
        """Location parameter of the underlying normal."""
        return math.log(self.median)

    def sample(self, rng: int | np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` integer counts."""
        gen = make_rng(rng)
        values = gen.lognormal(mean=self.mu, sigma=self.sigma, size=size)
        counts = np.rint(values).astype(np.int64)
        counts = np.maximum(counts, self.minimum)
        if self.maximum is not None:
            counts = np.minimum(counts, self.maximum)
        return counts


@dataclass(frozen=True)
class ParetoCount:
    """Discrete Pareto counts ``floor(minimum * (1 - U)^(-1/alpha))``.

    Used for implicit-interaction counts (app installs, video views) whose
    tails are far heavier than review counts.  ``alpha`` near 1 gives the
    multi-order-of-magnitude spread visible in Figure 1(c).
    """

    minimum: int
    alpha: float
    maximum: int | None = None

    def __post_init__(self) -> None:
        if self.minimum < 1:
            raise ValueError("minimum must be >= 1")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ValueError("maximum must be >= minimum")

    def sample(self, rng: int | np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` integer counts."""
        gen = make_rng(rng)
        uniforms = gen.random(size)
        values = self.minimum * np.power(1.0 - uniforms, -1.0 / self.alpha)
        counts = np.floor(values).astype(np.int64)
        if self.maximum is not None:
            counts = np.minimum(counts, self.maximum)
        return counts


def bounded_zipf(rng: int | np.random.Generator, exponent: float, n_items: int, size: int) -> np.ndarray:
    """Sample ``size`` indices in ``[0, n_items)`` with Zipf popularity.

    Item 0 is the most popular.  Used for skewed entity popularity within a
    query result (a few restaurants get most of the visits) and for skewed
    category popularity.
    """
    if n_items < 1:
        raise ValueError("n_items must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    gen = make_rng(rng)
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    probabilities = weights / weights.sum()
    return gen.choice(n_items, size=size, p=probabilities)


def zipf_weights(exponent: float, n_items: int) -> np.ndarray:
    """Return normalized Zipf weights for ``n_items`` ranks."""
    if n_items < 1:
        raise ValueError("n_items must be >= 1")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def sample_categorical(
    rng: int | np.random.Generator,
    items: Sequence[object],
    weights: Sequence[float] | None = None,
):
    """Sample one item from ``items`` with optional unnormalized ``weights``."""
    if not items:
        raise ValueError("items must be non-empty")
    gen = make_rng(rng)
    if weights is None:
        index = int(gen.integers(0, len(items)))
        return items[index]
    probabilities = np.asarray(weights, dtype=np.float64)
    if probabilities.shape[0] != len(items):
        raise ValueError("weights must match items in length")
    total = probabilities.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    index = int(gen.choice(len(items), p=probabilities / total))
    return items[index]
