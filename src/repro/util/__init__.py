"""Shared infrastructure: seeded randomness, distributions, statistics, clock.

Everything stochastic in :mod:`repro` flows through :func:`repro.util.rng.make_rng`
so that simulations, tests, and benchmarks are exactly reproducible from a
single integer seed.
"""

from repro.util.clock import HOUR, MINUTE, SimClock, WEEK, DAY, YEAR, format_time
from repro.util.distributions import (
    DiscreteLogNormal,
    ParetoCount,
    bounded_zipf,
    sample_categorical,
)
from repro.util.hashing import record_id, stable_digest, stable_u64
from repro.util.rng import children, derive_seed, make_rng
from repro.util.stats import (
    EmpiricalCDF,
    gini,
    histogram_counts,
    median,
    pearson,
    percentile,
    spearman,
)

__all__ = [
    "DAY",
    "DiscreteLogNormal",
    "EmpiricalCDF",
    "HOUR",
    "MINUTE",
    "ParetoCount",
    "SimClock",
    "WEEK",
    "YEAR",
    "bounded_zipf",
    "children",
    "derive_seed",
    "format_time",
    "gini",
    "histogram_counts",
    "make_rng",
    "median",
    "pearson",
    "percentile",
    "record_id",
    "sample_categorical",
    "spearman",
    "stable_digest",
    "stable_u64",
]
