"""Stable hashing helpers.

Python's builtin ``hash`` is salted per process, so anything that must be
reproducible across runs — record identifiers, deterministic tie-breaking —
goes through SHA-256 here.  :func:`record_id` implements the paper's
``hash(Ru, e)`` construction (Section 4.2): the identifier under which a
user's interaction history with one entity is stored at the RSP's servers.
"""

from __future__ import annotations

import hashlib


def stable_digest(*parts: object) -> bytes:
    """SHA-256 digest of the ``repr`` of each part, joined unambiguously."""
    hasher = hashlib.sha256()
    for part in parts:
        encoded = repr(part).encode("utf-8")
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return hasher.digest()


def stable_u64(*parts: object) -> int:
    """A stable 64-bit unsigned integer derived from ``parts``."""
    return int.from_bytes(stable_digest(*parts)[:8], "big")


def record_id(user_secret: int, entity_id: str) -> str:
    """The paper's ``hash(Ru, e)`` record identifier.

    ``user_secret`` is the random number ``Ru`` the RSP's app picks at
    install time; ``entity_id`` identifies the entity.  The hex digest is
    what the app sends (anonymously) to the server.  Because SHA-256 is
    one-way and ``Ru`` is high-entropy, the server cannot link two record
    identifiers belonging to the same user, and cannot recover ``Ru`` or the
    entity from an identifier alone.
    """
    return stable_digest("record-id", user_secret, entity_id).hex()
