"""The RSP's smartphone app: the client half of Figure 2.

Orchestrates everything that happens on the device:

1. **Perceive** — resolve the raw sensor trace into observed user-entity
   interactions (all locally; raw location and call history never leave
   the phone).
2. **Remember, briefly** — keep only a recent snapshot locally, purging
   anything past the retention threshold (Section 4.2).
3. **Infer** — extract effort/exploration/choice-set features and run the
   opinion classifier, journaling every inference in the transparency log
   where the user can correct or suppress it (Section 5).
4. **Share, anonymously** — wrap interaction records and surviving
   inferred opinions in token-bearing envelopes and push them through the
   anonymity network on per-upload channels with random delays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import OpinionUpload
from repro.core.classifier import OpinionClassifier
from repro.core.features import extract_all_features
from repro.core.personalization import PersonalizationWeights, PersonalizedResult, personalize
from repro.client.snapshot import LocalSnapshot
from repro.client.transparency import InferenceEntry, InferenceStatus, TransparencyLog
from repro.durability import seal, unseal
from repro.privacy.anonymity import AnonymityNetwork
from repro.privacy.blindsig import BlindingResult
from repro.privacy.history_store import InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.tokens import (
    IssuerUnavailable,
    QuotaExceeded,
    TokenIssuer,
    TokenWallet,
    UploadToken,
)
from repro.privacy.uploads import (
    RetransmitPolicy,
    UploadConfig,
    UploadScheduler,
    hardened_config,
)
from repro.sensing.location import extract_stay_points
from repro.sensing.resolution import EntityResolver, ObservedInteraction
from repro.sensing.traces import DeviceTrace
from repro.core.protocol import AnonymousRecord, Envelope
from repro.telemetry import NULL, Telemetry
from repro.util.clock import DAY
from repro.util.rng import make_rng
from repro.world.entities import Entity
from repro.world.geography import Point

#: Sealed-checkpoint format tag (see docs/DURABILITY.md).
CHECKPOINT_FORMAT = "rsp-checkpoint/1"


def infer_home(trace: DeviceTrace) -> Point:
    """The client's own guess at the user's primary anchor.

    The location with the most total dwell time across the trace's stay
    points — no ground truth involved.
    """
    stays = extract_stay_points(trace.location_samples)
    if not stays:
        if trace.location_samples:
            return trace.location_samples[0].point
        return Point(0.0, 0.0)
    dwell: dict[tuple[int, int], tuple[float, Point]] = {}
    for stay in stays:
        key = (round(stay.center.x * 2), round(stay.center.y * 2))  # ~500 m cells
        total, _ = dwell.get(key, (0.0, stay.center))
        dwell[key] = (total + stay.duration, stay.center)
    return max(dwell.values(), key=lambda pair: pair[0])[1]


@dataclass
class ClientStats:
    """Counters for observability and the integration tests."""

    interactions_observed: int = 0
    inferences_made: int = 0
    inferences_abstained: int = 0
    envelopes_submitted: int = 0
    envelopes_deferred: int = 0
    snapshot_purged: int = 0
    #: Re-sends of already-submitted records (fresh envelope, same nonce).
    retransmissions: int = 0
    #: Token-issuance attempts that hit an issuer outage and backed off.
    issuer_retries: int = 0
    #: Issuance requests abandoned after exhausting the backoff schedule.
    issuer_failures: int = 0


@dataclass
class PendingRecord:
    """One record queued for (re-)upload.

    The ``nonce`` is fixed at staging time and reused by every attempt —
    it is the server's idempotency key.  Everything *around* the record
    (token, channel tag, delay) is fresh per attempt, so retries stay
    unlinkable.
    """

    record: AnonymousRecord
    base_time: float
    nonce: bytes
    attempts: int = 0
    last_attempt_time: float | None = None


class RSPClient:
    """One user's installation of the RSP app."""

    def __init__(
        self,
        device_id: str,
        catalog: list[Entity],
        classifier: OpinionClassifier,
        seed: int = 0,
        upload_config: UploadConfig | None = None,
        snapshot_retention: float = 30 * DAY,
        retransmit: RetransmitPolicy | None = None,
    ) -> None:
        self._seed = seed
        self.identity = DeviceIdentity.create(device_id, seed=seed)
        self.catalog = {entity.entity_id: entity for entity in catalog}
        self.classifier = classifier
        self.resolver = EntityResolver(catalog)
        self.scheduler = UploadScheduler(
            self.identity, upload_config or hardened_config(), seed=seed
        )
        self.wallet = TokenWallet(device_id=device_id, seed=seed)
        self.snapshot = LocalSnapshot(retention=snapshot_retention)
        self.transparency = TransparencyLog()
        self.stats = ClientStats()
        #: ``None`` sends each record exactly once (the seed behaviour);
        #: a policy enables bounded re-sending under the same nonce.
        self.retransmit = retransmit
        #: Aggregate-only observability sink shared with the deployment;
        #: see :meth:`attach_telemetry`.
        self.telemetry: Telemetry = NULL
        self._nonce_rng = make_rng(seed, f"client-nonce/{device_id}")
        self._interactions: list[ObservedInteraction] = []
        self._pending: list[PendingRecord] = []
        #: Interactions already staged for upload, so repeated observation
        #: windows (periodic syncs) never double-upload a record.
        self._staged_interactions: set[tuple[str, float]] = set()
        #: Last staged opinion per entity, so a re-inferred unchanged
        #: opinion is not re-uploaded every epoch.
        self._staged_opinions: dict[str, float] = {}
        #: Per-entity upload version for the opinion slot: bumped on each
        #: re-staged (changed) inference, carried as ``OpinionUpload.seq``
        #: so the server can order re-uploads without trusting arrival
        #: order (see docs/RELIABILITY.md).
        self._opinion_seqs: dict[str, int] = {}
        self._inferred_home: Point | None = None

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Share one deployment-wide sink with this client's components."""
        self.telemetry = telemetry
        self.scheduler.telemetry = telemetry
        self.wallet.telemetry = telemetry

    # ------------------------------------------------------------ perceive

    def observe_trace(
        self,
        trace: DeviceTrace,
        now: float,
        emotion: dict[str, float] | None = None,
    ) -> list[ObservedInteraction]:
        """Resolve a trace, update the snapshot, infer opinions.

        ``emotion`` optionally supplies per-entity wearable valence means
        (see :mod:`repro.sensing.wearables`).
        """
        interactions = self.resolver.resolve(trace)
        self._interactions = interactions
        self.stats.interactions_observed = len(interactions)
        self.snapshot.add_all(interactions)
        self.stats.snapshot_purged += self.snapshot.purge(now)

        home = infer_home(trace)
        self._inferred_home = home
        features = extract_all_features(interactions, self.catalog, home, emotion=emotion)
        for entity_id, feature_vector in features.items():
            opinion = self.classifier.predict(feature_vector)
            evidence = (
                f"{int(feature_vector.n_interactions)} interactions over "
                f"{feature_vector.span_days:.0f} days, "
                f"avg travel {feature_vector.mean_travel_km:.1f} km"
            )
            self.transparency.record(entity_id, now, opinion, evidence)
            if opinion.abstained:
                self.stats.inferences_abstained += 1
            else:
                self.stats.inferences_made += 1
        self._stage_envelopes(features)
        return interactions

    def _fresh_nonce(self) -> bytes:
        return bytes(self._nonce_rng.bytes(16))

    def _stage(self, record: AnonymousRecord, base_time: float) -> None:
        self._pending.append(
            PendingRecord(record=record, base_time=base_time, nonce=self._fresh_nonce())
        )

    def _stage_envelopes(self, features) -> None:
        by_entity: dict[str, list[ObservedInteraction]] = {}
        for interaction in self._interactions:
            by_entity.setdefault(interaction.entity_id, []).append(interaction)

        for entity_id, own in by_entity.items():
            entry = self.transparency._entries.get(entity_id)
            if entry is not None and entry.status is InferenceStatus.SUPPRESSED:
                continue  # the user forbade sharing anything about this entity
            for interaction in own:
                key = (interaction.entity_id, interaction.time)
                if key in self._staged_interactions:
                    continue
                self._staged_interactions.add(key)
                upload = self.scheduler.build_upload(interaction)
                self._stage(upload, interaction.time + interaction.duration)
            rating = entry.effective_rating if entry is not None else None
            if rating is not None and self._staged_opinions.get(entity_id) != rating:
                self._staged_opinions[entity_id] = rating
                seq = self._opinion_seqs.get(entity_id, -1) + 1
                self._opinion_seqs[entity_id] = seq
                last = max(i.time + i.duration for i in own)
                self._stage(
                    OpinionUpload(
                        history_id=self.identity.history_id(entity_id),
                        entity_id=entity_id,
                        rating=rating,
                        seq=seq,
                    ),
                    last,
                )

    # --------------------------------------------------------------- share

    #: Deterministic backoff offsets (seconds of simulated time) between
    #: token-issuance attempts when the issuer is down.
    ISSUANCE_BACKOFF: tuple[float, ...] = (300.0, 1800.0, 7200.0)

    def acquire_tokens(self, issuer: TokenIssuer, count: int, now: float) -> int:
        """Get up to ``count`` tokens, respecting the issuer's quota.

        Issuance is the one attributed, ack-bearing exchange in the
        protocol, so failures here are observable and retried: an
        :class:`IssuerUnavailable` outage backs off along
        :data:`ISSUANCE_BACKOFF` before giving up for this sync.  Either
        way a failed issuance rolls its blinded candidates back out of the
        wallet — leaving them pending would desynchronize the FIFO
        blinding/signature pairing and poison every later issuance.
        """
        allowed = min(count, issuer.remaining_quota(self.identity.device_id, now))
        if allowed <= 0:
            return 0
        blinded = self.wallet.mint(issuer.public_key, allowed)
        attempt_time = now
        for backoff in (0.0,) + self.ISSUANCE_BACKOFF:
            attempt_time += backoff
            try:
                signatures = issuer.issue(
                    self.identity.device_id, blinded, now=attempt_time
                )
            except QuotaExceeded:
                self.wallet.discard_pending(blinded)
                return 0
            except IssuerUnavailable:
                self.stats.issuer_retries += 1
                self.telemetry.inc("client.issuer.retries")
                continue
            self.wallet.accept_signatures(issuer.public_key, signatures)
            return allowed
        self.wallet.discard_pending(blinded)
        self.stats.issuer_failures += 1
        self.telemetry.inc("client.issuer.failures")
        return 0

    def _submit_pending(
        self, pending: PendingRecord, network: AnonymityNetwork, base_time: float
    ) -> None:
        stamped = Envelope(
            record=pending.record, token=self.wallet.spend(), nonce=pending.nonce
        )
        self.scheduler.submit_payload(stamped, base_time, network)
        pending.attempts += 1
        pending.last_attempt_time = base_time

    def sync(self, network: AnonymityNetwork, issuer: TokenIssuer, now: float) -> int:
        """Attach tokens to pending records and submit what quota allows.

        Records beyond today's token quota stay queued for the next sync —
        rate limiting throttles, it never drops.  First-time sends go out
        before retransmissions; with a :class:`RetransmitPolicy` installed,
        already-sent records are re-enveloped (same nonce, fresh token and
        channel tag, delay re-randomized from ``now``) until they hit
        ``max_attempts``, after which they leave the queue for good.
        """
        first_sends = [p for p in self._pending if p.attempts == 0]
        retry_candidates: list[PendingRecord] = []
        if self.retransmit is not None:
            retry_candidates = [
                p
                for p in self._pending
                if 0
                < p.attempts
                < self.retransmit.max_attempts
                and p.last_attempt_time is not None
                and now - p.last_attempt_time >= self.retransmit.min_interval
            ]
        needed = len(first_sends) + len(retry_candidates) - self.wallet.balance
        if needed > 0:
            self.acquire_tokens(issuer, needed, now)

        submitted = 0
        for pending in first_sends:
            if self.wallet.balance == 0:
                break
            self._submit_pending(pending, network, pending.base_time)
            submitted += 1
        for pending in retry_candidates:
            if self.wallet.balance == 0:
                break
            # Re-randomize the send time from *now*: the copy's timing must
            # correlate with this sync, not with the original interaction.
            self._submit_pending(pending, network, now)
            submitted += 1
            self.stats.retransmissions += 1
            self.telemetry.inc("client.retransmissions")

        max_attempts = 1 if self.retransmit is None else self.retransmit.max_attempts
        self._pending = [p for p in self._pending if p.attempts < max_attempts]
        self.stats.envelopes_submitted += submitted
        if submitted:
            self.telemetry.inc("client.envelopes.submitted", submitted)
        self.stats.envelopes_deferred = self.n_pending
        return submitted

    @property
    def n_pending(self) -> int:
        """Records never yet sent (awaiting their first submission)."""
        return sum(1 for p in self._pending if p.attempts == 0)

    @property
    def n_awaiting_retransmit(self) -> int:
        """Sent records still queued for possible re-sending."""
        return sum(1 for p in self._pending if p.attempts > 0)

    # ----------------------------------------------------------- durability

    def checkpoint(self) -> dict:
        """Serialize everything a crash must not lose, JSON-compatibly.

        Covered: the device identity secret, the pending upload queue
        (records, nonces, attempt counts), the token wallet (spendable
        tokens, in-flight blindings, mint counter), the scheduler and nonce
        RNG streams, the staged-work dedup sets, user transparency
        overrides, and the stats counters.  Deliberately *not* covered:
        resolved interactions, the local snapshot, and model inferences —
        those are rederived from the next ``observe_trace``, and the staged
        sets guarantee rederivation never re-uploads anything.

        The result is sealed through the same canonical serializer the
        server's snapshots use (:func:`repro.durability.seal`), so a
        checkpoint that rots on flash storage is *rejected* at restore
        with a digest mismatch instead of silently restoring garbage.
        """
        return seal(self._checkpoint_state(), CHECKPOINT_FORMAT)

    def _checkpoint_state(self) -> dict:
        return {
            "device_id": self.identity.device_id,
            "seed": self._seed,
            "identity_secret": self.identity.secret,
            "scheduler_rng": self.scheduler.rng_state(),
            "nonce_rng": self._nonce_rng.bit_generator.state,
            "wallet": {
                "minted": self.wallet._minted,
                "tokens": [
                    {"token_id": t.token_id.hex(), "signature": t.signature}
                    for t in self.wallet._tokens
                ],
                "pending_blindings": [
                    {
                        "message": b.message.hex(),
                        "blinded": b.blinded,
                        "unblinder": b.unblinder,
                    }
                    for b in self.wallet._pending
                ],
            },
            "pending": [
                {
                    "kind": "interaction"
                    if isinstance(p.record, InteractionUpload)
                    else "opinion",
                    "record": {
                        field: getattr(p.record, field)
                        for field in p.record.__dataclass_fields__
                    },
                    "base_time": p.base_time,
                    "nonce": p.nonce.hex(),
                    "attempts": p.attempts,
                    "last_attempt_time": p.last_attempt_time,
                }
                for p in self._pending
            ],
            "staged_interactions": sorted(self._staged_interactions),
            "staged_opinions": dict(self._staged_opinions),
            "opinion_seqs": dict(self._opinion_seqs),
            "overrides": [
                {
                    "entity_id": entry.entity_id,
                    "time": entry.time,
                    "status": entry.status.value,
                    "corrected_rating": entry.corrected_rating,
                }
                for entry in self.transparency._entries.values()
                if entry.status is not InferenceStatus.ACTIVE
            ],
            "stats": {
                field: getattr(self.stats, field)
                for field in self.stats.__dataclass_fields__
            },
        }

    @classmethod
    def restore(
        cls,
        state: dict,
        catalog: list[Entity],
        classifier: OpinionClassifier,
        upload_config: UploadConfig | None = None,
        snapshot_retention: float = 30 * DAY,
        retransmit: RetransmitPolicy | None = None,
    ) -> "RSPClient":
        """Rebuild a client from a :meth:`checkpoint` after a crash.

        Catalog, classifier, and policies are code/configuration, not
        state — the restored install supplies them exactly as a reinstalled
        app ships its own binaries.  Sealed checkpoints are verified first:
        a corrupted blob raises
        :class:`~repro.durability.CorruptStateError` naming the digest
        mismatch rather than failing mid-restore on a decode error.
        Pre-sealing (flat-dict) checkpoints restore unchanged.
        """
        if "digest" in state and "state" in state:
            state = unseal(state, CHECKPOINT_FORMAT)
        client = cls(
            device_id=state["device_id"],
            catalog=catalog,
            classifier=classifier,
            seed=state.get("seed", 0),
            upload_config=upload_config,
            snapshot_retention=snapshot_retention,
            retransmit=retransmit,
        )
        client.identity = DeviceIdentity(
            device_id=state["device_id"], secret=state["identity_secret"]
        )
        client.scheduler.identity = client.identity
        client.scheduler.restore_rng_state(state["scheduler_rng"])
        client._nonce_rng.bit_generator.state = state["nonce_rng"]
        client.wallet._minted = state["wallet"]["minted"]
        client.wallet._tokens = [
            UploadToken(token_id=bytes.fromhex(t["token_id"]), signature=t["signature"])
            for t in state["wallet"]["tokens"]
        ]
        client.wallet._pending = [
            BlindingResult(
                message=bytes.fromhex(b["message"]),
                blinded=b["blinded"],
                unblinder=b["unblinder"],
            )
            for b in state["wallet"]["pending_blindings"]
        ]
        for item in state["pending"]:
            record_cls = (
                InteractionUpload if item["kind"] == "interaction" else OpinionUpload
            )
            client._pending.append(
                PendingRecord(
                    record=record_cls(**item["record"]),
                    base_time=item["base_time"],
                    nonce=bytes.fromhex(item["nonce"]),
                    attempts=item["attempts"],
                    last_attempt_time=item["last_attempt_time"],
                )
            )
        client._staged_interactions = {
            (entity_id, time) for entity_id, time in state["staged_interactions"]
        }
        client._staged_opinions = dict(state["staged_opinions"])
        # Older checkpoints predate per-slot versioning; seq resumes at 0,
        # which is safe because the server tie-breaks toward the record it
        # already holds and only a *changed* rating is ever re-staged.
        client._opinion_seqs = dict(state.get("opinion_seqs", {}))
        for item in state["overrides"]:
            # A non-ACTIVE entry carries the user's decision; the model
            # opinion is refreshed by the next observe_trace.
            client.transparency._entries[item["entity_id"]] = InferenceEntry(
                entity_id=item["entity_id"],
                time=item["time"],
                model_opinion=None,
                evidence="(restored from checkpoint)",
                status=InferenceStatus(item["status"]),
                corrected_rating=item["corrected_rating"],
            )
        for field, value in state["stats"].items():
            setattr(client.stats, field, value)
        return client

    # ------------------------------------------------------- personalization

    def personalize_response(
        self, response, weights: PersonalizationWeights | None = None
    ) -> list[PersonalizedResult]:
        """Re-rank a server search response against this user's own log.

        The Section 5 install incentive, computed entirely on the device:
        the user's inferred (or corrected) opinions and their inferred home
        anchor adjust the server's anonymous ranking.  Requires a prior
        ``observe_trace`` (to know the home anchor).
        """
        home = self._inferred_home if self._inferred_home is not None else Point(0.0, 0.0)
        return personalize(response, self.transparency, home, weights)
