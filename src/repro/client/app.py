"""The RSP's smartphone app: the client half of Figure 2.

Orchestrates everything that happens on the device:

1. **Perceive** — resolve the raw sensor trace into observed user-entity
   interactions (all locally; raw location and call history never leave
   the phone).
2. **Remember, briefly** — keep only a recent snapshot locally, purging
   anything past the retention threshold (Section 4.2).
3. **Infer** — extract effort/exploration/choice-set features and run the
   opinion classifier, journaling every inference in the transparency log
   where the user can correct or suppress it (Section 5).
4. **Share, anonymously** — wrap interaction records and surviving
   inferred opinions in token-bearing envelopes and push them through the
   anonymity network on per-upload channels with random delays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import OpinionUpload
from repro.core.classifier import OpinionClassifier
from repro.core.features import extract_all_features
from repro.core.personalization import PersonalizationWeights, PersonalizedResult, personalize
from repro.client.snapshot import LocalSnapshot
from repro.client.transparency import InferenceStatus, TransparencyLog
from repro.privacy.anonymity import AnonymityNetwork
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.tokens import QuotaExceeded, TokenIssuer, TokenWallet
from repro.privacy.uploads import UploadConfig, UploadScheduler, hardened_config
from repro.sensing.location import extract_stay_points
from repro.sensing.resolution import EntityResolver, ObservedInteraction
from repro.sensing.traces import DeviceTrace
from repro.core.protocol import Envelope
from repro.util.clock import DAY
from repro.world.entities import Entity
from repro.world.geography import Point


def infer_home(trace: DeviceTrace) -> Point:
    """The client's own guess at the user's primary anchor.

    The location with the most total dwell time across the trace's stay
    points — no ground truth involved.
    """
    stays = extract_stay_points(trace.location_samples)
    if not stays:
        if trace.location_samples:
            return trace.location_samples[0].point
        return Point(0.0, 0.0)
    dwell: dict[tuple[int, int], tuple[float, Point]] = {}
    for stay in stays:
        key = (round(stay.center.x * 2), round(stay.center.y * 2))  # ~500 m cells
        total, _ = dwell.get(key, (0.0, stay.center))
        dwell[key] = (total + stay.duration, stay.center)
    return max(dwell.values(), key=lambda pair: pair[0])[1]


@dataclass
class ClientStats:
    """Counters for observability and the integration tests."""

    interactions_observed: int = 0
    inferences_made: int = 0
    inferences_abstained: int = 0
    envelopes_submitted: int = 0
    envelopes_deferred: int = 0
    snapshot_purged: int = 0


class RSPClient:
    """One user's installation of the RSP app."""

    def __init__(
        self,
        device_id: str,
        catalog: list[Entity],
        classifier: OpinionClassifier,
        seed: int = 0,
        upload_config: UploadConfig | None = None,
        snapshot_retention: float = 30 * DAY,
    ) -> None:
        self.identity = DeviceIdentity.create(device_id, seed=seed)
        self.catalog = {entity.entity_id: entity for entity in catalog}
        self.classifier = classifier
        self.resolver = EntityResolver(catalog)
        self.scheduler = UploadScheduler(
            self.identity, upload_config or hardened_config(), seed=seed
        )
        self.wallet = TokenWallet(device_id=device_id, seed=seed)
        self.snapshot = LocalSnapshot(retention=snapshot_retention)
        self.transparency = TransparencyLog()
        self.stats = ClientStats()
        self._interactions: list[ObservedInteraction] = []
        self._pending: list[tuple[Envelope, float]] = []  # (envelope, base_time)
        #: Interactions already staged for upload, so repeated observation
        #: windows (periodic syncs) never double-upload a record.
        self._staged_interactions: set[tuple[str, float]] = set()
        #: Last staged opinion per entity, so a re-inferred unchanged
        #: opinion is not re-uploaded every epoch.
        self._staged_opinions: dict[str, float] = {}
        self._inferred_home: Point | None = None

    # ------------------------------------------------------------ perceive

    def observe_trace(
        self,
        trace: DeviceTrace,
        now: float,
        emotion: dict[str, float] | None = None,
    ) -> list[ObservedInteraction]:
        """Resolve a trace, update the snapshot, infer opinions.

        ``emotion`` optionally supplies per-entity wearable valence means
        (see :mod:`repro.sensing.wearables`).
        """
        interactions = self.resolver.resolve(trace)
        self._interactions = interactions
        self.stats.interactions_observed = len(interactions)
        self.snapshot.add_all(interactions)
        self.stats.snapshot_purged += self.snapshot.purge(now)

        home = infer_home(trace)
        self._inferred_home = home
        features = extract_all_features(interactions, self.catalog, home, emotion=emotion)
        for entity_id, feature_vector in features.items():
            opinion = self.classifier.predict(feature_vector)
            evidence = (
                f"{int(feature_vector.n_interactions)} interactions over "
                f"{feature_vector.span_days:.0f} days, "
                f"avg travel {feature_vector.mean_travel_km:.1f} km"
            )
            self.transparency.record(entity_id, now, opinion, evidence)
            if opinion.abstained:
                self.stats.inferences_abstained += 1
            else:
                self.stats.inferences_made += 1
        self._stage_envelopes(features)
        return interactions

    def _stage_envelopes(self, features) -> None:
        by_entity: dict[str, list[ObservedInteraction]] = {}
        for interaction in self._interactions:
            by_entity.setdefault(interaction.entity_id, []).append(interaction)

        for entity_id, own in by_entity.items():
            entry = self.transparency._entries.get(entity_id)
            if entry is not None and entry.status is InferenceStatus.SUPPRESSED:
                continue  # the user forbade sharing anything about this entity
            for interaction in own:
                key = (interaction.entity_id, interaction.time)
                if key in self._staged_interactions:
                    continue
                self._staged_interactions.add(key)
                upload = self.scheduler.build_upload(interaction)
                self._pending.append(
                    (
                        Envelope(record=upload, token=None),
                        interaction.time + interaction.duration,
                    )
                )
            rating = entry.effective_rating if entry is not None else None
            if rating is not None and self._staged_opinions.get(entity_id) != rating:
                self._staged_opinions[entity_id] = rating
                last = max(i.time + i.duration for i in own)
                self._pending.append(
                    (
                        Envelope(
                            record=OpinionUpload(
                                history_id=self.identity.history_id(entity_id),
                                entity_id=entity_id,
                                rating=rating,
                            ),
                            token=None,
                        ),
                        last,
                    )
                )

    # --------------------------------------------------------------- share

    def acquire_tokens(self, issuer: TokenIssuer, count: int, now: float) -> int:
        """Get up to ``count`` tokens, respecting the issuer's quota."""
        allowed = min(count, issuer.remaining_quota(self.identity.device_id, now))
        if allowed <= 0:
            return 0
        blinded = self.wallet.mint(issuer.public_key, allowed)
        try:
            signatures = issuer.issue(self.identity.device_id, blinded, now=now)
        except QuotaExceeded:
            return 0
        self.wallet.accept_signatures(issuer.public_key, signatures)
        return allowed

    def sync(self, network: AnonymityNetwork, issuer: TokenIssuer, now: float) -> int:
        """Attach tokens to pending envelopes and submit what quota allows.

        Envelopes beyond today's token quota stay queued for the next sync
        — rate limiting throttles, it never drops.
        """
        needed = len(self._pending) - self.wallet.balance
        if needed > 0:
            self.acquire_tokens(issuer, needed, now)
        submitted = 0
        still_pending: list[tuple[Envelope, float]] = []
        for envelope, base_time in self._pending:
            if self.wallet.balance == 0:
                still_pending.append((envelope, base_time))
                continue
            stamped = Envelope(record=envelope.record, token=self.wallet.spend())
            self.scheduler.submit_payload(stamped, base_time, network)
            submitted += 1
        self._pending = still_pending
        self.stats.envelopes_submitted += submitted
        self.stats.envelopes_deferred = len(still_pending)
        return submitted

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------- personalization

    def personalize_response(
        self, response, weights: PersonalizationWeights | None = None
    ) -> list[PersonalizedResult]:
        """Re-rank a server search response against this user's own log.

        The Section 5 install incentive, computed entirely on the device:
        the user's inferred (or corrected) opinions and their inferred home
        anchor adjust the server's anonymous ranking.  Requires a prior
        ``observe_trace`` (to know the home anchor).
        """
        home = self._inferred_home if self._inferred_home is not None else Point(0.0, 0.0)
        return personalize(response, self.transparency, home, weights)
