"""OS-enforced privacy: the trust model of Section 5, simulated.

"It would be ideal if the mechanisms that protect user anonymity are
implemented in the smartphone OS, so as to make it infeasible for an RSP's
client to compromise user privacy."

The broker models that OS support as taint tracking around sensor access:

* apps never receive raw sensor streams — they receive :class:`Tainted`
  handles whose contents are only reachable inside
  :meth:`OSPrivacyBroker.process`, the OS-supervised sandbox;
* whatever a sandboxed processor returns is scanned: raw sensor types
  (location fixes, call-log rows, payment rows) may not escape;
* all network egress goes through :meth:`OSPrivacyBroker.egress`, which
  re-scans the payload and raises :class:`EgressViolation` on any attempt
  to ship raw data — and journals the attempt for the user to see.

The honest client pipeline (resolve → features → uploads) passes these
checks untouched; a malicious client build that tries to exfiltrate raw
location history is blocked *by the OS*, not by its own good manners —
which is exactly the guarantee the paper wants the platform to provide.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Generic, TypeVar

from repro.sensing.traces import CallRecord, DeviceTrace, LocationSample, PaymentRecord

T = TypeVar("T")
R = TypeVar("R")

#: Types that must never leave the device raw.
_SENSITIVE_TYPES = (LocationSample, CallRecord, PaymentRecord, DeviceTrace)


class EgressViolation(Exception):
    """The OS blocked an attempt to ship raw sensor data off the device."""


@dataclass
class Tainted(Generic[T]):
    """An opaque handle to raw sensor data.

    The payload is name-mangled rather than cryptographically sealed —
    this is a simulation of an OS boundary, and the library's own code
    honours it; the enforcement that matters (egress scanning) catches the
    contents regardless of how they were obtained.
    """

    _payload: T

    def __repr__(self) -> str:  # never leak contents into logs
        return f"Tainted<{type(self._payload).__name__}>"


def contains_sensitive(value: Any, _depth: int = 0) -> bool:
    """Recursively detect raw sensor data inside ``value``."""
    if _depth > 12:
        return False
    if isinstance(value, Tainted):
        return True
    if isinstance(value, _SENSITIVE_TYPES):
        return True
    if isinstance(value, dict):
        return any(
            contains_sensitive(k, _depth + 1) or contains_sensitive(v, _depth + 1)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return any(contains_sensitive(item, _depth + 1) for item in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return any(
            contains_sensitive(getattr(value, f.name), _depth + 1)
            for f in dataclasses.fields(value)
        )
    return False


@dataclass
class AuditEvent:
    """One entry in the OS's user-visible privacy journal."""

    time: float
    app_id: str
    action: str  # "sensor_read" | "process" | "egress" | "egress_blocked"
    detail: str


class OSPrivacyBroker:
    """The OS privacy layer one device runs."""

    def __init__(self, app_id: str) -> None:
        self.app_id = app_id
        self.audit_log: list[AuditEvent] = []
        self.blocked_egress_attempts = 0

    # ------------------------------------------------------- sensor access

    def read_sensors(self, trace: DeviceTrace, now: float = 0.0) -> Tainted[DeviceTrace]:
        """Grant the app its (tainted) view of the sensor streams."""
        self.audit_log.append(
            AuditEvent(
                time=now,
                app_id=self.app_id,
                action="sensor_read",
                detail=(
                    f"{trace.n_gps_fixes} location fixes, "
                    f"{len(trace.call_records)} call-log rows, "
                    f"{len(trace.payment_records)} payment rows"
                ),
            )
        )
        return Tainted(trace)

    # ------------------------------------------------------------ sandbox

    def process(
        self,
        tainted: Tainted[T],
        processor: Callable[[T], R],
        now: float = 0.0,
        label: str = "processor",
    ) -> R:
        """Run a processor over raw data inside the OS sandbox.

        The processor sees the raw payload; its *return value* is scanned —
        raw sensor types may not flow out of the sandbox, only derived
        records (observed interactions, features, uploads).
        """
        result = processor(tainted._payload)
        if contains_sensitive(result):
            raise EgressViolation(
                f"sandboxed {label} tried to return raw sensor data"
            )
        self.audit_log.append(
            AuditEvent(time=now, app_id=self.app_id, action="process", detail=label)
        )
        return result

    # ------------------------------------------------------------- egress

    def egress(self, payload: Any, now: float = 0.0, destination: str = "rsp") -> Any:
        """Scan and release one outbound payload.

        Raises :class:`EgressViolation` (and journals the attempt) if the
        payload contains raw sensor data, tainted handles, or anything
        derived carelessly enough to embed them.
        """
        if contains_sensitive(payload):
            self.blocked_egress_attempts += 1
            self.audit_log.append(
                AuditEvent(
                    time=now,
                    app_id=self.app_id,
                    action="egress_blocked",
                    detail=f"raw sensor data bound for {destination}",
                )
            )
            raise EgressViolation(
                f"app {self.app_id} attempted to exfiltrate raw sensor data"
            )
        self.audit_log.append(
            AuditEvent(
                time=now,
                app_id=self.app_id,
                action="egress",
                detail=f"{type(payload).__name__} -> {destination}",
            )
        )
        return payload
