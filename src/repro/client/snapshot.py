"""The device-local recent-history snapshot (Section 4.2).

"The solution is for any RSP to store only a recent snapshot of any user's
inferred interactions on her device and store the rest of the user's
long-term history at the RSP's servers.  When a user's device is stolen or
compromised, only the user's recent interactions are leaked."

The snapshot keeps per-entity interaction lists and purges entries older
than a configurable threshold; :meth:`leak` is what an attacker with the
physical device obtains, used by the tests to verify the exposure bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sensing.resolution import ObservedInteraction
from repro.util.clock import DAY


@dataclass
class LocalSnapshot:
    """Recent observed interactions, bounded by a retention threshold.

    ``add`` is idempotent on (entity, start time): periodic re-observation
    of overlapping windows — how a long-running client actually works —
    must not duplicate entries.
    """

    retention: float = 30 * DAY
    _by_entity: dict[str, list[ObservedInteraction]] = field(default_factory=dict)
    _seen: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.retention <= 0:
            raise ValueError("retention must be positive")

    def add(self, interaction: ObservedInteraction) -> None:
        key = (interaction.entity_id, interaction.time)
        if key in self._seen:
            return
        self._seen.add(key)
        self._by_entity.setdefault(interaction.entity_id, []).append(interaction)

    def add_all(self, interactions: list[ObservedInteraction]) -> None:
        for interaction in interactions:
            self.add(interaction)

    def purge(self, now: float) -> int:
        """Drop interactions older than the retention threshold.

        Returns how many entries were purged; empty entity buckets vanish
        entirely (their very existence would leak the relationship).
        """
        cutoff = now - self.retention
        purged = 0
        for entity_id in list(self._by_entity):
            kept = [i for i in self._by_entity[entity_id] if i.time >= cutoff]
            purged += len(self._by_entity[entity_id]) - len(kept)
            if kept:
                self._by_entity[entity_id] = kept
            else:
                del self._by_entity[entity_id]
        return purged

    def recent(self, entity_id: str) -> list[ObservedInteraction]:
        return list(self._by_entity.get(entity_id, []))

    def entity_ids(self) -> list[str]:
        return list(self._by_entity)

    @property
    def n_interactions(self) -> int:
        return sum(len(v) for v in self._by_entity.values())

    def leak(self) -> dict[str, list[ObservedInteraction]]:
        """What a device thief obtains: exactly the current snapshot."""
        return {entity_id: list(items) for entity_id, items in self._by_entity.items()}
