"""The transparency dashboard (Section 5).

"An RSP must ensure that any user of its app has visibility into the
inferences the app has made about the user's activities ... and enable
users to correct inaccurate inferences."  Every inference the client makes
is journaled with the evidence behind it; the user can override a rating or
suppress an entity entirely, and overrides win over model output in
everything the client subsequently uploads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.classifier import InferredOpinion


class InferenceStatus(enum.Enum):
    ACTIVE = "active"
    CORRECTED = "corrected"  # user supplied their real opinion
    SUPPRESSED = "suppressed"  # user forbade sharing anything about this entity


@dataclass
class InferenceEntry:
    """One journaled inference about one entity."""

    entity_id: str
    time: float
    model_opinion: InferredOpinion
    evidence: str  # human-readable basis, e.g. "4 visits, avg 3.2 km traveled"
    status: InferenceStatus = InferenceStatus.ACTIVE
    corrected_rating: float | None = None

    @property
    def effective_rating(self) -> float | None:
        """What the client is allowed to share: correction > model > nothing."""
        if self.status is InferenceStatus.SUPPRESSED:
            return None
        if self.status is InferenceStatus.CORRECTED:
            return self.corrected_rating
        return self.model_opinion.rating


@dataclass
class TransparencyLog:
    """The user-visible journal of everything inferred about them."""

    _entries: dict[str, InferenceEntry] = field(default_factory=dict)

    def record(
        self,
        entity_id: str,
        time: float,
        opinion: InferredOpinion,
        evidence: str,
    ) -> InferenceEntry:
        """Journal a (new or refreshed) inference, preserving user overrides."""
        existing = self._entries.get(entity_id)
        if existing is not None and existing.status is not InferenceStatus.ACTIVE:
            existing.model_opinion = opinion
            existing.evidence = evidence
            existing.time = time
            return existing
        entry = InferenceEntry(
            entity_id=entity_id, time=time, model_opinion=opinion, evidence=evidence
        )
        self._entries[entity_id] = entry
        return entry

    def correct(self, entity_id: str, rating: float) -> None:
        """The user states their actual opinion; it overrides the model."""
        if not 0.0 <= rating <= 5.0:
            raise ValueError("rating must lie in [0, 5]")
        entry = self._entries.get(entity_id)
        if entry is None:
            raise KeyError(f"no inference recorded for {entity_id!r}")
        entry.status = InferenceStatus.CORRECTED
        entry.corrected_rating = rating

    def suppress(self, entity_id: str) -> None:
        """The user forbids sharing anything about this entity."""
        entry = self._entries.get(entity_id)
        if entry is None:
            raise KeyError(f"no inference recorded for {entity_id!r}")
        entry.status = InferenceStatus.SUPPRESSED
        entry.corrected_rating = None

    def entry(self, entity_id: str) -> InferenceEntry:
        return self._entries[entity_id]

    def audit(self) -> list[InferenceEntry]:
        """Everything the app has inferred, for user review."""
        return sorted(self._entries.values(), key=lambda e: e.entity_id)

    @property
    def n_entries(self) -> int:
        return len(self._entries)
