"""The RSP's smartphone app: perception, inference, transparency, sharing."""

from repro.client.app import ClientStats, PendingRecord, RSPClient, infer_home
from repro.client.os_broker import (
    AuditEvent,
    EgressViolation,
    OSPrivacyBroker,
    Tainted,
    contains_sensitive,
)
from repro.client.snapshot import LocalSnapshot
from repro.client.transparency import (
    InferenceEntry,
    InferenceStatus,
    TransparencyLog,
)

__all__ = [
    "AuditEvent",
    "ClientStats",
    "EgressViolation",
    "OSPrivacyBroker",
    "Tainted",
    "contains_sensitive",
    "InferenceEntry",
    "InferenceStatus",
    "LocalSnapshot",
    "PendingRecord",
    "RSPClient",
    "TransparencyLog",
    "infer_home",
]
