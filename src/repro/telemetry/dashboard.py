"""The ``repro telemetry`` terminal dashboard.

Renders one :class:`~repro.telemetry.api.Telemetry` export with the same
:mod:`repro.util.ascii_plot` building blocks the paper figures use:
aligned tables for counters and gauges, horizontal-bar histograms per
distribution, and a span summary grouped by name.  Purely a rendering
layer — everything it prints comes from :meth:`Telemetry.export`.
"""

from __future__ import annotations

from repro.telemetry.api import Telemetry
from repro.telemetry.labels import format_labels
from repro.telemetry.registry import SUM_SCALE
from repro.util.ascii_plot import render_histogram, render_table
from repro.util.clock import format_time


def _metric_label(row: dict) -> str:
    labels = tuple(sorted(row["labels"].items()))
    suffix = "" if row["scope"] == "aggregate" else f"  [{row['scope']}]"
    return f"{row['name']}{format_labels(labels)}{suffix}"


def _bucket_labels(bounds: list[float]) -> list[str]:
    labels = [f"<= {bound:g}" for bound in bounds]
    labels.append(f"> {bounds[-1]:g}")
    return labels


def render_dashboard(telemetry: Telemetry, scope: str | None = None) -> str:
    """Render the full dashboard for one telemetry export."""
    export = telemetry.export(scope)
    metrics = export["metrics"]
    sections: list[str] = []

    counters = [row for row in metrics if row["kind"] == "counter"]
    if counters:
        sections.append(
            "== counters ==\n"
            + render_table(
                ["counter", "value"],
                [[_metric_label(row), row["value"]] for row in counters],
            )
        )

    gauges = [row for row in metrics if row["kind"] == "gauge"]
    if gauges:
        sections.append(
            "== gauges ==\n"
            + render_table(
                ["gauge", "value"],
                [[_metric_label(row), f"{row['value']:g}"] for row in gauges],
            )
        )

    histograms = [row for row in metrics if row["kind"] == "histogram"]
    for row in histograms:
        mean = row["sum_scaled"] / SUM_SCALE / row["count"] if row["count"] else 0.0
        title = (
            f"{_metric_label(row)}  "
            f"(n={row['count']}, mean={mean:g}, "
            f"min={row['min']:g}, max={row['max']:g})"
            if row["count"]
            else f"{_metric_label(row)}  (empty)"
        )
        sections.append(
            render_histogram(_bucket_labels(row["bounds"]), row["bucket_counts"], title)
        )

    spans = export["spans"]
    if spans:
        by_name: dict[str, list[dict]] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        rows = []
        for name in sorted(by_name):
            group = by_name[name]
            total = sum(s["end"] - s["start"] for s in group)
            rows.append(
                [
                    name,
                    len(group),
                    format_time(min(s["start"] for s in group)),
                    format_time(max(s["end"] for s in group)),
                    format_time(total),
                ]
            )
        sections.append(
            "== spans ==\n"
            + render_table(["span", "n", "first", "last", "total"], rows)
        )

    if not sections:
        return "(no telemetry recorded)"
    return "\n\n".join(sections)
