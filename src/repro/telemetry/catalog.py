"""Histogram bucket shapes shared by every instrumentation site.

A histogram's buckets are fixed at first use, and the monolithic and
sharded servers must declare *identical* shapes for the same metric name
or their exports could never be byte-identical — so the shapes live
here, once.  The full metric catalog (names, kinds, labels, scopes) is
documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.util.clock import DAY, HOUR

#: ``rsp.intake.batch`` — envelopes handed to ``receive_all`` per call.
INTAKE_BATCH_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500)

#: ``rsp.ingest_lag`` — accepted interaction's arrival minus its
#: (quantized) event time, in simulated seconds.
INGEST_LAG_BUCKETS: tuple[float, ...] = (HOUR, 6 * HOUR, DAY, 2 * DAY, 4 * DAY, 7 * DAY)

#: ``mix.batch_size`` — messages released per mix batch flush.
MIX_BATCH_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200)

#: ``client.upload_delay`` — random submit delay per upload, seconds.
UPLOAD_DELAY_BUCKETS: tuple[float, ...] = (HOUR, 3 * HOUR, 6 * HOUR, 12 * HOUR, DAY)

#: ``rsp.shard.batch`` — per-shard group size within one intake batch.
SHARD_BATCH_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100)

#: ``rsp.pool.chunk`` — task tuples per worker chunk in the pool.
POOL_CHUNK_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16)

#: ``rsp.maintenance.dirty_set`` — entities re-judged per maintenance
#: cycle (the tracked dirty set after profile-digest re-dirtying).
DIRTY_SET_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

#: ``replica.batch`` — WAL records applied per log-shipping batch.
REPLICA_BATCH_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500)

#: ``rsp.ingest.drain`` — envelopes handed to the server per bounded-queue
#: drain; wider than ``rsp.intake.batch`` because the queue exists exactly
#: to absorb bursts far larger than one mix flush.
INGEST_DRAIN_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)

#: ``rsp.serve.results`` — ranked matches per query before the limit cut.
SERVE_RESULT_BUCKETS: tuple[float, ...] = (0, 1, 2, 5, 10, 20, 50, 100)

#: ``rsp.serve.latency`` — wall-clock seconds per query (deployment scope:
#: real timings are never part of the byte-identity contract).
SERVE_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1,
)

#: ``rsp.reshard.moved`` — state items migrated per split/merge (the sum
#: of the per-kind moved counts; deployment scope — a static deployment
#: reshards zero times, so nothing here may enter the aggregate digest).
RESHARD_MOVED_BUCKETS: tuple[float, ...] = (1, 5, 10, 50, 100, 500, 1000, 5000)

#: ``rsp.reshard.load`` — per-shard history counts observed by the
#: autoscaler when it evaluates a deployment (deployment scope).
RESHARD_LOAD_BUCKETS: tuple[float, ...] = (1, 5, 10, 50, 100, 500, 1000, 5000)
