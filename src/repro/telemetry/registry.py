"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

Three design rules make the registry a mergeable CRDT-like value whose
export is a pure function of *what happened*, never of interleaving:

1. **Integer arithmetic only.**  Counters and histogram bucket counts are
   plain ints; histogram sums are fixed-point integers (milli-units, see
   :data:`SUM_SCALE`).  Integer addition is associative and commutative,
   so folding per-shard registries in any order — or accumulating
   observations in any order — lands on the same bits.  Float
   accumulation would not: the monolithic server ingests in delivery
   order while the sharded server ingests grouped per shard, and a float
   running sum distinguishes the two.
2. **Closed merge semantics.**  ``merge(a, b)`` is defined per
   instrument: counters add, histograms add bucket-wise (requiring equal
   bucket bounds), and gauges take the lexicographic max of their
   ``(version, value)`` pair — last-writer-wins with a deterministic
   tiebreak, matching how :mod:`repro.scale.merge` folds shard results.
   ``merge(a, identity) == a`` and the operation is commutative and
   associative (``tests/telemetry/test_merge_properties.py``).
3. **Canonical order everywhere.**  Metric keys are
   ``(name, sorted-label-tuple)``; snapshots and exports sort by that
   key, so the JSON rendering is byte-stable.

Every metric name carries a :class:`Scope`: ``AGGREGATE`` metrics are
deployment-invariant (identical for any shard/worker count — these are
what the golden snapshot pins), while ``DEPLOYMENT`` metrics describe
one concrete deployment (per-shard batch sizes, pool fallbacks) and are
excluded from the invariant digest.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from collections.abc import Iterable, Mapping

import numpy as np

from repro.telemetry.labels import canonical_labels

#: Fixed-point scale for histogram sums: milli-units.  ``round`` to the
#: nearest integer is deterministic and order-independent per observation.
SUM_SCALE = 1000

#: Deployment-invariant: identical across shard/worker counts.
AGGREGATE = "aggregate"
#: Describes one concrete deployment; excluded from the invariant digest.
DEPLOYMENT = "deployment"

_SCOPES = frozenset({AGGREGATE, DEPLOYMENT})

#: Default histogram bucket upper bounds (generic small-count shape).
DEFAULT_BUCKETS: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0)

LabelTuple = tuple[tuple[str, str], ...]


class MetricError(ValueError):
    """A metric was used inconsistently with its declaration."""


class Counter:
    """A monotone integer counter."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if not isinstance(n, int) or isinstance(n, bool):
            raise MetricError("counters are integer-only; observe() floats instead")
        if n < 0:
            raise MetricError("counters are monotone; cannot add a negative amount")
        self.value += n

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-writer-wins value with a deterministic merge.

    Each ``set`` bumps the version; merging two gauges keeps the
    lexicographically larger ``(version, value)`` pair, so folding any
    permutation of registries yields the same winner.
    """

    kind = "gauge"
    __slots__ = ("version", "value")

    def __init__(self) -> None:
        self.version = 0
        self.value = 0.0

    def set(self, value: float) -> None:
        self.version += 1
        self.value = float(value)

    def merge_from(self, other: "Gauge") -> None:
        if (other.version, other.value) > (self.version, self.value):
            self.version = other.version
            self.value = other.value

    def snapshot(self) -> dict:
        return {"version": self.version, "value": self.value}


class Histogram:
    """A fixed-bucket histogram with an exact fixed-point sum.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  The sum is kept in milli-units
    (``SUM_SCALE``) so it is an integer — order-independent under both
    observation and merge.  Min/max use float comparison, which is also
    order-independent.
    """

    kind = "histogram"
    __slots__ = ("bounds", "bucket_counts", "count", "sum_scaled", "min", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError("histogram bounds must be non-empty and strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum_scaled = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum_scaled += round(value * SUM_SCALE)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def observe_many(self, values) -> None:
        """Fold a whole column of observations in one call.

        Byte-identical to observing each value in turn: ``searchsorted``
        with ``side="left"`` lands each value in the same bucket as
        ``bisect_left``, and ``np.rint`` rounds half-to-even exactly like
        the builtin ``round`` — so the batched intake path of
        :mod:`repro.ingest` produces the same export as per-record intake.
        """
        column = np.asarray(values, dtype=np.float64)
        if column.size == 0:
            return
        per_bucket = np.bincount(
            np.searchsorted(np.asarray(self.bounds), column, side="left"),
            minlength=len(self.bucket_counts),
        )
        counts = self.bucket_counts
        for index, n in enumerate(per_bucket):
            if n:
                counts[index] += int(n)
        self.count += int(column.size)
        self.sum_scaled += int(np.rint(column * SUM_SCALE).astype(np.int64).sum())
        low = float(column.min())
        high = float(column.max())
        self.min = low if self.min is None else min(self.min, low)
        self.max = high if self.max is None else max(self.max, high)

    @property
    def sum(self) -> float:
        return self.sum_scaled / SUM_SCALE

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge_from(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise MetricError("cannot merge histograms with different bucket bounds")
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.sum_scaled += other.sum_scaled
        for value in (other.min, other.max):
            if value is None:
                continue
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum_scaled": self.sum_scaled,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """All instruments of one process/shard, keyed by (name, labels)."""

    def __init__(self) -> None:
        #: name → (kind, scope, histogram bounds or None); a name's
        #: declaration is fixed at first use and enforced forever after.
        self._meta: dict[str, tuple[str, str, tuple[float, ...] | None]] = {}
        self._instruments: dict[tuple[str, LabelTuple], Counter | Gauge | Histogram] = {}
        #: Hot-path cache keyed by the *raw* call shape.  A call site that
        #: repeats (same name/kind/scope/label kwargs/buckets) skips the
        #: declaration checks and label canonicalization — both ran, and
        #: passed, the first time the exact shape was seen.  Values alias
        #: entries of ``_instruments``, which merge_from mutates in place,
        #: so the cache never goes stale.
        self._fast: dict[tuple, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------ recording

    def inc(self, name: str, n: int = 1, scope: str = AGGREGATE, **labels: object) -> None:
        key = (name, "counter", scope, tuple(labels.items()))
        instrument = self._fast.get(key)
        if instrument is None:
            instrument = self._instrument(name, "counter", scope, labels, None)
            self._fast[key] = instrument
        instrument.inc(n)

    def set_gauge(
        self, name: str, value: float, scope: str = AGGREGATE, **labels: object
    ) -> None:
        key = (name, "gauge", scope, tuple(labels.items()))
        instrument = self._fast.get(key)
        if instrument is None:
            instrument = self._instrument(name, "gauge", scope, labels, None)
            self._fast[key] = instrument
        instrument.set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Iterable[float] | None = None,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> None:
        key = (
            name, "histogram", scope, tuple(labels.items()),
            tuple(buckets) if buckets is not None else None,
        )
        instrument = self._fast.get(key)
        if instrument is None:
            bounds = tuple(float(b) for b in buckets) if buckets is not None else None
            instrument = self._instrument(name, "histogram", scope, labels, bounds)
            self._fast[key] = instrument
        instrument.observe(value)

    def observe_many(
        self,
        name: str,
        values,
        buckets: Iterable[float] | None = None,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> None:
        """Record a column of observations against one histogram.

        Export-identical to calling :meth:`observe` per value (histogram
        state is commutative integer arithmetic); the instrument lookup
        and label canonicalization are paid once per column instead of
        once per value, which is what the batched intake front end
        (:mod:`repro.ingest.columnar`) amortizes.

        An empty column is a no-op that declares nothing: per-record
        intake never touches an instrument it has no value for, so the
        batched path must not conjure a zero-count histogram row either.
        """
        if len(values) == 0:
            return
        key = (
            name, "histogram", scope, tuple(labels.items()),
            tuple(buckets) if buckets is not None else None,
        )
        instrument = self._fast.get(key)
        if instrument is None:
            bounds = tuple(float(b) for b in buckets) if buckets is not None else None
            instrument = self._instrument(name, "histogram", scope, labels, bounds)
            self._fast[key] = instrument
        instrument.observe_many(values)

    def _instrument(
        self,
        name: str,
        kind: str,
        scope: str,
        labels: Mapping[str, object],
        bounds: tuple[float, ...] | None,
    ):
        if scope not in _SCOPES:
            raise MetricError(f"unknown scope {scope!r}; use AGGREGATE or DEPLOYMENT")
        meta = self._meta.get(name)
        if meta is None:
            if kind == "histogram" and bounds is None:
                bounds = DEFAULT_BUCKETS
            self._meta[name] = (kind, scope, bounds)
        else:
            known_kind, known_scope, known_bounds = meta
            if known_kind != kind:
                raise MetricError(f"metric {name!r} is a {known_kind}, not a {kind}")
            if known_scope != scope:
                raise MetricError(
                    f"metric {name!r} was declared {known_scope}-scope; "
                    f"cannot re-declare it {scope}-scope"
                )
            if bounds is not None and bounds != known_bounds:
                raise MetricError(f"metric {name!r} has fixed buckets {known_bounds}")
            bounds = known_bounds
        key = (name, canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            if kind == "counter":
                instrument = Counter()
            elif kind == "gauge":
                instrument = Gauge()
            else:
                instrument = Histogram(bounds or DEFAULT_BUCKETS)
            self._instruments[key] = instrument
        return instrument

    # -------------------------------------------------------------- reading

    def total(self, name: str) -> int:
        """Sum of one counter across all of its label sets (0 if unused)."""
        meta = self._meta.get(name)
        if meta is None:
            return 0
        if meta[0] != "counter":
            raise MetricError(f"total() is for counters; {name!r} is a {meta[0]}")
        return sum(
            instrument.value
            for (metric_name, _), instrument in self._instruments.items()
            if metric_name == name
        )

    def value(self, name: str, **labels: object) -> object:
        """One instrument's scalar value (counter/gauge) or snapshot (histogram)."""
        instrument = self._instruments.get((name, canonical_labels(labels)))
        if instrument is None:
            return None
        if isinstance(instrument, (Counter, Gauge)):
            return instrument.value
        return instrument.snapshot()

    def snapshot(self, scope: str | None = None) -> list[dict]:
        """Canonical sorted rendering of every instrument (optionally one scope)."""
        rows = []
        for (name, labels), instrument in sorted(self._instruments.items()):
            kind, metric_scope, _ = self._meta[name]
            if scope is not None and metric_scope != scope:
                continue
            rows.append(
                {
                    "name": name,
                    "kind": kind,
                    "scope": metric_scope,
                    "labels": dict(labels),
                    **instrument.snapshot(),
                }
            )
        return rows

    # -------------------------------------------------------------- merging

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (commutative, associative)."""
        for name, (kind, scope, bounds) in other._meta.items():
            meta = self._meta.get(name)
            if meta is None:
                self._meta[name] = (kind, scope, bounds)
            elif meta != (kind, scope, bounds):
                raise MetricError(f"conflicting declarations for metric {name!r}")
        for key, instrument in other._instruments.items():
            mine = self._instruments.get(key)
            if mine is None:
                name = key[0]
                kind, _, bounds = self._meta[name]
                if kind == "counter":
                    mine = Counter()
                elif kind == "gauge":
                    mine = Gauge()
                else:
                    mine = Histogram(bounds or DEFAULT_BUCKETS)
                self._instruments[key] = mine
            mine.merge_from(instrument)

    def merged(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """A fresh registry equal to folding self and ``others`` together."""
        result = MetricsRegistry()
        for registry in (self, *others):
            result.merge_from(registry)
        return result

    # ------------------------------------------------------------- exports

    def export_json(self, scope: str | None = None, indent: int | None = None) -> str:
        return json.dumps(
            self.snapshot(scope),
            sort_keys=True,
            indent=indent,
            separators=(",", ": ") if indent else (",", ":"),
        )

    def digest(self, scope: str | None = None) -> str:
        return hashlib.sha256(self.export_json(scope).encode()).hexdigest()
