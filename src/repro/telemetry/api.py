"""The telemetry facade components actually hold.

Every instrumented component keeps a ``telemetry`` attribute that
defaults to :data:`NULL` — a no-op :class:`NullTelemetry` — so the hot
paths pay one attribute lookup and one no-op call when observability is
off (``benchmarks/test_bench_telemetry.py`` pins the enabled overhead
on the maintenance cycle below 5% and reports the measured per-event
cost of intake recording).  The experiment harness
(:mod:`repro.orchestration.epochs`)
creates one real :class:`Telemetry` and installs it on the network, the
server, the issuer, the injector, and every client, so one export
describes the whole deployment.

The facade is a mergeable value: ``merged()``/``merge_from()`` fold
registries and timelines with the commutative/associative semantics of
:mod:`repro.telemetry.registry`, mirroring how :mod:`repro.scale.merge`
folds shard results.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable

from repro.telemetry.registry import AGGREGATE, MetricsRegistry
from repro.telemetry.spans import Span, SpanTimeline


class Telemetry:
    """A metrics registry and a span timeline behind one surface."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanTimeline()

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------ recording

    def inc(self, name: str, n: int = 1, scope: str = AGGREGATE, **labels: object) -> None:
        self.metrics.inc(name, n, scope=scope, **labels)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Iterable[float] | None = None,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> None:
        self.metrics.observe(name, value, buckets=buckets, scope=scope, **labels)

    def observe_many(
        self,
        name: str,
        values,
        buckets: Iterable[float] | None = None,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> None:
        """Record a whole column against one histogram — export-identical
        to observing each value in turn (see
        :meth:`repro.telemetry.registry.MetricsRegistry.observe_many`)."""
        self.metrics.observe_many(name, values, buckets=buckets, scope=scope, **labels)

    def set_gauge(
        self, name: str, value: float, scope: str = AGGREGATE, **labels: object
    ) -> None:
        self.metrics.set_gauge(name, value, scope=scope, **labels)

    def span(
        self,
        name: str,
        start: float,
        end: float,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> Span | None:
        return self.spans.record(name, start, end, scope=scope, **labels)

    # -------------------------------------------------------------- reading

    def total(self, name: str) -> int:
        return self.metrics.total(name)

    def value(self, name: str, **labels: object) -> object:
        return self.metrics.value(name, **labels)

    # -------------------------------------------------------------- merging

    def merge_from(self, other: "Telemetry") -> None:
        self.metrics.merge_from(other.metrics)
        self.spans.merge_from(other.spans)

    def merged(self, *others: "Telemetry") -> "Telemetry":
        result = Telemetry()
        for telemetry in (self, *others):
            result.merge_from(telemetry)
        return result

    # ------------------------------------------------------------- exports

    def export(self, scope: str | None = None) -> dict:
        """The canonical export payload (sorted, scope-filtered)."""
        return {
            "metrics": self.metrics.snapshot(scope),
            "spans": self.spans.snapshot(scope),
        }

    def export_json(self, scope: str | None = None, indent: int | None = None) -> str:
        return json.dumps(
            self.export(scope),
            sort_keys=True,
            indent=indent,
            separators=(",", ": ") if indent else (",", ":"),
        )

    def digest(self, scope: str | None = None) -> str:
        """SHA-256 of the canonical compact export — the golden-pin value."""
        return hashlib.sha256(self.export_json(scope).encode()).hexdigest()


class NullTelemetry(Telemetry):
    """The default no-op sink: every recording call returns immediately.

    A single shared instance (:data:`NULL`) is safe because no recording
    method ever mutates it.
    """

    @property
    def enabled(self) -> bool:
        return False

    def inc(self, name: str, n: int = 1, scope: str = AGGREGATE, **labels: object) -> None:
        return None

    def observe(
        self,
        name: str,
        value: float,
        buckets: Iterable[float] | None = None,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> None:
        return None

    def observe_many(
        self,
        name: str,
        values,
        buckets: Iterable[float] | None = None,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> None:
        return None

    def set_gauge(
        self, name: str, value: float, scope: str = AGGREGATE, **labels: object
    ) -> None:
        return None

    def span(
        self,
        name: str,
        start: float,
        end: float,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> Span | None:
        return None

    def merge_from(self, other: Telemetry) -> None:
        raise TypeError("NullTelemetry is a shared sink; it cannot accumulate state")


#: The shared no-op sink every component points at until a harness
#: installs a real :class:`Telemetry`.
NULL = NullTelemetry()
