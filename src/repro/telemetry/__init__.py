"""Deterministic, privacy-safe observability for the RSP simulation.

The paper's service must run always-on yet can never log who did what —
observability has to be aggregate-only and unlinkable (Sections 4–5).
This package provides the substrate:

* :mod:`repro.telemetry.registry` — counters, gauges, and fixed-bucket
  histograms with commutative/associative merge semantics and integer
  arithmetic, so exports are byte-identical across shard/worker counts;
* :mod:`repro.telemetry.spans` — trace spans on the *simulated* clock;
* :mod:`repro.telemetry.labels` — the closed aggregate-label vocabulary
  (entity categories, shard ids, epoch numbers — never identities);
* :mod:`repro.telemetry.api` — the :class:`Telemetry` facade components
  hold (defaulting to the no-op :data:`NULL` sink);
* :mod:`repro.telemetry.dashboard` — the ``repro telemetry`` CLI view.

See ``docs/OBSERVABILITY.md`` for the metric catalog and the
label-privacy argument.
"""

from repro.telemetry.api import NULL, NullTelemetry, Telemetry
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.labels import (
    ALLOWED_LABEL_KEYS,
    LabelPolicyError,
    canonical_labels,
    format_labels,
    validate_label,
)
from repro.telemetry.registry import (
    AGGREGATE,
    DEPLOYMENT,
    SUM_SCALE,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.telemetry.spans import Span, SpanTimeline

__all__ = [
    "AGGREGATE",
    "ALLOWED_LABEL_KEYS",
    "DEPLOYMENT",
    "NULL",
    "SUM_SCALE",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelPolicyError",
    "MetricError",
    "MetricsRegistry",
    "NullTelemetry",
    "Span",
    "SpanTimeline",
    "Telemetry",
    "canonical_labels",
    "format_labels",
    "render_dashboard",
    "validate_label",
]
