"""Label policy: what a metric or span is allowed to say.

The paper's RSP can never log who did what — observability must be
aggregate-only and unlinkable (Section 4.2, Section 5).  This module is
the runtime half of that guarantee (the static half is the
``priv-telemetry-label`` rule in :mod:`repro.lint.rules_privacy`): every
label attached to a counter, gauge, histogram, or span passes through
:func:`canonical_labels`, which rejects

* label *keys* outside a closed vocabulary of aggregate dimensions
  (entity categories, shard indices, epoch numbers, coarse reasons) —
  a ``user_id=`` or ``history_id=`` label cannot even be spelled;
* label *values* that look like identifiers rather than categories: long
  values, values with characters outside a category alphabet, and any
  value containing a 16+-digit hex run (the shape of ``hash(Ru, e)``
  record keys, envelope nonces, and channel tags).

Values that pass are canonicalized to strings and sorted by key, so the
same labels always produce the same metric key — a precondition for the
byte-identical exports pinned by ``tests/telemetry``.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

#: The closed vocabulary of label keys.  Everything here names an
#: aggregate dimension; nothing here can name a user, device, history,
#: nonce, or channel.
ALLOWED_LABEL_KEYS: frozenset[str] = frozenset(
    {
        "entity_kind",  # category of entity ("restaurant", "dentist", ...)
        "record",       # record kind ("interaction" | "opinion")
        "reason",       # coarse rejection/refusal reason
        "shard",        # shard index (deployment scope)
        "epoch",        # epoch number
        "kind",         # injected-fault kind, span kind, ...
        "phase",        # maintenance phase
        "outcome",      # coarse outcome category
        "mode",         # deployment/config mode
    }
)

#: Longest value a label may carry; identifiers are longer, categories are not.
MAX_VALUE_LENGTH = 24

_VALUE_PATTERN = re.compile(r"^[a-z0-9][a-z0-9_.:\-]*$")
#: The shape of hex-encoded identifiers: hash(Ru, e) keys, nonces, tags.
_HEX_RUN = re.compile(r"[0-9a-f]{16}")


class LabelPolicyError(ValueError):
    """A label key or value violated the aggregate-only policy."""


def validate_label(key: str, value: object) -> str:
    """Check one label pair; returns the canonical string value."""
    if key not in ALLOWED_LABEL_KEYS:
        raise LabelPolicyError(
            f"label key {key!r} is not in the aggregate-label vocabulary "
            f"{sorted(ALLOWED_LABEL_KEYS)}; telemetry may never carry "
            "identities, record keys, or free-form dimensions"
        )
    if isinstance(value, bool) or not isinstance(value, (str, int)):
        raise LabelPolicyError(
            f"label {key!r} carries a {type(value).__name__}; only short "
            "category strings and small integers are allowed"
        )
    text = str(value)
    if len(text) > MAX_VALUE_LENGTH:
        raise LabelPolicyError(
            f"label {key}={text!r} exceeds {MAX_VALUE_LENGTH} characters; "
            "values that long are identifiers, not categories"
        )
    if isinstance(value, str) and not _VALUE_PATTERN.fullmatch(text):
        raise LabelPolicyError(
            f"label {key}={text!r} is not a lowercase category token"
        )
    if _HEX_RUN.search(text):
        raise LabelPolicyError(
            f"label {key}={text!r} contains a 16+-char hex run — the shape "
            "of hash(Ru, e) keys, nonces, and channel tags; unlinkability "
            "forbids them in telemetry"
        )
    return text


def canonical_labels(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    """Validate and canonicalize a label mapping to a sorted tuple."""
    return tuple(
        (key, validate_label(key, labels[key])) for key in sorted(labels)
    )


def format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    """Render canonical labels as ``{k=v,k=v}`` (empty string when none)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{key}={value}" for key, value in labels) + "}"
