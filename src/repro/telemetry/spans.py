"""Trace spans on the simulated timeline.

A span is a named interval of *simulated* time (:mod:`repro.util.clock`
seconds) with aggregate-only labels — never wall-clock, so two runs of
the same seed produce byte-identical timelines.  The timeline is a
mergeable value like the metrics registry: merging concatenates, and the
snapshot re-sorts into canonical ``(start, end, name, labels)`` order,
so per-shard timelines fold commutatively and associatively.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.telemetry.labels import canonical_labels
from repro.telemetry.registry import AGGREGATE, _SCOPES, MetricError


@dataclass(frozen=True, order=True)
class Span:
    """One named interval of simulated time."""

    start: float
    end: float
    name: str
    labels: tuple[tuple[str, str], ...] = ()
    scope: str = AGGREGATE

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "labels": dict(self.labels),
            "scope": self.scope,
        }


class SpanTimeline:
    """All spans recorded by one process/shard."""

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def record(
        self,
        name: str,
        start: float,
        end: float,
        scope: str = AGGREGATE,
        **labels: object,
    ) -> Span:
        if end < start:
            raise MetricError(f"span {name!r} ends before it starts ({end} < {start})")
        if scope not in _SCOPES:
            raise MetricError(f"unknown scope {scope!r}; use AGGREGATE or DEPLOYMENT")
        span = Span(
            start=float(start),
            end=float(end),
            name=name,
            labels=canonical_labels(labels),
            scope=scope,
        )
        self._spans.append(span)
        return span

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, name: str | None = None) -> list[Span]:
        """Canonically ordered spans, optionally filtered by name."""
        selected = (
            self._spans if name is None else [s for s in self._spans if s.name == name]
        )
        return sorted(selected)

    def snapshot(self, scope: str | None = None) -> list[dict]:
        return [
            span.to_dict()
            for span in sorted(self._spans)
            if scope is None or span.scope == scope
        ]

    def merge_from(self, other: "SpanTimeline") -> None:
        self._spans.extend(other._spans)

    def merged(self, *others: "SpanTimeline") -> "SpanTimeline":
        result = SpanTimeline()
        for timeline in (self, *others):
            result.merge_from(timeline)
        return result

    def export_json(self, scope: str | None = None, indent: int | None = None) -> str:
        return json.dumps(
            self.snapshot(scope),
            sort_keys=True,
            indent=indent,
            separators=(",", ": ") if indent else (",", ":"),
        )

    def digest(self, scope: str | None = None) -> str:
        return hashlib.sha256(self.export_json(scope).encode()).hexdigest()
