"""``repro.lint`` — AST-based invariant analyzer for this reproduction.

The paper's guarantees are structural, so the linter checks structure:

* **privacy taint** (``priv-taint-sink``, ``priv-server-identity``,
  ``priv-telemetry-label``) — raw identities reach upload/publication
  sinks only through ``hash(Ru, e)`` / blind-signature sanitizers, never
  surface in service-layer APIs, and never appear in telemetry labels;
* **determinism** (``det-random-module``, ``det-wall-clock``,
  ``det-numpy-random``, ``det-dirty-iteration``, ``det-read-path``) —
  all entropy flows through ``repro.util.rng``, all time through
  ``repro.util.clock``, and service-layer dirty-set and read-path
  iteration is explicitly ordered;
* **layering** (``layer-client-service``, ``layer-service-client``) —
  device-side and service-side code only meet in ``repro.orchestration``;
* **fault containment** (``faults-only-in-harness``) — only the
  experiment harness may import :mod:`repro.faults`; production layers
  receive faults through duck-typed ``fault_hook`` attributes and must
  not be able to observe the fault plan;
* **durability** (``durability-fsync-before-ack``) — service-layer
  intake journals accepted mutations before committing the acceptance,
  and the WAL implementation never leaves a file write unflushed.

Run it with ``python -m repro.lint <paths>`` or ``repro lint``; see
``docs/STATIC_ANALYSIS.md`` for rule-by-rule rationale and suppression
syntax (``# repro: allow[rule-id]``).
"""

from __future__ import annotations

from repro.lint.engine import (
    Analyzer,
    LintConfig,
    LintResult,
    ParsedModule,
    Rule,
    Violation,
)
from repro.lint.reporters import render_json, render_text


def default_rules() -> list[Rule]:
    """Fresh instances of every built-in rule, in reporting order."""
    from repro.lint.rules_determinism import (
        DirtyIterationRule,
        NumpyRandomRule,
        RandomModuleRule,
        ReadPathIterationRule,
        WallClockRule,
    )
    from repro.lint.rules_durability import FsyncBeforeAckRule
    from repro.lint.rules_faults import FaultsOnlyInHarnessRule
    from repro.lint.rules_layering import (
        ClientImportsServiceRule,
        ServiceImportsClientRule,
    )
    from repro.lint.rules_privacy import (
        ServerIdentityRule,
        SinkTaintRule,
        TelemetryLabelRule,
    )

    return [
        SinkTaintRule(),
        ServerIdentityRule(),
        TelemetryLabelRule(),
        RandomModuleRule(),
        WallClockRule(),
        NumpyRandomRule(),
        DirtyIterationRule(),
        ReadPathIterationRule(),
        ClientImportsServiceRule(),
        ServiceImportsClientRule(),
        FaultsOnlyInHarnessRule(),
        FsyncBeforeAckRule(),
    ]


__all__ = [
    "Analyzer",
    "LintConfig",
    "LintResult",
    "ParsedModule",
    "Rule",
    "Violation",
    "default_rules",
    "render_json",
    "render_text",
]
