"""Command-line front end: ``python -m repro.lint`` and ``repro lint``.

Exit codes: 0 = clean, 1 = violations (including unparseable files),
2 = usage errors (argparse's convention).
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from repro.lint import default_rules
from repro.lint.engine import Analyzer, LintConfig, LintResult
from repro.lint.reporters import render_json, render_text

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list violations waived by `# repro: allow[...]` comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, what it checks, and why, then exit",
    )


def _csv(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    return {part.strip() for part in raw.split(",") if part.strip()}


class SelectionError(ValueError):
    """A ``--select``/``--ignore`` spelling that cannot mean anything."""


def resolve_selection(rules, select: str | None, ignore: str | None) -> list:
    """Filter ``rules`` by comma-separated id lists, loudly.

    Raises :class:`SelectionError` for an unknown rule id (a typo would
    otherwise select nothing and turn the CI gate vacuously green), for a
    ``--select``/``--ignore`` value that parses to zero ids (e.g. ``""``
    or ``" , "``), and for a combination that leaves nothing to run.
    Shared by ``repro lint`` and ``repro analyze``.
    """
    selected = _csv(select)
    ignored = _csv(ignore)
    known = {rule.rule_id for rule in rules}
    for flag, requested in (("--select", selected), ("--ignore", ignored)):
        if requested is None:
            continue
        if not requested:
            raise SelectionError(f"{flag} given but no rule ids parsed from it")
        for rule_id in sorted(requested):
            if rule_id not in known:
                raise SelectionError(
                    f"unknown rule id {rule_id!r} (see --list-rules)"
                )
    remaining = [
        rule
        for rule in rules
        if (selected is None or rule.rule_id in selected)
        and rule.rule_id not in (ignored or set())
    ]
    if not remaining:
        raise SelectionError("selection leaves no rules to run")
    return remaining


def list_rules_text() -> str:
    lines = []
    for rule in default_rules():
        lines.append(f"{rule.rule_id}: {rule.description}")
        lines.append(f"    why: {rule.rationale}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace, config: LintConfig | None = None) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(list_rules_text())
        return 0
    try:
        rules = resolve_selection(default_rules(), args.select, args.ignore)
    except SelectionError as exc:
        print(f"error: {exc}")
        return 2
    analyzer = Analyzer(rules, config=config)
    result: LintResult = analyzer.run(args.paths)
    if args.format == "json":
        print(render_json(result, show_suppressed=args.show_suppressed))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based invariant analyzer: privacy unlinkability, seeded "
            "determinism, and client/server layering (docs/STATIC_ANALYSIS.md)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
