"""Privacy-taint rules: raw identities never reach an unlinkable sink.

Section 4.2's unlinkability guarantee is structural: the server stores
per-(user, entity) histories under ``hash(Ru, e)`` and issues upload
tokens blindly, so nothing it receives can be linked back to a user.  The
guarantee dies the moment a raw identity (``user_id``, ``device_id``, the
install secret ``Ru``) is written into an uploaded record or a published
summary.  These rules make that flow illegal at the AST level:

* ``priv-taint-sink`` — an identity-bearing name may appear inside a call
  to a sink constructor (``InteractionUpload``, ``OpinionUpload``,
  ``Envelope``, ``PublishedSummary``) only wrapped in a sanctioned
  sanitizer (``DeviceIdentity.history_id``, ``record_id``, blind-signature
  primitives) whose output is unlinkable by construction;
* ``priv-server-identity`` — service-layer code must not declare
  identity-bearing parameters or record fields at all.  The two legitimate
  exceptions (the attributed legacy-review path and the issuance-side
  ``device_id`` used only for token quotas) carry explicit, justified
  ``# repro: allow[priv-server-identity]`` suppressions so every identity
  touchpoint in the server is auditable;
* ``priv-telemetry-label`` — telemetry label positions may carry only
  coarse categories (entity kinds, shard indices, epoch numbers).  An
  identity-bearing value in a metric or span label would republish through
  the observability side channel exactly what the upload path hides.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import LintConfig, ParsedModule, Rule, Violation


def _last_segment(func: ast.expr) -> str | None:
    """Trailing name of a call target: ``a.b.C(...)`` → ``C``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _iter_tainted(config: LintConfig, node: ast.AST) -> Iterator[tuple[ast.expr, str]]:
    """Identity-bearing names reachable in ``node``, sanitizers excepted.

    Descends through nested calls (a taint wrapped only in formatting is
    still a taint) but stops at sanctioned sanitizer calls, whose output
    is unlinkable by construction.  Each finding stops its own branch, so
    ``record.device_id`` reports once, not per attribute segment.

    The descent covers *every* child node, not just ``ast.expr`` children:
    comprehension generators (``ast.comprehension``), lambda defaults
    (``ast.arguments``), f-string format specs, and subscripted callees
    all hide expressions inside non-expression wrapper nodes, and each of
    those was a taint blind spot before the generic walk.
    """
    if isinstance(node, ast.Call):
        callee = _last_segment(node.func)
        if callee in config.sanitizers:
            return  # sanctioned: the call's output is unlinkable
        for child in list(node.args) + [kw.value for kw in node.keywords]:
            yield from _iter_tainted(config, child)
        yield from _iter_tainted(config, node.func)
        return
    tainted: str | None = None
    if isinstance(node, ast.Name) and node.id in config.identity_names:
        tainted = node.id
    elif isinstance(node, ast.Attribute) and node.attr in config.identity_names:
        tainted = node.attr
    if tainted is not None:
        yield node, tainted  # type: ignore[misc]  # Name/Attribute are exprs
        return
    for child in ast.iter_child_nodes(node):
        yield from _iter_tainted(config, child)


class SinkTaintRule(Rule):
    rule_id = "priv-taint-sink"
    description = "identity-bearing value flows into an upload/publication sink"
    rationale = (
        "histories are unlinkable only if every record leaving the device is "
        "keyed by hash(Ru, e); a raw user_id/device_id/secret in a sink payload "
        "lets the server re-link opinion histories (Section 4.2)"
    )

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = _last_segment(node.func)
            if sink not in config.sink_names:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                for tainted_node, tainted in _iter_tainted(config, value):
                    yield self.violation(
                        module,
                        tainted_node,
                        f"identity-bearing `{tainted}` flows into `{sink}(...)`; "
                        "route it through a sanctioned sanitizer (e.g. "
                        "DeviceIdentity.history_id or repro.util.hashing."
                        "record_id) or drop it from the payload",
                    )


class ServerIdentityRule(Rule):
    rule_id = "priv-server-identity"
    description = "identity-bearing parameter/field declared in the service layer"
    rationale = (
        "the server half of Figure 2 must be unable to link histories to users; "
        "any API that hands it a raw identity is an auditable exception, not a "
        "convention (suppress with a justification where intended)"
    )

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        if not module.in_package(config.service_packages):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(module, config, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_fields(module, config, node)

    def _check_signature(
        self,
        module: ParsedModule,
        config: LintConfig,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in config.identity_names:
                yield self.violation(
                    module,
                    arg,
                    f"service-layer function `{node.name}` takes identity-bearing "
                    f"parameter `{arg.arg}`; the server must not handle raw "
                    "identities (or suppress with a stated invariant)",
                )

    def _check_fields(
        self, module: ParsedModule, config: LintConfig, node: ast.ClassDef
    ) -> Iterator[Violation]:
        for stmt in node.body:
            target: ast.expr | None = None
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id in config.identity_names
            ):
                yield self.violation(
                    module,
                    target,
                    f"service-layer record `{node.name}` declares identity-bearing "
                    f"field `{target.id}`; server-side records must be keyed by "
                    "hash(Ru, e) identifiers (or suppress with a stated invariant)",
                )


class TelemetryLabelRule(Rule):
    rule_id = "priv-telemetry-label"
    description = "identity-bearing value used as a telemetry label"
    rationale = (
        "metrics and spans are exported, merged, and plotted far from the "
        "upload path's unlinkability machinery; a user_id/device_id/secret in "
        "a label position republishes through the observability side channel "
        "exactly what hash(Ru, e) keying hides — labels may carry only entity "
        "categories, shard indices, and epoch numbers (docs/OBSERVABILITY.md)"
    )

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in config.telemetry_methods:
                continue
            if _last_segment(func.value) not in config.telemetry_receivers:
                continue
            for keyword in node.keywords:
                if (
                    keyword.arg is not None
                    and keyword.arg in config.telemetry_value_params
                ):
                    continue
                label = keyword.arg if keyword.arg is not None else "**"
                for tainted_node, tainted in _iter_tainted(config, keyword.value):
                    yield self.violation(
                        module,
                        tainted_node,
                        f"identity-bearing `{tainted}` reaches telemetry label "
                        f"`{label}` on `{func.attr}(...)`; labels may carry only "
                        "entity categories, shard indices, and epoch numbers — "
                        "aggregate the value or drop the label",
                    )
