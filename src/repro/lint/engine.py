"""Rule-engine core of ``repro.lint``.

The analyzer parses every target file once with :mod:`ast`, derives the
file's dotted module name from the surrounding package tree, collects
inline suppression comments, and hands the parsed module to each rule.
Rules are small :class:`Rule` subclasses that yield :class:`Violation`
records; everything stateful (file IO, suppression bookkeeping, rule
selection) lives here so rules stay pure AST → violations functions.

Suppression syntax (checked per physical line of the violation):

* ``# repro: allow[rule-id]`` — suppress one or more comma-separated
  rule ids on this line;
* ``# repro: allow-file[rule-id]`` — suppress the listed rules for the
  whole file (put it near the top, with a comment saying why).

A suppressed violation is retained with ``suppressed=True`` so reporters
can audit what was waived and why.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

_ALLOW_LINE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-, ]+)\]")
_ALLOW_FILE = re.compile(r"#\s*repro:\s*allow-file\[([A-Za-z0-9_\-, ]+)\]")

#: Rule id reported when a target file does not parse at all.
PARSE_ERROR_RULE_ID = "parse-error"


@dataclass(frozen=True)
class Violation:
    """One finding: a rule violated at a position in a file."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}{tag}"

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }


@dataclass(frozen=True)
class LintConfig:
    """Per-repository knobs shared by the rule families.

    The defaults encode this repository's invariants; tests override them
    to point the analyzer at fixture trees.
    """

    # -- determinism: the only modules allowed to touch raw entropy/time.
    rng_modules: frozenset[str] = frozenset({"repro.util.rng"})
    clock_modules: frozenset[str] = frozenset({"repro.util.clock"})

    # -- privacy taint: identifier spellings that carry a raw identity.
    identity_names: frozenset[str] = frozenset(
        {
            "user_id",
            "device_id",
            "secret",
            "user_secret",
            "account_id",
            "email",
            "phone_number",
            "true_owner",
        }
    )
    #: Constructors of records that leave the device or get published.
    sink_names: frozenset[str] = frozenset(
        {"InteractionUpload", "OpinionUpload", "Envelope", "PublishedSummary"}
    )
    #: Calls whose *output* is unlinkable regardless of input — the
    #: sanctioned ways an identity may reach a sink.
    sanitizers: frozenset[str] = frozenset(
        {"history_id", "record_id", "stable_digest", "stable_u64", "blind", "unblind"}
    )
    #: Package prefixes forming the server side of the architecture.
    #: ``repro.scale`` is the sharded deployment of the same service,
    #: ``repro.serve`` its read path, and ``repro.reshard`` its live
    #: topology changes — all held to the same identity-handling and
    #: ordering rules.
    service_packages: tuple[str, ...] = (
        "repro.service",
        "repro.scale",
        "repro.serve",
        "repro.reshard",
    )

    # -- telemetry labels: where the label-privacy policy is enforced.
    #: Attribute spellings that hold a telemetry sink (``self.telemetry``,
    #: a bare ``telemetry`` local, or its ``metrics``/``spans`` facets).
    telemetry_receivers: frozenset[str] = frozenset({"telemetry", "metrics", "spans"})
    #: Recording methods whose keyword arguments are label positions.
    telemetry_methods: frozenset[str] = frozenset(
        {"inc", "observe", "set_gauge", "span", "record"}
    )
    #: Keyword parameters of those methods that carry measurement values,
    #: not labels — exempt from the label taint check.
    telemetry_value_params: frozenset[str] = frozenset(
        {"n", "value", "buckets", "scope", "start", "end", "now"}
    )

    # -- layering: packages forming the device side of the architecture.
    client_packages: tuple[str, ...] = ("repro.client", "repro.sensing")

    # -- fault containment: chaos tooling and who may import it.
    #: Packages that implement fault injection.
    fault_packages: tuple[str, ...] = ("repro.faults",)
    #: The experiment harness — the only code allowed to script faults.
    fault_harness_packages: tuple[str, ...] = (
        "repro.faults",
        "repro.orchestration",
        "repro.cli",
    )
    #: Root under which the containment rule applies (tests are outside).
    fault_guarded_packages: tuple[str, ...] = ("repro",)

    # -- durability: the WAL-before-ack commit protocol.
    #: Journal methods that persist an accepted mutation.
    wal_append_methods: frozenset[str] = frozenset(
        {"log_interaction", "log_opinion", "log_review", "log_issue", "append_record"}
    )
    #: Attribute/name spellings that hold the journal in service code.
    wal_receivers: frozenset[str] = frozenset({"journal", "wal", "_wal"})
    #: Counter spellings whose bump acknowledges an envelope.
    accept_commit_counters: frozenset[str] = frozenset({"accepted_envelopes"})
    #: Dedup-set spellings whose ``.add`` burns a nonce (the other half of
    #: the acceptance commit).
    accept_commit_sets: frozenset[str] = frozenset({"_seen_nonces", "nonce_bucket"})
    #: Helper methods that perform the acceptance commit wholesale.
    accept_commit_calls: frozenset[str] = frozenset({"_mark_accepted"})
    #: File-handle spellings inside the durability package whose ``write``
    #: must be paired with a flush/fsync in the same function.
    wal_file_receivers: frozenset[str] = frozenset({"_file", "_fh"})
    #: The package implementing WAL/snapshot persistence.
    durability_packages: tuple[str, ...] = ("repro.durability",)


@dataclass(frozen=True)
class ParsedModule:
    """A parsed source file plus the metadata rules need."""

    path: str
    module: str
    tree: ast.Module
    source: str
    line_suppressions: dict[int, frozenset[str]]
    file_suppressions: frozenset[str]

    def in_package(self, prefixes: Iterable[str]) -> bool:
        """True when this module lives under any of the dotted ``prefixes``."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``description``/``rationale`` and implement
    :meth:`check`, yielding violations.  ``rationale`` states which paper
    invariant the rule protects; it surfaces in ``--list-rules``.
    """

    rule_id: str = ""
    description: str = ""
    rationale: str = ""

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class LintResult:
    """Everything one analyzer run produced."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    n_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def sorted_violations(self) -> list[Violation]:
        return sorted(self.violations, key=lambda v: (v.path, v.line, v.col, v.rule_id))

    def sorted_suppressed(self) -> list[Violation]:
        return sorted(self.suppressed, key=lambda v: (v.path, v.line, v.col, v.rule_id))


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` markers.

    Walks upward while the containing directory is a package, so
    ``src/repro/world/behavior.py`` → ``repro.world.behavior`` without any
    knowledge of ``src`` layouts.  A stray file outside any package is its
    own single-segment module.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


def _split_ids(raw: str) -> frozenset[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def collect_suppressions(source: str) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Map line number → suppressed rule ids, plus whole-file suppressions."""
    per_line: dict[int, frozenset[str]] = {}
    whole_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:
            continue
        file_match = _ALLOW_FILE.search(text)
        if file_match:
            whole_file.update(_split_ids(file_match.group(1)))
            continue
        line_match = _ALLOW_LINE.search(text)
        if line_match:
            per_line[lineno] = per_line.get(lineno, frozenset()) | _split_ids(
                line_match.group(1)
            )
    return per_line, frozenset(whole_file)


def parse_module(path: Path, module: str | None = None) -> ParsedModule | Violation:
    """Parse one file; returns a parse-error Violation instead of raising."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return Violation(
            rule_id=PARSE_ERROR_RULE_ID,
            path=str(path),
            line=line,
            col=0,
            message=f"could not parse file: {exc.__class__.__name__}: {exc}",
        )
    per_line, whole_file = collect_suppressions(source)
    return ParsedModule(
        path=str(path),
        module=module if module is not None else module_name_for(path),
        tree=tree,
        source=source,
        line_suppressions=per_line,
        file_suppressions=whole_file,
    )


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            candidates = sorted(
                p
                for p in base.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        else:
            candidates = [base]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class Analyzer:
    """Runs a set of rules over a set of paths."""

    def __init__(
        self,
        rules: Sequence[Rule],
        config: LintConfig | None = None,
    ) -> None:
        self.rules = list(rules)
        self.config = config or LintConfig()

    def run(self, paths: Sequence[Path | str]) -> LintResult:
        result = LintResult()
        # Two rules (or one rule reached through two traversal branches)
        # may report the identical finding; report each exactly once, in
        # a deterministic order, so diffs of analyzer output are stable.
        seen: set[tuple] = set()

        def admit(violation: Violation, into: list[Violation]) -> None:
            key = (
                violation.rule_id,
                violation.path,
                violation.line,
                violation.col,
                violation.message,
                violation.suppressed,
            )
            if key not in seen:
                seen.add(key)
                into.append(violation)

        for path in iter_python_files(paths):
            result.n_files += 1
            parsed = parse_module(Path(path))
            if isinstance(parsed, Violation):
                admit(parsed, result.violations)
                continue
            for rule in self.rules:
                for violation in rule.check(parsed, self.config):
                    if violation.rule_id in parsed.file_suppressions or (
                        violation.rule_id
                        in parsed.line_suppressions.get(violation.line, frozenset())
                    ):
                        admit(
                            Violation(**{**violation.to_dict(), "suppressed": True}),
                            result.suppressed,
                        )
                    else:
                        admit(violation, result.violations)
        result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        result.suppressed.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return result
